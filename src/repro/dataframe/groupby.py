"""Hash group-by with aggregation.

This is the execution engine behind every generated query: after the WHERE
clause has filtered the relevant table, rows are grouped by the foreign-key
column(s) and a single aggregation function is applied to the aggregation
attribute, producing a one-row-per-key feature table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.dataframe.aggregates import (
    AGGREGATE_FUNCTIONS,
    column_to_aggregable,
    normalise_aggregate_name,
)
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table


def group_indices(table: Table, keys: Sequence[str]) -> Dict[tuple, np.ndarray]:
    """Map each distinct key tuple to the integer row positions in its group."""
    if not keys:
        raise ValueError("group_indices needs at least one key column")
    key_columns = [table.column(k) for k in keys]
    buckets: Dict[tuple, List[int]] = {}
    n = table.num_rows
    normalised = []
    for col in key_columns:
        if col.is_numeric_like:
            normalised.append([None if np.isnan(v) else float(v) for v in col.values])
        else:
            normalised.append(list(col.values))
    for i in range(n):
        key = tuple(values[i] for values in normalised)
        buckets.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.int64) for k, v in buckets.items()}


def group_by_aggregate(
    table: Table,
    keys: Sequence[str],
    agg_attr: str,
    agg_func: str,
    output_name: str = "feature",
) -> Table:
    """``SELECT keys, agg_func(agg_attr) AS output_name FROM table GROUP BY keys``.

    Returns a table with one row per distinct key combination, the key
    columns preserved with their original dtypes, plus a numeric feature
    column.
    """
    func_name = normalise_aggregate_name(agg_func)
    if func_name not in AGGREGATE_FUNCTIONS:
        raise KeyError(f"Unknown aggregation function {agg_func!r}")
    func = AGGREGATE_FUNCTIONS[func_name]

    groups = group_indices(table, keys)
    agg_values = column_to_aggregable(table.column(agg_attr))

    key_columns = [table.column(k) for k in keys]
    group_keys = list(groups.keys())
    feature = np.empty(len(group_keys), dtype=np.float64)
    for row, key in enumerate(group_keys):
        idx = groups[key]
        feature[row] = func(agg_values[idx])

    out_columns: List[Column] = []
    for pos, key_name in enumerate(keys):
        source = key_columns[pos]
        values = [key[pos] for key in group_keys]
        if source.is_numeric_like:
            data = np.asarray(
                [np.nan if v is None else v for v in values], dtype=np.float64
            )
            out_columns.append(Column(key_name, data, dtype=source.dtype))
        else:
            out_columns.append(Column(key_name, values, dtype=DType.CATEGORICAL))
    out_columns.append(Column(output_name, feature, dtype=DType.NUMERIC))
    return Table(out_columns)


def group_sizes(table: Table, keys: Sequence[str]) -> Dict[tuple, int]:
    """Number of rows per key group (useful for dataset sanity checks)."""
    return {k: int(v.size) for k, v in group_indices(table, keys).items()}
