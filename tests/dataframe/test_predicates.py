"""Unit tests for repro.dataframe.predicates."""

import numpy as np
import pytest

from repro.dataframe.column import DType
from repro.dataframe.predicates import AlwaysTrue, And, Equals, IsIn, Not, Or, Range
from repro.dataframe.table import Table


@pytest.fixture
def table():
    return Table.from_dict(
        {
            "dept": ["electronics", "household", "electronics", None, "media"],
            "price": [100.0, 5.0, None, 50.0, 12.0],
            "ts": ["2023-07-15", "2023-01-10", "2023-06-01", "2023-07-29", "2022-12-25"],
        },
        dtypes={"ts": DType.DATETIME},
    )


class TestEquals:
    def test_categorical_equality(self, table):
        mask = Equals("dept", "electronics").mask(table)
        assert list(mask) == [True, False, True, False, False]

    def test_missing_never_matches(self, table):
        assert not Equals("dept", None).mask(table)[3]  # None == None not matched

    def test_numeric_equality(self, table):
        mask = Equals("price", 5).mask(table)
        assert list(mask) == [False, True, False, False, False]

    def test_sql_rendering(self):
        assert Equals("dept", "elec'tro").to_sql() == "dept = 'elec''tro'"


class TestIsIn:
    def test_categorical_membership(self, table):
        mask = IsIn("dept", ["media", "household"]).mask(table)
        assert list(mask) == [False, True, False, False, True]

    def test_numeric_membership(self, table):
        mask = IsIn("price", [5, 12]).mask(table)
        assert mask.sum() == 2

    def test_sql_rendering(self):
        assert IsIn("dept", ["a", "b"]).to_sql() == "dept IN ('a', 'b')"


class TestRange:
    def test_two_sided(self, table):
        mask = Range("price", low=10, high=60).mask(table)
        assert list(mask) == [False, False, False, True, True]

    def test_one_sided_low(self, table):
        mask = Range("price", low=50).mask(table)
        assert list(mask) == [True, False, False, True, False]

    def test_one_sided_high(self, table):
        mask = Range("price", high=12).mask(table)
        assert list(mask) == [False, True, False, False, True]

    def test_nan_excluded(self, table):
        mask = Range("price", low=0).mask(table)
        assert not mask[2]

    def test_datetime_range(self, table):
        from repro.dataframe.column import parse_datetime

        mask = Range("ts", low=parse_datetime("2023-07-01"), dtype=DType.DATETIME).mask(table)
        assert list(mask) == [True, False, False, True, False]

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            Range("price")

    def test_on_categorical_raises(self, table):
        with pytest.raises(TypeError):
            Range("dept", low=0).mask(table)

    def test_datetime_sql_rendering(self):
        from repro.dataframe.column import parse_datetime

        sql = Range("ts", low=parse_datetime("2023-07-01"), dtype=DType.DATETIME).to_sql()
        assert sql == "ts >= '2023-07-01'"


class TestCombinators:
    def test_and(self, table):
        predicate = And([Equals("dept", "electronics"), Range("price", low=50)])
        assert list(predicate.mask(table)) == [True, False, False, False, False]

    def test_and_operator_overload(self, table):
        predicate = Equals("dept", "electronics") & Range("price", low=50)
        assert predicate.mask(table).sum() == 1

    def test_empty_and_selects_all(self, table):
        assert And([]).mask(table).all()

    def test_or(self, table):
        predicate = Or([Equals("dept", "media"), Equals("dept", "household")])
        assert predicate.mask(table).sum() == 2

    def test_or_operator_overload(self, table):
        predicate = Equals("dept", "media") | Equals("dept", "household")
        assert predicate.mask(table).sum() == 2

    def test_not(self, table):
        predicate = Not(Equals("dept", "electronics"))
        assert list(predicate.mask(table)) == [False, True, False, True, True]

    def test_invert_operator(self, table):
        assert (~Equals("dept", "electronics")).mask(table).sum() == 3

    def test_always_true(self, table):
        assert AlwaysTrue().mask(table).all()
        assert AlwaysTrue().to_sql() == "TRUE"

    def test_and_skips_always_true(self, table):
        predicate = And([AlwaysTrue(), Equals("dept", "media")])
        assert predicate.to_sql() == "dept = 'media'"

    def test_and_sql(self):
        predicate = And([Equals("a", "x"), Range("b", low=1, high=2)])
        assert predicate.to_sql() == "a = 'x' AND b >= 1 AND b <= 2"

    def test_or_sql(self):
        predicate = Or([Equals("a", "x"), Equals("a", "y")])
        assert predicate.to_sql() == "(a = 'x') OR (a = 'y')"

    def test_not_sql(self):
        assert Not(Equals("a", 1)).to_sql() == "NOT (a = 1)"
