"""A concrete predicate-aware SQL query and its SQL rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dataframe.column import DType, format_datetime
from repro.dataframe.predicates import And, Equals, IsIn, Predicate, Range, Window


@dataclass(frozen=True)
class WindowConstraint:
    """A half-open ``[low, high)`` time-window constraint on a numeric /
    datetime attribute.

    Distinct from the plain ``(low, high)`` tuple so the query model can tell
    a closed range from a half-open window; lowers to an IR atom of kind
    ``"window"`` and a :class:`~repro.dataframe.predicates.Window` predicate.
    """

    low: float
    high: float


def is_membership_constraint(constraint: object) -> bool:
    """True when a categorical constraint is an IN-list rather than an equality."""
    return isinstance(constraint, (list, tuple, set, frozenset))


def canonical_members(values: Sequence) -> tuple:
    """Canonically-sorted, duplicate-free tuple of IN-list members.

    Shared by query signatures and IR atoms so membership identity is order-
    and duplicate-insensitive: ``{"b", "a"}`` and ``["a", "b", "a"]`` cache
    alike.  Falls back to a ``repr`` sort (without dedup) when the members
    are unhashable or mutually unorderable.
    """
    try:
        return tuple(sorted(set(values), key=repr))
    except TypeError:
        return tuple(sorted(values, key=repr))


@dataclass
class PredicateAwareQuery:
    """One query from a query pool (Definition 2).

    ``predicates`` maps a predicate attribute to its concrete constraint:

    * categorical attribute -> the equality value, or a list / tuple / set of
      values for an IN-list membership constraint (or ``None`` for no
      predicate on that attribute),
    * numeric / datetime attribute -> a ``(low, high)`` tuple where either
      bound may be ``None`` (one-sided range) or both may be ``None`` (no
      predicate), or a :class:`WindowConstraint` for a half-open window.
    """

    agg_func: str
    agg_attr: str
    keys: Tuple[str, ...]
    predicates: Dict[str, object] = field(default_factory=dict)
    predicate_dtypes: Dict[str, DType] = field(default_factory=dict)
    relation_name: str = "R"
    feature_name: str = "feature"

    # ------------------------------------------------------------------
    def build_predicate(self) -> Predicate:
        """Combine the per-attribute constraints into one WHERE predicate."""
        parts: List[Predicate] = []
        for attr, constraint in self.predicates.items():
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if isinstance(constraint, WindowConstraint):
                # The marker type is unambiguous: honour it even when the
                # attribute's dtype was never declared (the CATEGORICAL
                # default is a fallback, not evidence).
                if dtype is DType.CATEGORICAL:
                    dtype = DType.NUMERIC
                parts.append(Window(attr, constraint.low, constraint.high, dtype=dtype))
            elif dtype is DType.CATEGORICAL:
                if is_membership_constraint(constraint):
                    if not constraint:
                        continue
                    parts.append(IsIn(attr, sorted(constraint, key=repr)))
                else:
                    parts.append(Equals(attr, constraint))
            else:
                low, high = constraint
                if low is None and high is None:
                    continue
                parts.append(Range(attr, low=low, high=high, dtype=dtype))
        return And(parts)

    def has_predicates(self) -> bool:
        """True when at least one attribute carries an actual constraint."""
        for attr, constraint in self.predicates.items():
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if dtype is DType.CATEGORICAL:
                if is_membership_constraint(constraint) and not constraint:
                    continue
                return True
            if isinstance(constraint, WindowConstraint):
                return True
            low, high = constraint
            if low is not None or high is not None:
                return True
        return False

    def to_sql(self) -> str:
        """Render the query as SQL text (for logs, examples and reports)."""
        keys = ", ".join(self.keys)
        where = self.build_predicate().to_sql()
        sql = (
            f"SELECT {keys}, {self.agg_func}({self.agg_attr}) AS {self.feature_name}\n"
            f"FROM {self.relation_name}\n"
        )
        if where != "TRUE":
            sql += f"WHERE {where}\n"
        sql += f"GROUP BY {keys}"
        return sql

    def signature(self) -> tuple:
        """Hashable identity of the query (used to deduplicate results)."""
        rendered: List[tuple] = []
        for attr in sorted(self.predicates):
            constraint = self.predicates[attr]
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if isinstance(constraint, WindowConstraint):
                rendered.append((attr, ("window", constraint.low, constraint.high)))
            elif dtype is DType.CATEGORICAL and is_membership_constraint(constraint):
                # Order- and duplicate-insensitive, matching the IR atom's
                # canonically-sorted tuple.
                rendered.append((attr, ("in",) + canonical_members(constraint)))
            elif isinstance(constraint, tuple):
                rendered.append((attr, tuple(constraint)))
            else:
                rendered.append((attr, constraint))
        return (self.agg_func, self.agg_attr, self.keys, tuple(rendered))

    def describe(self) -> str:
        """Short human-readable description used in result summaries."""
        clauses = []
        for attr, constraint in self.predicates.items():
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if isinstance(constraint, WindowConstraint):
                if dtype is DType.DATETIME:
                    low_text = format_datetime(constraint.low)
                    high_text = format_datetime(constraint.high)
                else:
                    low_text = f"{constraint.low:.4g}"
                    high_text = f"{constraint.high:.4g}"
                clauses.append(f"{attr} in [{low_text}, {high_text})")
            elif dtype is DType.CATEGORICAL:
                if is_membership_constraint(constraint):
                    if not constraint:
                        continue
                    members = ", ".join(str(v) for v in canonical_members(constraint))
                    clauses.append(f"{attr} in {{{members}}}")
                else:
                    clauses.append(f"{attr}={constraint}")
            else:
                low, high = constraint
                if low is None and high is None:
                    continue
                if dtype is DType.DATETIME:
                    low_text = format_datetime(low) if low is not None else "-inf"
                    high_text = format_datetime(high) if high is not None else "+inf"
                else:
                    low_text = f"{low:.4g}" if low is not None else "-inf"
                    high_text = f"{high:.4g}" if high is not None else "+inf"
                clauses.append(f"{attr} in [{low_text}, {high_text}]")
        where = " AND ".join(clauses) if clauses else "no predicate"
        return f"{self.agg_func}({self.agg_attr}) | {where}"
