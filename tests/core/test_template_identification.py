"""Unit tests for the Query Template Identification component (beam search)."""

import numpy as np
import pytest

from repro.core.config import FeatAugConfig
from repro.core.evaluation import ModelEvaluator
from repro.core.template_identification import QueryTemplateIdentifier
from repro.dataframe.table import Table
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import train_valid_test_split


@pytest.fixture(scope="module")
def qti_setup():
    """Planted signal visible only through the 'category' attribute.

    The candidate attribute set contains 'category' plus pure-noise attributes;
    a correct identification should rank templates containing 'category' high.
    """
    rng = np.random.default_rng(11)
    n_users = 220
    users = [f"u{i}" for i in range(n_users)]
    base = rng.normal(size=n_users)
    n_events = n_users * 6
    event_users = list(rng.choice(users, size=n_events))
    category = list(rng.choice(["hit", "miss_a", "miss_b"], size=n_events))
    noise_attr = list(rng.choice(["x", "y", "z"], size=n_events))
    amount = rng.normal(1.0, 1.0, size=n_events)
    totals = {u: 0.0 for u in users}
    for u, c, a in zip(event_users, category, amount):
        if c == "hit":
            totals[u] += a
    signal = np.asarray([totals[u] for u in users])
    label = (signal + rng.normal(0, 0.4, size=n_users) > np.median(signal)).astype(float)

    train_table = Table.from_dict({"uid": users, "base": base, "label": label})
    relevant = Table.from_dict(
        {"uid": event_users, "category": category, "noise_attr": noise_attr, "amount": amount}
    )
    train, valid, _ = train_valid_test_split(train_table, (0.7, 0.3, 0.0), seed=0)
    evaluator = ModelEvaluator(
        train, valid, label="label", base_features=["base"],
        model=LogisticRegression(n_iter=100), task="binary", relevant_table=relevant,
    )
    return relevant, evaluator


@pytest.fixture
def qti_config():
    return FeatAugConfig(
        beam_width=1,
        max_template_depth=2,
        template_proxy_iterations=8,
        template_real_iterations=3,
        tpe_startup_trials=3,
        seed=0,
    )


def make_identifier(qti_setup, config):
    relevant, evaluator = qti_setup
    return QueryTemplateIdentifier(
        relevant, evaluator, agg_attrs=["amount"], keys=["uid"],
        agg_funcs=["SUM", "AVG", "COUNT"], config=config,
    )


class TestBeamSearch:
    def test_returns_requested_number(self, qti_setup, qti_config):
        identifier = make_identifier(qti_setup, qti_config)
        results = identifier.identify(["category", "noise_attr"], n_templates=2)
        assert len(results) == 2

    def test_results_sorted_by_score(self, qti_setup, qti_config):
        identifier = make_identifier(qti_setup, qti_config)
        results = identifier.identify(["category", "noise_attr"], n_templates=3)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_signal_attribute_ranked_first(self, qti_setup, qti_config):
        identifier = make_identifier(qti_setup, qti_config)
        results = identifier.identify(["category", "noise_attr"], n_templates=2)
        assert "category" in results[0].template.predicate_attrs

    def test_report_counts_evaluations(self, qti_setup, qti_config):
        identifier = make_identifier(qti_setup, qti_config)
        identifier.identify(["category", "noise_attr"], n_templates=2)
        assert identifier.report.n_evaluated_templates >= 2
        assert identifier.report.seconds > 0

    def test_report_engine_stats_expose_backend(self, qti_setup, qti_config):
        from repro.query.backends import backend_names

        identifier = make_identifier(qti_setup, qti_config)
        identifier.identify(["category", "noise_attr"], n_templates=2)
        stats = identifier.report.engine_stats
        assert stats["backend"] == identifier.engine.backend_name
        assert stats["backend"] in backend_names()
        # The engine is shared per table: earlier tests may have warmed the
        # result cache, so count executed and cache-served queries together.
        assert stats["queries"] + stats["result_hits"] > 0
        assert stats["backend_seconds"].get(stats["backend"], 0.0) >= 0.0

    def test_beam_explores_fewer_templates_than_brute_force(self, qti_setup, qti_config):
        """The cost reduction claimed in Section VI.B/VI.C."""
        config = qti_config.with_overrides(beam_width=1, max_template_depth=2)
        beam = make_identifier(qti_setup, config)
        beam.identify(["category", "noise_attr", "amount"], n_templates=2)
        brute = make_identifier(qti_setup, config)
        brute.brute_force(["category", "noise_attr", "amount"], n_templates=2)
        assert beam.report.n_evaluated_templates <= brute.report.n_evaluated_templates

    def test_predictor_pruning_reduces_evaluations(self, qti_setup, qti_config):
        candidate_attrs = ["category", "noise_attr", "amount"]
        with_pred = make_identifier(qti_setup, qti_config.with_overrides(use_template_predictor=True, beam_width=1, max_template_depth=3))
        with_pred.identify(candidate_attrs, n_templates=2)
        without_pred = make_identifier(qti_setup, qti_config.with_overrides(use_template_predictor=False, beam_width=1, max_template_depth=3))
        without_pred.identify(candidate_attrs, n_templates=2)
        assert with_pred.report.n_evaluated_templates <= without_pred.report.n_evaluated_templates

    def test_real_evaluation_mode_runs(self, qti_setup, qti_config):
        config = qti_config.with_overrides(use_low_cost_proxy=False)
        identifier = make_identifier(qti_setup, config)
        results = identifier.identify(["category"], n_templates=1)
        assert len(results) == 1

    def test_empty_candidate_attrs_raises(self, qti_setup, qti_config):
        identifier = make_identifier(qti_setup, qti_config)
        with pytest.raises(ValueError):
            identifier.identify([], n_templates=1)

    def test_layer_depth_bounded(self, qti_setup, qti_config):
        config = qti_config.with_overrides(max_template_depth=1)
        identifier = make_identifier(qti_setup, config)
        results = identifier.identify(["category", "noise_attr"], n_templates=4)
        assert all(len(r.template.predicate_attrs) == 1 for r in results)

    def test_brute_force_covers_all_subsets(self, qti_setup, qti_config):
        identifier = make_identifier(qti_setup, qti_config)
        identifier.brute_force(["category", "noise_attr"], n_templates=3)
        assert identifier.report.n_evaluated_templates == 3  # 2 singletons + 1 pair
