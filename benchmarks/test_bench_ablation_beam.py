"""Extra ablation (DESIGN.md): beam width and depth of template identification.

Not a numbered figure in the paper, but the beam width beta and the maximum
expansion depth are the two structural knobs of the Query Template
Identification component (Section VI.B); this benchmark records how they
trade identification cost against downstream quality.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_FEATURES, bench_config, cold_engine, write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_method

SETTINGS = (
    ("beta=1, depth=2", dict(beam_width=1, max_template_depth=2)),
    ("beta=2, depth=2", dict(beam_width=2, max_template_depth=2)),
    ("beta=2, depth=3", dict(beam_width=2, max_template_depth=3)),
    ("beta=3, depth=3", dict(beam_width=3, max_template_depth=3)),
)


def _run_beam_ablation():
    bundle = load_dataset("student", scale=0.2, seed=0)
    rows = []
    for label, overrides in SETTINGS:
        cold_engine(bundle.relevant)
        config = bench_config(**overrides)
        result = run_method(bundle, "FeatAug", "LR", n_features=BENCH_FEATURES, config=config, seed=0)
        rows.append(
            [label, result.metric_name, result.metric, result.details.get("qti_seconds", 0.0), result.seconds]
        )
    return rows


@pytest.mark.benchmark(group="ablation-beam")
def test_beam_width_and_depth_ablation(benchmark):
    rows = benchmark.pedantic(_run_beam_ablation, rounds=1, iterations=1)
    text = (
        "Beam-search ablation -- width/depth of Query Template Identification (Student, LR)\n\n"
        + render_table(["setting", "metric", "measured", "qti_seconds", "total_seconds"], rows)
    )
    print("\n" + text)
    write_result("ablation_beam", text)

    # Wider / deeper beams may cost more QTI time but should not collapse quality.
    metrics = [row[2] for row in rows]
    assert max(metrics) - min(metrics) < 0.35
