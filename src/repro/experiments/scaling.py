"""Scalability sweeps behind Figures 7, 8 and 9.

Each sweep varies one size knob (columns of the relevant table ``R``, rows of
the training table ``D``, rows of ``R``), runs FeatAug end to end and records
the three timing components the paper reports: Query Template Identification
time, Warm-up time and Generate time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.config import FeatAugConfig
from repro.core.feataug import FeatAug
from repro.dataframe.column import Column
from repro.dataframe.table import Table
from repro.datasets.base import DatasetBundle


@dataclass
class ScalingPoint:
    """Timing breakdown of one FeatAug run at one size setting."""

    size: int
    qti_seconds: float
    warmup_seconds: float
    generate_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.qti_seconds + self.warmup_seconds + self.generate_seconds


def widen_relevant_table(bundle: DatasetBundle, n_copies: int) -> DatasetBundle:
    """Duplicate the relevant table's non-key columns horizontally.

    The paper widens Student to 130 columns the same way ("we duplicate the
    original datasets horizontally", Section VII.F.1).
    """
    relevant = bundle.relevant
    columns: List[Column] = [relevant.column(k) for k in bundle.keys]
    extra_attrs: List[str] = []
    base_attrs = [n for n in relevant.column_names if n not in bundle.keys]
    for name in base_attrs:
        columns.append(relevant.column(name))
    for copy_index in range(1, n_copies):
        for name in base_attrs:
            new_name = f"{name}_copy{copy_index}"
            columns.append(relevant.column(name).rename(new_name))
            extra_attrs.append(new_name)
    widened = Table(columns)
    return DatasetBundle(
        name=f"{bundle.name}-wide{n_copies}",
        train=bundle.train,
        relevant=widened,
        keys=list(bundle.keys),
        label_col=bundle.label_col,
        task=bundle.task,
        metric_name=bundle.metric_name,
        candidate_attrs=list(bundle.candidate_attrs) + [a for a in extra_attrs if not _is_numeric_only(bundle, a)][: len(bundle.candidate_attrs)],
        agg_attrs=list(bundle.agg_attrs),
        description=bundle.description,
    )


def _is_numeric_only(bundle: DatasetBundle, copied_name: str) -> bool:
    return False


def subsample_train(bundle: DatasetBundle, n_rows: int, seed: int = 0) -> DatasetBundle:
    """Keep only *n_rows* training rows (and the matching relevant rows)."""
    n_rows = min(n_rows, bundle.train.num_rows)
    rng = np.random.default_rng(seed)
    indices = rng.choice(bundle.train.num_rows, size=n_rows, replace=False)
    train = bundle.train.take(np.sort(indices))
    keep_keys = set()
    key = bundle.keys[0]
    for value in train.column(key).values:
        keep_keys.add(value if not isinstance(value, float) else float(value))
    mask = [
        (v if not isinstance(v, float) else float(v)) in keep_keys
        for v in bundle.relevant.column(key).values
    ]
    relevant = bundle.relevant.filter(np.asarray(mask, dtype=bool))
    return DatasetBundle(
        name=bundle.name,
        train=train,
        relevant=relevant,
        keys=list(bundle.keys),
        label_col=bundle.label_col,
        task=bundle.task,
        metric_name=bundle.metric_name,
        candidate_attrs=list(bundle.candidate_attrs),
        agg_attrs=list(bundle.agg_attrs),
        description=bundle.description,
    )


def subsample_relevant(bundle: DatasetBundle, n_rows: int, seed: int = 0) -> DatasetBundle:
    """Keep only *n_rows* rows of the relevant table (training table unchanged)."""
    n_rows = min(n_rows, bundle.relevant.num_rows)
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(bundle.relevant.num_rows, size=n_rows, replace=False))
    relevant = bundle.relevant.take(indices)
    return DatasetBundle(
        name=bundle.name,
        train=bundle.train,
        relevant=relevant,
        keys=list(bundle.keys),
        label_col=bundle.label_col,
        task=bundle.task,
        metric_name=bundle.metric_name,
        candidate_attrs=list(bundle.candidate_attrs),
        agg_attrs=list(bundle.agg_attrs),
        description=bundle.description,
    )


def _run_feataug_timing(bundle: DatasetBundle, model_name: str, config: FeatAugConfig, size: int) -> ScalingPoint:
    # Timing points must start from a cold query engine: scaling sweeps can
    # reuse the same relevant-table object across points, and warm mask /
    # result caches would make later points look artificially fast.  The
    # registry is keyed per EngineConfig, so the reset must target the engine
    # the run's configured backend / worker count will actually use.
    from repro.query.engine import engine_for

    engine_for(bundle.relevant, config=config.engine_config()).reset()
    feataug = FeatAug(
        label=bundle.label_col,
        keys=bundle.keys,
        task=bundle.task,
        model=model_name,
        config=config,
    )
    result = feataug.augment(
        bundle.train,
        bundle.relevant,
        candidate_attrs=bundle.candidate_attrs,
        agg_attrs=bundle.agg_attrs,
        n_features=config.n_templates * config.queries_per_template,
    )
    return ScalingPoint(
        size=size,
        qti_seconds=result.qti_seconds,
        warmup_seconds=result.warmup_seconds,
        generate_seconds=result.generate_seconds,
    )


def run_scaling_columns(
    bundle: DatasetBundle,
    copies: Sequence[int],
    model_name: str = "LR",
    config: FeatAugConfig | None = None,
) -> List[ScalingPoint]:
    """Figure 7: FeatAug runtime as the relevant table gets wider."""
    config = config or FeatAugConfig(n_templates=2, queries_per_template=2, warmup_iterations=10, warmup_top_k=3, search_iterations=5)
    points = []
    for n_copies in copies:
        widened = widen_relevant_table(bundle, n_copies)
        n_cols = widened.relevant.num_columns
        points.append(_run_feataug_timing(widened, model_name, config, size=n_cols))
    return points


def run_scaling_rows_train(
    bundle: DatasetBundle,
    row_counts: Sequence[int],
    model_name: str = "LR",
    config: FeatAugConfig | None = None,
) -> List[ScalingPoint]:
    """Figure 8: FeatAug runtime as the training table grows."""
    config = config or FeatAugConfig(n_templates=2, queries_per_template=2, warmup_iterations=10, warmup_top_k=3, search_iterations=5)
    points = []
    for n_rows in row_counts:
        reduced = subsample_train(bundle, n_rows)
        points.append(_run_feataug_timing(reduced, model_name, config, size=reduced.train.num_rows))
    return points


def run_scaling_rows_relevant(
    bundle: DatasetBundle,
    row_counts: Sequence[int],
    model_name: str = "LR",
    config: FeatAugConfig | None = None,
) -> List[ScalingPoint]:
    """Figure 9: FeatAug runtime as the relevant table grows."""
    config = config or FeatAugConfig(n_templates=2, queries_per_template=2, warmup_iterations=10, warmup_top_k=3, search_iterations=5)
    points = []
    for n_rows in row_counts:
        reduced = subsample_relevant(bundle, n_rows)
        points.append(_run_feataug_timing(reduced, model_name, config, size=reduced.relevant.num_rows))
    return points
