"""Typed columns backed by numpy arrays.

A :class:`Column` stores a name, a dtype and a numpy array of values.  The
supported dtypes mirror the attribute kinds the FeatAug paper distinguishes
when building predicates:

* ``numeric``   -- float64 values, ``NaN`` marks a missing value.
* ``datetime``  -- float64 epoch seconds, ``NaN`` marks a missing value.
* ``boolean``   -- float64 0.0/1.0 values, ``NaN`` marks a missing value.
* ``categorical`` -- object values (typically strings), ``None`` marks a
  missing value.

Datetime values are accepted as ``datetime.datetime``/``datetime.date``
objects, ISO strings (``YYYY-MM-DD`` or ``YYYY-MM-DD HH:MM:SS``) or raw epoch
seconds and normalised to epoch seconds internally so range predicates reduce
to plain float comparisons.
"""

from __future__ import annotations

import datetime as _dt
from enum import Enum
from typing import Iterable, Sequence

import numpy as np


class DType(str, Enum):
    """Supported column dtypes."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    DATETIME = "datetime"
    BOOLEAN = "boolean"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_EPOCH = _dt.datetime(1970, 1, 1)


def parse_datetime(value) -> float:
    """Convert a datetime-like value to epoch seconds (float).

    Accepts ``datetime``/``date`` objects, ISO formatted strings, numbers
    (already epoch seconds) and ``None``/``NaN`` for missing values.
    """
    if value is None:
        return float("nan")
    if isinstance(value, float) and np.isnan(value):
        return float("nan")
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    if isinstance(value, _dt.datetime):
        return (value - _EPOCH).total_seconds()
    if isinstance(value, _dt.date):
        dt = _dt.datetime(value.year, value.month, value.day)
        return (dt - _EPOCH).total_seconds()
    if isinstance(value, str):
        text = value.strip()
        for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d"):
            try:
                return (_dt.datetime.strptime(text, fmt) - _EPOCH).total_seconds()
            except ValueError:
                continue
        raise ValueError(f"Cannot parse datetime string: {value!r}")
    raise TypeError(f"Cannot convert {type(value).__name__} to datetime")


def format_datetime(epoch_seconds: float) -> str:
    """Render epoch seconds back into an ISO timestamp string."""
    if epoch_seconds is None or np.isnan(epoch_seconds):
        return ""
    dt = _EPOCH + _dt.timedelta(seconds=float(epoch_seconds))
    if dt.hour == 0 and dt.minute == 0 and dt.second == 0:
        return dt.strftime("%Y-%m-%d")
    return dt.strftime("%Y-%m-%d %H:%M:%S")


def _coerce_numeric(values: Iterable) -> np.ndarray:
    out = np.asarray(
        [float("nan") if v is None else float(v) for v in values], dtype=np.float64
    )
    return out


def _coerce_categorical(values: Iterable) -> np.ndarray:
    out = np.empty(len(list(values)) if not hasattr(values, "__len__") else len(values), dtype=object)
    for i, v in enumerate(values):
        if v is None or (isinstance(v, float) and np.isnan(v)):
            out[i] = None
        else:
            out[i] = v
    return out


def _coerce_datetime(values: Iterable) -> np.ndarray:
    return np.asarray([parse_datetime(v) for v in values], dtype=np.float64)


def _coerce_boolean(values: Iterable) -> np.ndarray:
    out = []
    for v in values:
        if v is None or (isinstance(v, float) and np.isnan(v)):
            out.append(float("nan"))
        else:
            out.append(1.0 if bool(v) else 0.0)
    return np.asarray(out, dtype=np.float64)


def infer_dtype(values: Sequence) -> DType:
    """Infer the dtype of a sequence of raw Python values."""
    saw_bool = False
    saw_number = False
    saw_datetime = False
    saw_other = False
    for v in values:
        if v is None or (isinstance(v, float) and np.isnan(v)):
            continue
        if isinstance(v, bool):
            saw_bool = True
        elif isinstance(v, (int, float, np.integer, np.floating)):
            saw_number = True
        elif isinstance(v, (_dt.datetime, _dt.date)):
            saw_datetime = True
        else:
            saw_other = True
    if saw_other:
        return DType.CATEGORICAL
    if saw_datetime and not saw_number and not saw_bool:
        return DType.DATETIME
    if saw_bool and not saw_number:
        return DType.BOOLEAN
    if saw_number or saw_bool:
        return DType.NUMERIC
    return DType.CATEGORICAL


class Column:
    """A named, typed, immutable-by-convention column of values."""

    def __init__(self, name: str, values, dtype: DType | str | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("Column name must be a non-empty string")
        self.name = name
        if dtype is None:
            if isinstance(values, np.ndarray) and values.dtype.kind in "fiu":
                dtype = DType.NUMERIC
            else:
                materialised = list(values)
                dtype = infer_dtype(materialised)
                values = materialised
        dtype = DType(dtype)
        self.dtype = dtype
        if isinstance(values, np.ndarray) and dtype in (DType.NUMERIC, DType.DATETIME, DType.BOOLEAN):
            if values.dtype != np.float64:
                values = values.astype(np.float64)
            self.values = values
        elif isinstance(values, np.ndarray) and dtype is DType.CATEGORICAL and values.dtype == object:
            self.values = values
        else:
            materialised = list(values)
            if dtype is DType.NUMERIC:
                self.values = _coerce_numeric(materialised)
            elif dtype is DType.DATETIME:
                self.values = _coerce_datetime(materialised)
            elif dtype is DType.BOOLEAN:
                self.values = _coerce_boolean(materialised)
            else:
                self.values = _coerce_categorical(materialised)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __getitem__(self, item):
        return self.values[item]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Column(name={self.name!r}, dtype={self.dtype.value}, n={len(self)})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.dtype != other.dtype:
            return False
        if len(self) != len(other):
            return False
        if self.is_numeric_like:
            a, b = self.values, other.values
            both_nan = np.isnan(a) & np.isnan(b)
            return bool(np.all((a == b) | both_nan))
        return bool(np.all(self.values == other.values))

    def __hash__(self):  # Columns are mutable containers; identity hash.
        return id(self)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def is_numeric_like(self) -> bool:
        """True for numeric, datetime and boolean columns (float storage)."""
        return self.dtype in (DType.NUMERIC, DType.DATETIME, DType.BOOLEAN)

    def is_missing(self) -> np.ndarray:
        """Boolean mask of missing entries."""
        if self.is_numeric_like:
            return np.isnan(self.values)
        return np.asarray([v is None for v in self.values], dtype=bool)

    def null_count(self) -> int:
        return int(self.is_missing().sum())

    def unique(self) -> list:
        """Distinct non-missing values (order of first appearance)."""
        seen = []
        seen_set = set()
        missing = self.is_missing()
        for v, is_na in zip(self.values, missing):
            if is_na:
                continue
            key = float(v) if self.is_numeric_like else v
            if key not in seen_set:
                seen_set.add(key)
                seen.append(key)
        return seen

    def min(self):
        if not self.is_numeric_like:
            raise TypeError(f"min() is not defined for {self.dtype.value} column {self.name!r}")
        finite = self.values[~np.isnan(self.values)]
        return float(finite.min()) if finite.size else float("nan")

    def max(self):
        if not self.is_numeric_like:
            raise TypeError(f"max() is not defined for {self.dtype.value} column {self.name!r}")
        finite = self.values[~np.isnan(self.values)]
        return float(finite.max()) if finite.size else float("nan")

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def take(self, indices) -> "Column":
        """Return a new column with rows re-ordered / repeated by *indices*."""
        indices = np.asarray(indices)
        return Column(self.name, self.values[indices], dtype=self.dtype)

    def filter(self, mask) -> "Column":
        """Return a new column keeping only rows where *mask* is True."""
        mask = np.asarray(mask, dtype=bool)
        return Column(self.name, self.values[mask], dtype=self.dtype)

    def rename(self, name: str) -> "Column":
        return Column(name, self.values, dtype=self.dtype)

    def copy(self) -> "Column":
        return Column(self.name, self.values.copy(), dtype=self.dtype)

    def to_list(self) -> list:
        """Return values as plain Python objects (datetimes stay as epoch floats)."""
        if self.is_numeric_like:
            return [float(v) for v in self.values]
        return list(self.values)

    def astype(self, dtype: DType | str) -> "Column":
        """Re-interpret the column as a different dtype."""
        dtype = DType(dtype)
        if dtype == self.dtype:
            return self.copy()
        if dtype is DType.CATEGORICAL:
            values = [None if m else v for v, m in zip(self.to_list(), self.is_missing())]
            return Column(self.name, values, dtype=DType.CATEGORICAL)
        if self.dtype is DType.CATEGORICAL:
            return Column(self.name, list(self.values), dtype=dtype)
        return Column(self.name, self.values, dtype=dtype)
