"""Unit tests for QueryPool (template -> search space -> query decoding)."""

import numpy as np
import pytest

from repro.dataframe.column import DType
from repro.hpo.space import CategoricalDimension, RealDimension
from repro.query.pool import QueryPool
from repro.query.template import QueryTemplate


@pytest.fixture
def template():
    return QueryTemplate(
        ["SUM", "AVG", "MAX"], ["pprice"], ["department", "timestamp"], ["cname"]
    )


@pytest.fixture
def pool(template, logs_table):
    return QueryPool(template, logs_table, relation_name="User_Logs")


class TestSpaceConstruction:
    def test_dimension_names(self, pool):
        names = pool.space.names
        assert "agg_func" in names
        assert "agg_attr" in names
        assert "pred::department" in names
        assert "pred_low::timestamp" in names
        assert "pred_high::timestamp" in names
        assert "group_keys" in names

    def test_vector_layout_matches_paper_formula(self, pool, template):
        """Section V.A: 2 + n + 2*m + |K| elements for n categorical and m numeric predicates."""
        n_categorical = 1
        n_numeric = 1
        expected = 2 + n_categorical + 2 * n_numeric + 1
        assert len(pool.space) == expected

    def test_categorical_domain_includes_none(self, pool):
        dim = pool.space["pred::department"]
        assert isinstance(dim, CategoricalDimension)
        assert None in dim.choices
        assert "electronics" in dim.choices

    def test_numeric_bounds_match_column(self, pool, logs_table):
        dim = pool.space["pred_low::timestamp"]
        assert isinstance(dim, RealDimension)
        assert dim.low == logs_table.column("timestamp").min()
        assert dim.high == logs_table.column("timestamp").max()

    def test_group_keys_subsets(self, pool):
        dim = pool.space["group_keys"]
        assert ("cname",) in dim.choices

    def test_missing_template_column_raises(self, logs_table):
        bad = QueryTemplate(["SUM"], ["nope"], [], ["cname"])
        with pytest.raises(KeyError):
            QueryPool(bad, logs_table)

    def test_domain_of(self, pool):
        assert set(pool.domain_of("department")) >= {"electronics", "household", "media"}
        low, high = pool.domain_of("timestamp")
        assert low < high

    def test_domain_of_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.domain_of("pprice")

    def test_categorical_domain_capped(self, logs_table):
        from repro.query.pool import MAX_CATEGORICAL_VALUES

        wide = QueryTemplate(["SUM"], ["pprice"], ["pname"], ["cname"])
        pool = QueryPool(wide, logs_table)
        assert len(pool.domain_of("pname")) <= MAX_CATEGORICAL_VALUES


class TestDecodeEncode:
    def test_decode_produces_executable_query(self, pool, logs_table):
        params = {
            "agg_func": "AVG",
            "agg_attr": "pprice",
            "pred::department": "electronics",
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "group_keys": ("cname",),
        }
        query = pool.decode(params)
        assert query.agg_func == "AVG"
        mask = query.build_predicate().mask(logs_table)
        assert mask.sum() == 4

    def test_decode_swaps_inverted_bounds(self, pool):
        params = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": 100.0,
            "pred_high::timestamp": 50.0,
            "group_keys": ("cname",),
        }
        query = pool.decode(params)
        low, high = query.predicates["timestamp"]
        assert low <= high

    def test_encode_roundtrip(self, pool, rng):
        params = pool.space.sample(rng)
        query = pool.decode(params)
        recovered = pool.encode(query)
        assert pool.decode(recovered).signature() == query.signature()

    def test_sample_random_queries_valid(self, pool, logs_table):
        queries = pool.sample_random(seed=0, n=10)
        assert len(queries) == 10
        for query in queries:
            mask = query.build_predicate().mask(logs_table)
            assert mask.shape[0] == logs_table.num_rows

    def test_group_keys_default_to_full_key(self, pool):
        params = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "group_keys": None,
        }
        query = pool.decode(params)
        assert query.keys == ("cname",)

    def test_relation_name_propagated(self, pool):
        query = pool.sample_random(seed=1, n=1)[0]
        assert "User_Logs" in query.to_sql()
