"""Preprocessing: encoders, scaling, imputation, table vectorisation, splits.

The downstream models operate on dense float matrices; :class:`TableVectorizer`
converts a :class:`~repro.dataframe.table.Table` into such a matrix by label-
or one-hot-encoding categoricals, imputing missing numerics and (optionally)
standardising.  This is the glue between the relational layer and the ML
substrate, replacing the pandas ``get_dummies`` / sklearn pipelines of the
original implementation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integer codes."""

    def __init__(self):
        self.classes_: List = []
        self._lookup: Dict = {}

    def fit(self, values) -> "LabelEncoder":
        self.classes_ = []
        self._lookup = {}
        for v in values:
            key = self._key(v)
            if key not in self._lookup:
                self._lookup[key] = len(self.classes_)
                self.classes_.append(key)
        return self

    def transform(self, values) -> np.ndarray:
        return np.asarray([self._lookup.get(self._key(v), -1) for v in values], dtype=np.float64)

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, codes) -> list:
        return [self.classes_[int(c)] if 0 <= int(c) < len(self.classes_) else None for c in codes]

    @staticmethod
    def _key(value):
        if value is None:
            return "__missing__"
        if isinstance(value, float) and np.isnan(value):
            return "__missing__"
        return value


class OneHotEncoder:
    """One-hot encode a single categorical column, with an unknown bucket."""

    def __init__(self, max_categories: int = 50):
        self.max_categories = max_categories
        self.categories_: List = []

    def fit(self, values) -> "OneHotEncoder":
        counts: Dict = {}
        for v in values:
            key = LabelEncoder._key(v)
            counts[key] = counts.get(key, 0) + 1
        ordered = sorted(counts, key=lambda k: -counts[k])
        self.categories_ = ordered[: self.max_categories]
        return self

    def transform(self, values) -> np.ndarray:
        index = {c: i for i, c in enumerate(self.categories_)}
        out = np.zeros((len(values), len(self.categories_)), dtype=np.float64)
        for row, v in enumerate(values):
            col = index.get(LabelEncoder._key(v))
            if col is not None:
                out[row, col] = 1.0
        return out

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)


class StandardScaler:
    """Standardise columns of a float matrix to zero mean and unit variance."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = np.nanmean(X, axis=0)
        scale = np.nanstd(X, axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class SimpleImputer:
    """Replace NaNs with the column mean (or a constant)."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in ("mean", "median", "constant"):
            raise ValueError(f"Unknown imputation strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "SimpleImputer":
        X = np.asarray(X, dtype=np.float64)
        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], self.fill_value, dtype=np.float64)
        elif self.strategy == "median":
            with np.errstate(all="ignore"):
                self.statistics_ = np.nanmedian(X, axis=0)
        else:
            with np.errstate(all="ignore"):
                self.statistics_ = np.nanmean(X, axis=0)
        self.statistics_ = np.nan_to_num(self.statistics_, nan=self.fill_value)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64).copy()
        for j in range(X.shape[1]):
            nan_mask = np.isnan(X[:, j])
            if nan_mask.any():
                X[nan_mask, j] = self.statistics_[j]
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class TableVectorizer:
    """Convert :class:`Table` columns into a dense float design matrix.

    Numeric / datetime / boolean columns are used directly (datetime as epoch
    seconds); categorical columns are one-hot encoded when they have few
    distinct values and label-encoded otherwise.  Missing values are imputed
    with the training mean.  The vectoriser is fitted once on training data
    and re-applied to validation / test tables so the feature layout is
    consistent.
    """

    def __init__(self, feature_columns: Sequence[str], one_hot_max_cardinality: int = 10):
        self.feature_columns = list(feature_columns)
        self.one_hot_max_cardinality = one_hot_max_cardinality
        self._encoders: Dict[str, object] = {}
        self._kind: Dict[str, str] = {}
        self._imputer = SimpleImputer(strategy="mean")
        self.output_names_: List[str] = []
        self.fitted_ = False

    def fit(self, table: Table) -> "TableVectorizer":
        self._encoders.clear()
        self._kind.clear()
        self.output_names_ = []
        blocks = []
        for name in self.feature_columns:
            column = table.column(name)
            if column.dtype is DType.CATEGORICAL:
                cardinality = len(column.unique())
                if cardinality <= self.one_hot_max_cardinality:
                    encoder = OneHotEncoder(max_categories=self.one_hot_max_cardinality)
                    block = encoder.fit_transform(column.values)
                    self._encoders[name] = encoder
                    self._kind[name] = "onehot"
                    self.output_names_.extend(f"{name}={c}" for c in encoder.categories_)
                else:
                    encoder = LabelEncoder()
                    block = encoder.fit_transform(column.values).reshape(-1, 1)
                    self._encoders[name] = encoder
                    self._kind[name] = "label"
                    self.output_names_.append(name)
            else:
                block = column.values.reshape(-1, 1)
                self._kind[name] = "numeric"
                self.output_names_.append(name)
            blocks.append(block)
        X = np.hstack(blocks) if blocks else np.zeros((table.num_rows, 0))
        self._imputer.fit(X)
        self.fitted_ = True
        return self

    def transform(self, table: Table) -> np.ndarray:
        if not self.fitted_:
            raise RuntimeError("TableVectorizer.transform called before fit")
        blocks = []
        for name in self.feature_columns:
            column = table.column(name)
            kind = self._kind[name]
            if kind == "onehot":
                blocks.append(self._encoders[name].transform(column.values))
            elif kind == "label":
                blocks.append(self._encoders[name].transform(column.values).reshape(-1, 1))
            else:
                blocks.append(column.values.reshape(-1, 1))
        X = np.hstack(blocks) if blocks else np.zeros((table.num_rows, 0))
        return self._imputer.transform(X)

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)


def train_valid_test_split(
    table: Table,
    ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    seed: int = 0,
    shuffle: bool = True,
) -> Tuple[Table, Table, Table]:
    """Split a table into train / validation / test partitions by row.

    The paper uses a 0.6 / 0.2 / 0.2 split for every dataset (Section
    VII.A.6).
    """
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"Split ratios must sum to 1, got {ratios}")
    n = table.num_rows
    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    n_train = int(round(ratios[0] * n))
    n_valid = int(round(ratios[1] * n))
    train_idx = indices[:n_train]
    valid_idx = indices[n_train : n_train + n_valid]
    test_idx = indices[n_train + n_valid :]
    return table.take(train_idx), table.take(valid_idx), table.take(test_idx)


def label_array(column: Column, task: str) -> np.ndarray:
    """Convert a label column into a float array appropriate for *task*."""
    if column.is_numeric_like:
        return column.values.astype(np.float64)
    encoder = LabelEncoder()
    return encoder.fit_transform(column.values)
