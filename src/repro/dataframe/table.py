"""The :class:`Table` container: an ordered collection of equally sized columns."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.dataframe.column import Column, DType


class Table:
    """A column-oriented table.

    Tables are lightweight: every operation (filter, take, select, join)
    returns a new ``Table`` whose columns share or copy the underlying numpy
    arrays.  Row order is meaningful and preserved by all operations.
    """

    def __init__(self, columns: Sequence[Column] | Mapping[str, Column] | None = None):
        self._columns: Dict[str, Column] = {}
        if columns is None:
            columns = []
        if isinstance(columns, Mapping):
            columns = list(columns.values())
        n_rows = None
        for col in columns:
            if not isinstance(col, Column):
                raise TypeError(f"Table expects Column objects, got {type(col).__name__}")
            if col.name in self._columns:
                raise ValueError(f"Duplicate column name {col.name!r}")
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise ValueError(
                    f"Column {col.name!r} has {len(col)} rows, expected {n_rows}"
                )
            self._columns[col.name] = col

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable], dtypes: Mapping[str, DType | str] | None = None) -> "Table":
        """Build a table from ``{column name: values}``.

        ``dtypes`` optionally forces the dtype of specific columns; all other
        columns have their dtype inferred from the values.
        """
        dtypes = dtypes or {}
        columns = [Column(name, values, dtype=dtypes.get(name)) for name, values in data.items()]
        return cls(columns)

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, object]], column_order: Sequence[str] | None = None) -> "Table":
        """Build a table from a list of row dictionaries."""
        if not rows:
            return cls([])
        names = list(column_order) if column_order is not None else list(rows[0].keys())
        data = {name: [row.get(name) for row in rows] for name in names}
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    @property
    def shape(self) -> tuple:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(rows={self.num_rows}, columns={self.column_names})"

    def column(self, name: str) -> Column:
        """Return the column called *name* (raises ``KeyError`` if absent)."""
        if name not in self._columns:
            raise KeyError(f"No column named {name!r}; available: {self.column_names}")
        return self._columns[name]

    def dtype_of(self, name: str) -> DType:
        return self.column(name).dtype

    def schema(self) -> Dict[str, DType]:
        """Mapping of column name to dtype."""
        return {name: col.dtype for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Column-wise operations
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        """Project onto the given columns, in the given order."""
        return Table([self.column(name) for name in names])

    def drop(self, names: Sequence[str] | str) -> "Table":
        """Return a table without the given column(s)."""
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"Cannot drop missing columns: {missing}")
        keep = [c for n, c in self._columns.items() if n not in set(names)]
        return Table(keep)

    def with_column(self, column: Column) -> "Table":
        """Return a table with *column* appended (or replaced if it exists)."""
        if self._columns and len(column) != self.num_rows:
            raise ValueError(
                f"Column {column.name!r} has {len(column)} rows, table has {self.num_rows}"
            )
        cols = [c for n, c in self._columns.items() if n != column.name]
        cols.append(column)
        return Table(cols)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``{old: new}``."""
        cols = []
        for name, col in self._columns.items():
            cols.append(col.rename(mapping.get(name, name)))
        return Table(cols)

    # ------------------------------------------------------------------
    # Row-wise operations
    # ------------------------------------------------------------------
    def filter(self, mask) -> "Table":
        """Keep only rows where *mask* (boolean array) is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.num_rows:
            raise ValueError(f"Mask length {mask.shape[0]} != number of rows {self.num_rows}")
        return Table([col.filter(mask) for col in self._columns.values()])

    def take(self, indices) -> "Table":
        """Return rows at the given integer positions (repeats allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table([col.take(indices) for col in self._columns.values()])

    def head(self, n: int = 5) -> "Table":
        n = min(n, self.num_rows)
        return self.take(np.arange(n))

    def sample(self, n: int, seed: int | None = None, replace: bool = False) -> "Table":
        """Random sample of *n* rows."""
        rng = np.random.default_rng(seed)
        if not replace:
            n = min(n, self.num_rows)
        indices = rng.choice(self.num_rows, size=n, replace=replace)
        return self.take(indices)

    def sort_by(self, name: str, ascending: bool = True) -> "Table":
        """Sort rows by a numeric-like column."""
        col = self.column(name)
        if not col.is_numeric_like:
            order = np.argsort(np.asarray([str(v) for v in col.values]))
        else:
            order = np.argsort(col.values, kind="stable")
        if not ascending:
            order = order[::-1]
        return self.take(order)

    def row(self, index: int) -> Dict[str, object]:
        """Return a single row as a dictionary."""
        return {name: col.values[index] for name, col in self._columns.items()}

    def iter_rows(self):
        """Iterate over rows as dictionaries (slow; for tests and IO only)."""
        for i in range(self.num_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Joins and concatenation
    # ------------------------------------------------------------------
    def left_join(self, other: "Table", on: Sequence[str] | str, suffix: str = "_right") -> "Table":
        """Left join *other* onto this table on the given key column(s).

        When a key appears several times in *other*, the first matching row
        wins (FeatAug's generated feature tables always have one row per key,
        so this is only a safety net).  Rows without a match get missing
        values in the joined columns.
        """
        if isinstance(on, str):
            on = [on]
        for key in on:
            if key not in self or key not in other:
                raise KeyError(f"Join key {key!r} must exist in both tables")

        right_index: Dict[tuple, int] = {}
        right_keys = [other.column(k) for k in on]
        for i in range(other.num_rows):
            key = tuple(_normalise_key(col.values[i], col) for col in right_keys)
            if key not in right_index:
                right_index[key] = i

        left_keys = [self.column(k) for k in on]
        match = np.full(self.num_rows, -1, dtype=np.int64)
        for i in range(self.num_rows):
            key = tuple(_normalise_key(col.values[i], col) for col in left_keys)
            match[i] = right_index.get(key, -1)

        new_columns = list(self._columns.values())
        existing = set(self.column_names)
        for name in other.column_names:
            if name in on:
                continue
            col = other.column(name)
            out_name = name if name not in existing else name + suffix
            gathered = _gather_with_missing(col, match)
            new_columns.append(Column(out_name, gathered, dtype=col.dtype))
            existing.add(out_name)
        return Table(new_columns)

    def concat_rows(self, other: "Table") -> "Table":
        """Stack another table with the same schema below this one."""
        if self.num_columns == 0:
            return Table([c.copy() for c in other._columns.values()])
        if self.column_names != other.column_names:
            raise ValueError("concat_rows requires identical column names and order")
        cols = []
        for name in self.column_names:
            a, b = self.column(name), other.column(name)
            if a.dtype != b.dtype:
                raise ValueError(f"Column {name!r} dtype mismatch: {a.dtype} vs {b.dtype}")
            if a.is_numeric_like:
                values = np.concatenate([a.values, b.values])
            else:
                values = np.concatenate([a.values, b.values])
            cols.append(Column(name, values, dtype=a.dtype))
        return Table(cols)

    def copy(self) -> "Table":
        return Table([c.copy() for c in self._columns.values()])


def _normalise_key(value, column: Column):
    """Normalise a join key value so float/int representations hash alike."""
    if column.is_numeric_like:
        v = float(value)
        if np.isnan(v):
            return None
        return v
    return value


def _gather_with_missing(column: Column, match: np.ndarray):
    """Gather ``column[match]`` treating ``match == -1`` as a missing value."""
    if column.is_numeric_like:
        out = np.full(match.shape[0], np.nan, dtype=np.float64)
        valid = match >= 0
        out[valid] = column.values[match[valid]]
        return out
    out = np.empty(match.shape[0], dtype=object)
    for i, m in enumerate(match):
        out[i] = column.values[m] if m >= 0 else None
    return out
