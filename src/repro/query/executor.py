"""Execute predicate-aware queries against the relevant table."""

from __future__ import annotations

from repro.dataframe.groupby import group_by_aggregate
from repro.dataframe.table import Table
from repro.query.query import PredicateAwareQuery


def execute_query(query: PredicateAwareQuery, relevant_table: Table) -> Table:
    """Run ``q(R)``: filter by the WHERE clause, then group-by aggregate.

    Returns a table with the query's key columns plus one numeric column named
    ``query.feature_name``.  An empty filter result yields an empty table (the
    join will then fill the feature with missing values for every training
    row).
    """
    predicate = query.build_predicate()
    mask = predicate.mask(relevant_table)
    filtered = relevant_table.filter(mask)
    if filtered.num_rows == 0:
        empty = relevant_table.select(list(query.keys) + [query.agg_attr]).filter(
            [False] * relevant_table.num_rows
        )
        return group_by_aggregate(
            empty, list(query.keys), query.agg_attr, query.agg_func, query.feature_name
        )
    return group_by_aggregate(
        filtered, list(query.keys), query.agg_attr, query.agg_func, query.feature_name
    )
