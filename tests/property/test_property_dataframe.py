"""Property-based tests for the table engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataframe.aggregates import aggregate
from repro.dataframe.column import Column, DType
from repro.dataframe.groupby import group_by_aggregate, group_indices
from repro.dataframe.predicates import Equals, Not, Range
from repro.dataframe.table import Table

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
float_lists = st.lists(finite_floats, min_size=1, max_size=60)
key_lists = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60)


@st.composite
def keyed_table(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    keys = draw(st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n))
    values = draw(st.lists(finite_floats, min_size=n, max_size=n))
    return Table([Column("k", keys, dtype=DType.CATEGORICAL), Column("v", values, dtype=DType.NUMERIC)])


class TestPredicateProperties:
    @given(values=float_lists, threshold=finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_range_and_its_negation_partition_rows(self, values, threshold):
        table = Table([Column("x", values, dtype=DType.NUMERIC)])
        predicate = Range("x", low=threshold)
        mask = predicate.mask(table)
        inverse = Not(predicate).mask(table)
        assert np.all(mask ^ inverse)

    @given(values=float_lists, low=finite_floats, high=finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_narrower_range_selects_subset(self, values, low, high):
        if low > high:
            low, high = high, low
        table = Table([Column("x", values, dtype=DType.NUMERIC)])
        wide = Range("x", low=low).mask(table)
        narrow = Range("x", low=low, high=high).mask(table)
        assert np.all(narrow <= wide)

    @given(keys=key_lists)
    @settings(max_examples=50, deadline=None)
    def test_equality_masks_are_disjoint_and_cover(self, keys):
        table = Table([Column("k", keys, dtype=DType.CATEGORICAL)])
        masks = [Equals("k", v).mask(table) for v in ["a", "b", "c", "d"]]
        total = np.sum(masks, axis=0)
        assert np.all(total == 1)


class TestGroupByProperties:
    @given(table=keyed_table())
    @settings(max_examples=50, deadline=None)
    def test_group_indices_partition_rows(self, table):
        groups = group_indices(table, ["k"])
        all_indices = np.concatenate(list(groups.values()))
        assert sorted(all_indices.tolist()) == list(range(table.num_rows))

    @given(table=keyed_table())
    @settings(max_examples=50, deadline=None)
    def test_sum_of_group_sums_equals_total(self, table):
        out = group_by_aggregate(table, ["k"], "v", "SUM")
        np.testing.assert_allclose(
            np.nansum(out.column("feature").values),
            table.column("v").values.sum(),
            rtol=1e-9,
            atol=1e-6,
        )

    @given(table=keyed_table())
    @settings(max_examples=50, deadline=None)
    def test_count_matches_group_sizes(self, table):
        out = group_by_aggregate(table, ["k"], "v", "COUNT")
        assert out.column("feature").values.sum() == table.num_rows

    @given(table=keyed_table())
    @settings(max_examples=50, deadline=None)
    def test_min_max_bound_avg(self, table):
        mins = group_by_aggregate(table, ["k"], "v", "MIN").column("feature").values
        maxs = group_by_aggregate(table, ["k"], "v", "MAX").column("feature").values
        avgs = group_by_aggregate(table, ["k"], "v", "AVG").column("feature").values
        assert np.all(mins <= avgs + 1e-9)
        assert np.all(avgs <= maxs + 1e-9)


class TestAggregateProperties:
    @given(values=float_lists)
    @settings(max_examples=80, deadline=None)
    def test_std_is_sqrt_var(self, values):
        arr = np.asarray(values)
        np.testing.assert_allclose(
            aggregate("STD", arr), np.sqrt(aggregate("VAR", arr)), rtol=1e-9, atol=1e-9
        )

    @given(values=float_lists)
    @settings(max_examples=80, deadline=None)
    def test_median_between_min_and_max(self, values):
        arr = np.asarray(values)
        assert aggregate("MIN", arr) <= aggregate("MEDIAN", arr) <= aggregate("MAX", arr)

    @given(values=float_lists)
    @settings(max_examples=80, deadline=None)
    def test_count_distinct_at_most_count(self, values):
        arr = np.asarray(values)
        assert aggregate("COUNT_DISTINCT", arr) <= aggregate("COUNT", arr)

    @given(values=float_lists)
    @settings(max_examples=80, deadline=None)
    def test_entropy_nonnegative_and_bounded(self, values):
        arr = np.asarray(values)
        entropy = aggregate("ENTROPY", arr)
        assert entropy >= 0.0
        assert entropy <= np.log(len(values)) + 1e-9


class TestJoinProperties:
    @given(table=keyed_table())
    @settings(max_examples=50, deadline=None)
    def test_left_join_with_aggregate_preserves_rows(self, table):
        feature = group_by_aggregate(table, ["k"], "v", "AVG")
        joined = table.left_join(feature, on="k")
        assert joined.num_rows == table.num_rows
        # Every key present in the table has a group, so no NaNs are introduced.
        assert not np.isnan(joined.column("feature").values).any()
