"""A stdlib-only SQLite execution backend.

Unlike the in-process numpy / python backends, this backend **owns its own
storage, filtering and grouping**: on first use it materialises the bound
relevant table into an in-memory ``sqlite3`` database (numeric-like columns
as ``REAL`` with ``NaN`` mapped to ``NULL``, categorical columns as integer
codes plus a label dictionary), and every plan then runs as one generated
``SELECT ... WHERE ... GROUP BY ... ORDER BY MIN(rowid)`` statement per
aggregate -- SQLite evaluates the WHERE clause and builds the groups, not the
engine.  It exists to prove the :class:`ExecutionBackend` seam is wide enough
for engines that cannot share the engine's predicate masks or group index
(the prerequisite for out-of-process backends like DuckDB).

Semantics mapping (pinned by the backend-parameterized equivalence suite):

* ``NaN`` / ``None`` become SQL ``NULL``; SQL's NULL rules then coincide with
  the reference semantics (aggregates ignore NULLs, equality and range
  predicates never match NULL, ``GROUP BY`` folds all NULL keys into one
  group -- exactly the NaN-key group of the numpy path).
* ``ORDER BY MIN(rowid)`` reproduces the reference group order: groups appear
  by first appearance within the filtered rows.
* ``SUM / MIN / MAX / COUNT / AVG / COUNT(DISTINCT)`` on numeric attributes
  run as native SQL aggregates.  The remaining aggregate functions (and every
  aggregate over a categorical attribute, whose integer coding is defined by
  first appearance *within the filter*) run through a registered collecting
  aggregate: SQLite still filters and groups, and the per-group values come
  back with their rowids so the reference functions of
  :mod:`repro.dataframe.aggregates` are applied in row order.

The WHERE-clause rendering mirrors the SQL text of
:meth:`repro.query.plan.QueryPlan.to_sql` / ``PredicateAwareQuery.to_sql``
(the display rendering of ``core/sql_generation``'s generated queries), but
uses positional column aliases and bound parameters, so arbitrary column
names and constants are safe.  Native SQL float accumulation may differ from
the reference by rounding order, hence the documented value-equality bar of
``1e-9`` for storage-owning backends (in-process backends stay bit-identical).

Sharding: the backend has no ``plan_context`` (SQLite owns filtering and
grouping), so under plan-level sharding each worker slot gets its **own**
backend instance -- its own connection and in-memory materialisation of the
same bound table -- and runs whole plans via :meth:`run_plan`.  Identical
inserts produce identical databases, so sharded results are deterministic.
Group-range sharding does not apply (there are no in-process group codes to
split) and degrades to serial execution.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataframe.aggregates import resolve_aggregate
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends.base import ExecutionBackend, register_backend
from repro.query.plan import PredicateAtom, QueryPlan

#: Aggregates executed as native SQL expressions on numeric-like attributes.
_NATIVE_SQL = {
    "SUM": "SUM({col})",
    "MIN": "MIN({col})",
    "MAX": "MAX({col})",
    "COUNT": "COUNT({col})",
    "AVG": "AVG({col})",
    "COUNT_DISTINCT": "COUNT(DISTINCT {col})",
}


def _factorize(values) -> Tuple[List[Optional[int]], List[object], Dict[object, int]]:
    """First-appearance integer coding of categorical values (``None`` -> NULL).

    Unhashable values fall back to a linear equality scan so any categorical
    column the numpy path accepts can be materialised.
    """
    codes: List[Optional[int]] = []
    labels: List[object] = []
    lookup: Dict[object, int] = {}
    for v in values:
        if v is None:
            codes.append(None)
            continue
        code: Optional[int] = None
        try:
            code = lookup.get(v)
        except TypeError:
            for c, label in enumerate(labels):
                if label == v:
                    code = c
                    break
        if code is None:
            code = len(labels)
            labels.append(v)
            try:
                lookup[v] = code
            except TypeError:
                pass
        codes.append(code)
    return codes, labels, lookup


@register_backend("sqlite")
class SqliteBackend(ExecutionBackend):
    """Grouped aggregation as generated SQL over an in-memory SQLite copy."""

    def on_bind(self) -> None:
        # One instance == one connection == one plan at a time: ``_run_lock``
        # serialises plan execution so the shared connection, the collecting
        # aggregate's ``_collected`` buffer and ``last_sql`` never interleave
        # when user threads hit the same engine concurrently.  The shard
        # scheduler sidesteps the lock entirely by giving every worker slot
        # its own backend instance (its own materialised database).
        self._run_lock = threading.Lock()
        self._reset_state()

    def _reset_state(self) -> None:
        self._conn: Optional[sqlite3.Connection] = None
        #: PID that materialised ``_conn`` -- fork-safety guard: an sqlite
        #: connection must never be used (or even closed) from a process
        #: that did not create it.
        self._conn_pid: Optional[int] = None
        self._colmap: Dict[str, str] = {}
        self._labels: Dict[str, List[object]] = {}
        self._lookups: Dict[str, Dict[object, int]] = {}
        self._collected: List[list] = []
        #: The SQL statements executed by the most recent :meth:`run_plan`.
        self.last_sql: List[str] = []

    def clear(self) -> None:
        """Drop the materialised database; the next plan re-materialises."""
        with self._run_lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._reset_state()

    def refresh(self, old_rows: int) -> None:
        """``INSERT`` the appended slice ``[old_rows:]`` into the database.

        Rowids keep ascending, so ``ORDER BY MIN(rowid)`` group order stays
        first-appearance over the extended table, and the categorical label
        dictionaries are extended with the same first-appearance coding a
        full re-materialisation would produce -- existing codes never
        change, so equality predicates keep resolving to the same stored
        codes.  Fork-safety: a connection inherited from another process is
        dropped, never written to (the PID guard); with no materialisation
        yet there is nothing to extend.
        """
        with self._run_lock:
            if self._conn is None:
                return
            if self._conn_pid != os.getpid():
                # Inherited from the parent: drop the reference without
                # closing it and re-materialise lazily in this process.
                self._reset_state()
                return
            table = self.table
            if table.num_rows <= old_rows:
                return
            arrays: List[list] = []
            for name in table.column_names:
                column = table.column(name)
                values = column.values[old_rows:]
                if column.is_numeric_like:
                    arrays.append([None if np.isnan(v) else float(v) for v in values])
                else:
                    arrays.append(self._extend_codes(name, values))
            placeholders = ", ".join("?" for _ in arrays)
            self._conn.executemany(
                f"INSERT INTO t VALUES ({placeholders})", zip(*arrays)
            )

    def _extend_codes(self, name: str, values) -> List[Optional[int]]:
        """First-appearance codes for appended categorical values, extending
        the column's existing label dictionary in place (mirrors
        :func:`_factorize`, including its unhashable-value fallback)."""
        labels = self._labels[name]
        lookup = self._lookups[name]
        codes: List[Optional[int]] = []
        for v in values:
            if v is None:
                codes.append(None)
                continue
            code: Optional[int] = None
            try:
                code = lookup.get(v)
            except TypeError:
                for c, label in enumerate(labels):
                    if label == v:
                        code = c
                        break
            if code is None:
                code = len(labels)
                labels.append(v)
                try:
                    lookup[v] = code
                except TypeError:
                    pass
            codes.append(code)
        return codes

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def _ensure_materialized(self) -> sqlite3.Connection:
        if self._conn is not None:
            if self._conn_pid == os.getpid():
                return self._conn
            # Forked child: the inherited connection belongs to the parent.
            # Drop the reference without closing it (closing another
            # process's handle over shared state is undefined) and
            # re-materialise in this process.
            self._reset_state()
        table = self.table
        # check_same_thread=False: the pool may run this instance's plans on
        # different threads (across batches via worker-slot reuse, and even
        # concurrently when user threads race whole batches); _run_lock is
        # what guarantees single-threaded use of the connection at any
        # instant -- do not narrow it without replacing that guarantee.
        conn = sqlite3.connect(":memory:", check_same_thread=False)
        column_specs: List[str] = []
        arrays: List[list] = []
        for i, name in enumerate(table.column_names):
            column = table.column(name)
            alias = f"c{i}"
            self._colmap[name] = alias
            if column.is_numeric_like:
                column_specs.append(f"{alias} REAL")
                arrays.append(
                    [None if np.isnan(v) else float(v) for v in column.values]
                )
            else:
                codes, labels, lookup = _factorize(column.values)
                column_specs.append(f"{alias} INTEGER")
                self._labels[name] = labels
                self._lookups[name] = lookup
                arrays.append(codes)
        conn.execute(f"CREATE TABLE t ({', '.join(column_specs)})")
        if arrays and len(arrays[0]):
            placeholders = ", ".join("?" for _ in arrays)
            conn.executemany(f"INSERT INTO t VALUES ({placeholders})", zip(*arrays))

        collected = self._collected

        class _Collect:
            """Collects (rowid, value) pairs per group, skipping NULLs."""

            def __init__(self) -> None:
                self.pairs: List[tuple] = []

            def step(self, rowid, value) -> None:
                if value is not None:
                    self.pairs.append((rowid, value))

            def finalize(self) -> int:
                collected.append(self.pairs)
                return len(collected) - 1

        conn.create_aggregate("repro_collect", 2, _Collect)
        self._conn = conn
        self._conn_pid = os.getpid()
        return conn

    # ------------------------------------------------------------------
    # WHERE-clause generation
    # ------------------------------------------------------------------
    def _column_ref(self, name: str) -> str:
        self.table.column(name)  # KeyError for unknown columns
        return self._colmap[name]

    def _eq_code(self, attr: str, value) -> Optional[int]:
        """The stored code of *value* in a categorical column (``None`` = unseen)."""
        lookup = self._lookups[attr]
        try:
            code = lookup.get(value)
        except TypeError:
            code = None
        if code is not None:
            return code
        for c, label in enumerate(self._labels[attr]):
            if label == value:
                return c
        return None

    def _where_clause(self, atoms: Sequence[PredicateAtom]) -> Tuple[str, List[object]]:
        clauses: List[str] = []
        params: List[object] = []
        for atom in atoms:
            alias = self._column_ref(atom.attr)
            column = self.table.column(atom.attr)
            if atom.kind == "eq":
                if column.is_numeric_like:
                    clauses.append(f"{alias} = ?")
                    params.append(float(atom.value))
                else:
                    code = self._eq_code(atom.attr, atom.value)
                    if code is None:
                        clauses.append("0")  # unseen constant: no row matches
                    else:
                        clauses.append(f"{alias} = ?")
                        params.append(code)
            elif atom.kind == "in":
                members = atom.value or ()
                if column.is_numeric_like:
                    allowed: List[object] = [float(v) for v in members]
                else:
                    codes = (self._eq_code(atom.attr, v) for v in members)
                    allowed = [code for code in codes if code is not None]
                if not allowed:
                    clauses.append("0")  # nothing stored matches any member
                else:
                    placeholders = ", ".join("?" for _ in allowed)
                    clauses.append(f"{alias} IN ({placeholders})")
                    params.extend(allowed)
            elif atom.kind == "window":
                if not column.is_numeric_like:
                    raise TypeError(
                        f"Window predicate needs a numeric-like column, got {column.dtype.value}"
                    )
                clauses.append(f"({alias} IS NOT NULL AND {alias} >= ? AND {alias} < ?)")
                params.append(float(atom.low))
                params.append(float(atom.high))
            else:
                if not column.is_numeric_like:
                    raise TypeError(
                        f"Range predicate needs a numeric-like column, got {column.dtype.value}"
                    )
                parts = [f"{alias} IS NOT NULL"]
                if atom.low is not None:
                    parts.append(f"{alias} >= ?")
                    params.append(float(atom.low))
                if atom.high is not None:
                    parts.append(f"{alias} <= ?")
                    params.append(float(atom.high))
                clauses.append("(" + " AND ".join(parts) + ")")
        if not clauses:
            return "", params
        return " WHERE " + " AND ".join(clauses), params

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_plan_with_context(self, plan: QueryPlan, context=None) -> List[Table]:
        with self._run_lock:
            return self._run_plan_locked(plan)

    def _run_plan_locked(self, plan: QueryPlan) -> List[Table]:
        conn = self._ensure_materialized()
        engine = self.engine
        self.last_sql = []
        where_sql, params = self._where_clause(plan.atoms)
        key_refs = [self._column_ref(k) for k in plan.keys]
        group_sql = (
            f" GROUP BY {', '.join(key_refs)} ORDER BY MIN(rowid)" if key_refs else ""
        )
        select_keys = ", ".join(key_refs)
        key_columns: Optional[List[Column]] = None
        collect_cache: Dict[str, Tuple[list, List[np.ndarray]]] = {}
        results: List[Table] = []
        for spec in plan.aggregates:
            column = self.table.column(spec.attr)  # KeyError for unknown attributes
            start = time.perf_counter()
            if column.is_numeric_like and spec.func in _NATIVE_SQL:
                expr = _NATIVE_SQL[spec.func].format(col=self._colmap[spec.attr])
                sql = f"SELECT {select_keys}, {expr} FROM t{where_sql}{group_sql}"
                self.last_sql.append(sql)
                rows = conn.execute(sql, params).fetchall()
                key_rows = [row[:-1] for row in rows]
                feature = np.asarray(
                    [np.nan if row[-1] is None else float(row[-1]) for row in rows],
                    dtype=np.float64,
                )
            else:
                key_rows, group_values = self._collect_groups(
                    conn, plan, spec.attr, column, where_sql, params,
                    select_keys, group_sql, collect_cache,
                )
                # Parameterized families (QUANTILE, TOP_K_SHARE) are never in
                # _NATIVE_SQL, so they always take this quantile-free fallback
                # ordering: SQLite filters and groups, the reference function
                # aggregates the collected per-group values in rowid order.
                func = resolve_aggregate(spec.func, spec.param)
                feature = np.asarray(
                    [func(values) for values in group_values], dtype=np.float64
                )
            # aggregation_only=False: one SQL statement fuses filtering,
            # grouping and aggregation, so this timing must not land in the
            # aggregation-phase counter the in-process kernels compare on.
            engine.stats.record_kernel(
                spec.func, time.perf_counter() - start,
                backend=self.name, aggregation_only=False,
            )
            if not key_rows:
                results.append(engine.empty_result(plan.keys, spec.feature_name))
                continue
            if key_columns is None:
                key_columns = self._key_columns(plan.keys, key_rows)
            results.append(
                Table(
                    list(key_columns)
                    + [Column(spec.feature_name, feature, dtype=DType.NUMERIC)]
                )
            )
        return results

    def _collect_groups(
        self, conn, plan, attr, column, where_sql, params,
        select_keys, group_sql, collect_cache,
    ) -> Tuple[list, List[np.ndarray]]:
        """Per-group value arrays for *attr*, in rowid (reference) order.

        Categorical attributes are recoded by first appearance across the
        plan's filtered rows -- exactly the coding
        :func:`repro.dataframe.aggregates.column_to_aggregable` produces on
        the filtered table -- so code-valued aggregates like MODE agree with
        the reference.
        """
        cached = collect_cache.get(attr)
        if cached is not None:
            return cached
        self._collected.clear()
        sql = (
            f"SELECT {select_keys}, repro_collect(rowid, {self._colmap[attr]}) "
            f"FROM t{where_sql}{group_sql}"
        )
        self.last_sql.append(sql)
        rows = conn.execute(sql, params).fetchall()
        key_rows = [row[:-1] for row in rows]
        group_pairs = [sorted(self._collected[row[-1]]) for row in rows]
        if column.is_numeric_like:
            group_values = [
                np.asarray([v for _, v in pairs], dtype=np.float64)
                for pairs in group_pairs
            ]
        else:
            recode: Dict[int, float] = {}
            for _, code in sorted(pair for pairs in group_pairs for pair in pairs):
                if code not in recode:
                    recode[code] = float(len(recode))
            group_values = [
                np.asarray([recode[code] for _, code in pairs], dtype=np.float64)
                for pairs in group_pairs
            ]
        collect_cache[attr] = (key_rows, group_values)
        return key_rows, group_values

    def _key_columns(self, keys: Sequence[str], key_rows: list) -> List[Column]:
        columns: List[Column] = []
        for position, name in enumerate(keys):
            source = self.table.column(name)
            raw = [row[position] for row in key_rows]
            if source.is_numeric_like:
                array = np.asarray(
                    [np.nan if v is None else float(v) for v in raw], dtype=np.float64
                )
                columns.append(Column(name, array, dtype=source.dtype))
            else:
                labels = self._labels[name]
                array = np.empty(len(raw), dtype=object)
                array[:] = [None if v is None else labels[int(v)] for v in raw]
                columns.append(Column(name, array, dtype=DType.CATEGORICAL))
        return columns
