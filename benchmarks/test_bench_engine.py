"""Micro-benchmark of the batched query-execution engine.

Replays the QTI / SQL-generation hot path at benchmark scale: a 50-query
batch drawn from one template (a handful of WHERE predicates crossed with the
paper's aggregation functions) against one relevant table.  Three variants:

* ``seed``    -- the original per-query path with the row-at-a-time
  dictionary group index the seed repo shipped,
* ``naive``   -- today's per-query path (:func:`execute_query_naive`;
  vectorized factorization, but nothing shared between queries),
* ``engine``  -- :meth:`QueryEngine.execute_batch` (shared group index,
  predicate-mask cache, vectorized grouped-aggregation kernels).

The acceptance bars are engine >= 3x over the naive per-query path, and the
vectorized kernels >= 2x over the per-group Python loop on the aggregation
phase (``test_vectorized_kernels_vs_python_loop``); the engine's cache/timing
stats are printed for the Fig. 5 optimisation story.
``test_sqlite_vs_numpy_backend`` replays the same batch on the storage-owning
sqlite backend to compare the execution backends head to head (equivalence
within 1e-9 asserted; timings reported, no speed bar -- sqlite pays
materialisation and generated-SQL costs by design).
``test_sharded_vs_serial_batch`` replays the batch with 4 plan-shard workers
(and, for reference, 4 group-range workers): bit-identical results asserted
always; the >= 1.8x speed bar applies on hosts with >= 4 cores (thread
parallelism cannot beat 1x on fewer -- the run reports its numbers and
skips the bar there).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import pytest

import numpy as np

from _bench_utils import write_result
from repro.dataframe.column import DType
from repro.dataframe.groupby import group_by_aggregate
from repro.dataframe.table import Table
from repro.datasets.student import make_student
from repro.experiments.reporting import render_table
from repro.query.engine import EngineConfig, QueryEngine
from repro.query.executor import execute_query_naive
from repro.query.query import PredicateAwareQuery

AGG_FUNCS = ["SUM", "MIN", "MAX", "COUNT", "AVG", "COUNT_DISTINCT", "VAR", "STD", "MEDIAN", "MAD"]
PREDICATES: List[Dict[str, object]] = [
    {"event_type": "notebook_click"},
    {"event_type": "map_hover"},
    {"level": (5.0, 15.0)},
    {"event_type": "notebook_click", "level": (None, 10.0)},
    {},
]
PREDICATE_DTYPES = {"event_type": DType.CATEGORICAL, "level": DType.NUMERIC}


def make_queries() -> List[PredicateAwareQuery]:
    """One template's 50-query batch: 5 predicates x 10 aggregate functions."""
    queries = []
    for predicates in PREDICATES:
        for func in AGG_FUNCS:
            queries.append(
                PredicateAwareQuery(
                    func,
                    "hover_duration",
                    ("session_id",),
                    dict(predicates),
                    {attr: PREDICATE_DTYPES[attr] for attr in predicates},
                )
            )
    return queries


def assert_feature_tables_match(naive_table: Table, engine_table: Table) -> None:
    """Bit-for-bit identical tables (Column.__eq__ treats NaN == NaN)."""
    assert naive_table.column_names == engine_table.column_names
    for name in naive_table.column_names:
        assert naive_table.column(name) == engine_table.column(name)


def group_indices_seed(table: Table, keys) -> Dict[tuple, np.ndarray]:
    """The seed repo's row-at-a-time group index (pre-vectorization)."""
    buckets: Dict[tuple, List[int]] = {}
    normalised = []
    for name in keys:
        col = table.column(name)
        if col.is_numeric_like:
            normalised.append([None if np.isnan(v) else float(v) for v in col.values])
        else:
            normalised.append(list(col.values))
    for i in range(table.num_rows):
        key = tuple(values[i] for values in normalised)
        buckets.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.int64) for k, v in buckets.items()}


def run_seed_path(queries, relevant: Table) -> float:
    """Per-query filter + row-at-a-time grouping, as the seed executed it.

    Output-table materialisation is omitted, so this is a *lower bound* on
    the seed's cost; the assertion below is against the naive path, which
    does build identical outputs.
    """
    from repro.dataframe.aggregates import AGGREGATE_FUNCTIONS, column_to_aggregable

    start = time.perf_counter()
    for query in queries:
        mask = query.build_predicate().mask(relevant)
        filtered = relevant.filter(mask)
        groups = group_indices_seed(filtered, list(query.keys))
        values = column_to_aggregable(filtered.column(query.agg_attr))
        func = AGGREGATE_FUNCTIONS[query.agg_func]
        for rows in groups.values():
            func(values[rows])
    return time.perf_counter() - start


def test_engine_batch_speedup():
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    queries = make_queries()

    seed_seconds = run_seed_path(queries, relevant)

    start = time.perf_counter()
    naive_results = [execute_query_naive(query, relevant) for query in queries]
    naive_seconds = time.perf_counter() - start

    engine = QueryEngine(relevant)
    start = time.perf_counter()
    engine_results = engine.execute_batch(queries)
    engine_seconds = time.perf_counter() - start

    # The fast path must stay element-wise identical to the naive one.
    for naive_table, engine_table in zip(naive_results, engine_results):
        assert_feature_tables_match(naive_table, engine_table)

    rows = [
        ["seed (row-at-a-time)", round(seed_seconds, 4), round(seed_seconds / engine_seconds, 2)],
        ["naive per-query", round(naive_seconds, 4), round(naive_seconds / engine_seconds, 2)],
        ["engine batch", round(engine_seconds, 4), 1.0],
    ]
    stats = engine.stats.as_dict()
    text = "Engine micro-benchmark (50-query batch, one template)\n"
    text += render_table(["variant", "seconds", "speedup vs engine"], rows)
    text += "\nengine stats: " + ", ".join(
        f"{key}={stats[key]}"
        for key in (
            "mask_hits", "mask_misses", "group_index_builds", "group_index_reuses", "batches",
        )
    )
    print(text)
    write_result("bench_engine", text)

    assert naive_seconds / engine_seconds >= 3.0, (
        f"expected >= 3x over the naive per-query path, got "
        f"{naive_seconds / engine_seconds:.2f}x"
    )


def test_vectorized_kernels_vs_python_loop():
    """The grouped kernels vs the per-group Python loop, same 50-query batch.

    Both engines share every other optimisation (mask cache, group index,
    batched plans), so ``stats.seconds_aggregating`` isolates the aggregation
    phase.  Acceptance bar: vectorized >= 2x on that phase.
    """
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    queries = make_queries()

    python_engine = QueryEngine(relevant, config=EngineConfig(backend="python"))
    start = time.perf_counter()
    python_results = python_engine.execute_batch(queries)
    python_seconds = time.perf_counter() - start
    python_agg = python_engine.stats.seconds_aggregating

    vectorized_engine = QueryEngine(relevant, config=EngineConfig(backend="numpy"))
    start = time.perf_counter()
    vectorized_results = vectorized_engine.execute_batch(queries)
    vectorized_seconds = time.perf_counter() - start
    vectorized_agg = vectorized_engine.stats.seconds_aggregating

    # Same batch, same plans: results agree bit-for-bit.
    for python_table, vectorized_table in zip(python_results, vectorized_results):
        assert_feature_tables_match(python_table, vectorized_table)

    rows = [
        [
            "python per-group loop",
            round(python_seconds, 4),
            round(python_agg, 4),
            round(python_agg / vectorized_agg, 2),
        ],
        [
            "vectorized kernels",
            round(vectorized_seconds, 4),
            round(vectorized_agg, 4),
            1.0,
        ],
    ]
    text = "Grouped-kernel micro-benchmark (50-query batch, aggregation phase)\n"
    text += render_table(
        ["kernels", "batch seconds", "aggregation seconds", "agg speedup vs vectorized"], rows
    )
    split = vectorized_engine.stats.kernel_seconds
    text += "\nvectorized kernel split: " + ", ".join(
        f"{name}={split[name]:.4f}s" for name in sorted(split)
    )
    print(text)
    write_result("bench_engine", text, append=True)

    assert python_agg / vectorized_agg >= 2.0, (
        f"expected the vectorized kernels to be >= 2x faster on the "
        f"aggregation phase, got {python_agg / vectorized_agg:.2f}x"
    )


def test_sqlite_vs_numpy_backend():
    """The sqlite backend vs the numpy backend on the 50-query template batch.

    Same engine-level batching and result caching on both sides; only the
    execution backend differs.  The point of the comparison is the backend
    seam, not a speed bar: sqlite materialises the table into an in-memory
    database and runs generated SQL, which is expected to be slower than the
    vectorized kernels -- the assertion is value equivalence within 1e-9.
    """
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    queries = make_queries()

    numpy_engine = QueryEngine(relevant, config=EngineConfig(backend="numpy"))
    start = time.perf_counter()
    numpy_results = numpy_engine.execute_batch(queries)
    numpy_seconds = time.perf_counter() - start

    sqlite_engine = QueryEngine(relevant, config=EngineConfig(backend="sqlite"))
    start = time.perf_counter()
    sqlite_results = sqlite_engine.execute_batch(queries)
    sqlite_seconds = time.perf_counter() - start

    worst = 0.0
    for numpy_table, sqlite_table in zip(numpy_results, sqlite_results):
        assert numpy_table.column_names == sqlite_table.column_names
        for name in numpy_table.column_names:
            left, right = numpy_table.column(name), sqlite_table.column(name)
            if not left.is_numeric_like:
                assert left == right
                continue
            a, b = left.values, right.values
            assert a.shape == b.shape
            assert np.array_equal(np.isnan(a), np.isnan(b))
            assert np.allclose(a, b, rtol=0.0, atol=1e-9, equal_nan=True)
            finite = ~np.isnan(a)
            if finite.any():
                worst = max(worst, float(np.max(np.abs(a[finite] - b[finite]))))

    rows = [
        ["numpy (vectorized kernels)", round(numpy_seconds, 4), 1.0],
        ["sqlite (generated SQL)", round(sqlite_seconds, 4),
         round(sqlite_seconds / numpy_seconds, 2)],
    ]
    text = "Backend comparison (50-query batch, numpy vs sqlite)\n"
    text += render_table(["backend", "seconds", "slowdown vs numpy"], rows)
    text += f"\nmax |numpy - sqlite| over finite feature values: {worst:.3g}"
    text += "\nsqlite backend_seconds: " + ", ".join(
        f"{k}={v:.4f}s" for k, v in sqlite_engine.stats.backend_seconds.items()
    )
    print(text)
    write_result("bench_engine", text, append=True)


def test_sharded_vs_serial_batch():
    """Sharded parallel execute_batch vs serial, 4 workers, same 50 queries.

    The batch fuses into 5 plans; the plan-level scheduler assigns them
    longest-first across 4 worker backends, so the acceptance bar is a
    >= 1.8x wall-clock speedup at 4 workers -- asserted on hosts with at
    least 4 cores (thread parallelism is physically capped at ~1x below
    that; the run still executes, asserts bit-identical results at every
    worker count, reports its numbers, and skips only the speed bar).
    """
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    queries = make_queries()

    def run_best_of(config: EngineConfig, repeats: int = 3):
        """Best-of-N wall clock with a cold engine per repetition.

        Shared CI runners jitter; the minimum over a few cold runs is the
        stable estimate of each variant's cost (warm caches would make
        later repetitions near-free, hence a fresh engine every time).
        """
        best, results, engine = float("inf"), None, None
        for _ in range(repeats):
            engine = QueryEngine(relevant, config=config)
            start = time.perf_counter()
            results = engine.execute_batch(queries)
            best = min(best, time.perf_counter() - start)
        return best, results, engine

    serial_seconds, serial_results, _ = run_best_of(EngineConfig(num_workers=1))
    plan_seconds, plan_results, plan_engine = run_best_of(
        EngineConfig(num_workers=4, shard_strategy="plan")
    )
    group_seconds, group_results, group_engine = run_best_of(
        EngineConfig(num_workers=4, shard_strategy="group")
    )

    # Sharded execution must be bit-for-bit identical to serial execution.
    for serial_table, plan_table, group_table in zip(
        serial_results, plan_results, group_results
    ):
        assert_feature_tables_match(serial_table, plan_table)
        assert_feature_tables_match(serial_table, group_table)

    # The parallel paths genuinely ran (not silently degraded to serial).
    # 5 fused plans dispatched; heavy ones split into aggregate-spec units.
    assert plan_engine.stats.sharded_batches >= 1
    assert plan_engine.stats.plan_shards >= 5
    assert group_engine.stats.group_shards > 0

    plan_speedup = serial_seconds / plan_seconds
    group_speedup = serial_seconds / group_seconds
    rows = [
        ["serial (1 worker)", round(serial_seconds, 4), 1.0],
        ["plan-sharded (4 workers)", round(plan_seconds, 4), round(plan_speedup, 2)],
        ["group-sharded (4 workers)", round(group_seconds, 4), round(group_speedup, 2)],
    ]
    stats = plan_engine.stats
    text = "Sharded execution micro-benchmark (50-query batch, 4 workers)\n"
    text += render_table(["variant", "seconds", "speedup vs serial"], rows)
    text += (
        f"\nplan shards: {stats.plan_shards}, worker utilisation: "
        f"{stats.worker_utilisation:.2f}, shard seconds: "
        + ", ".join(f"{k}={v:.4f}s" for k, v in sorted(stats.shard_seconds.items()))
        + f"\ncpu cores: {os.cpu_count()}"
    )
    print(text)
    write_result("bench_engine", text, append=True)

    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(
            f"sharded speed bar needs >= 4 cores, host has {cores}; "
            f"measured plan={plan_speedup:.2f}x, group={group_speedup:.2f}x "
            f"(results verified bit-identical)"
        )
    assert plan_speedup >= 1.8, (
        f"expected >= 1.8x from plan-level sharding at 4 workers, "
        f"got {plan_speedup:.2f}x"
    )


def test_process_vs_thread_vs_serial_batch():
    """Process-pool sharding vs thread sharding vs serial, 4 workers.

    The process executor places the table's columns in shared memory once
    and runs the plan shards on worker *processes*, sidestepping the GIL
    that caps the thread executor on CPU-bound kernels.  Results are
    asserted bit-identical to serial at every executor, and the engine's
    shared-memory segments must be gone after ``close()``.  The >= 1.8x
    process-over-serial bar is asserted on hosts with >= 4 cores; on fewer
    cores the expectation is rough parity (worker processes timeslice the
    same cores and pay pickling + dispatch overhead), so the run just
    reports its numbers there.
    """
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    queries = make_queries()

    def run_best_of(config: EngineConfig, repeats: int = 3):
        """Best-of-N wall clock, cold engine per repetition (see above)."""
        best, results, engine = float("inf"), None, None
        for _ in range(repeats):
            if engine is not None:
                engine.close()  # release the previous repetition's pool/shm
            engine = QueryEngine(relevant, config=config)
            start = time.perf_counter()
            results = engine.execute_batch(queries)
            best = min(best, time.perf_counter() - start)
        return best, results, engine

    serial_seconds, serial_results, serial_engine = run_best_of(
        EngineConfig(num_workers=1, executor="thread")
    )
    thread_seconds, thread_results, thread_engine = run_best_of(
        EngineConfig(num_workers=4, shard_strategy="plan", executor="thread")
    )
    process_seconds, process_results, process_engine = run_best_of(
        EngineConfig(num_workers=4, shard_strategy="plan", executor="process")
    )

    for serial_table, thread_table, process_table in zip(
        serial_results, thread_results, process_results
    ):
        assert_feature_tables_match(serial_table, thread_table)
        assert_feature_tables_match(serial_table, process_table)

    # The process path genuinely fanned out over shared memory.
    assert process_engine.stats.executor == "process"
    assert process_engine.stats.sharded_batches >= 1
    store = process_engine.sharder.store
    segment_names = list(store.segment_names) if store is not None else []
    assert segment_names

    thread_speedup = serial_seconds / thread_seconds
    process_speedup = serial_seconds / process_seconds
    rows = [
        ["serial (1 worker)", round(serial_seconds, 4), 1.0],
        ["thread-sharded (4 workers)", round(thread_seconds, 4), round(thread_speedup, 2)],
        ["process-sharded (4 workers)", round(process_seconds, 4), round(process_speedup, 2)],
    ]
    text = "Executor micro-benchmark (50-query batch, plan sharding, 4 workers)\n"
    text += render_table(["variant", "seconds", "speedup vs serial"], rows)
    text += (
        f"\nshared-memory segments: {len(segment_names)}, "
        f"process shard seconds: "
        + ", ".join(
            f"{k}={v:.4f}s" for k, v in sorted(process_engine.stats.shard_seconds.items())
        )
        + f"\ncpu cores: {os.cpu_count()}"
    )
    print(text)
    write_result("bench_engine", text, append=True)

    for engine in (serial_engine, thread_engine, process_engine):
        engine.close()
    leaked = [n for n in segment_names if os.path.exists("/dev/shm/" + n)]
    assert not leaked, f"shared-memory segments leaked after close(): {leaked}"

    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(
            f"process speed bar needs >= 4 cores, host has {cores}; measured "
            f"thread={thread_speedup:.2f}x, process={process_speedup:.2f}x "
            f"(expected ~parity here; results verified bit-identical, "
            f"shared memory released)"
        )
    assert process_speedup >= 1.8, (
        f"expected >= 1.8x from process-pool sharding at 4 workers, "
        f"got {process_speedup:.2f}x"
    )


#: The order-statistics-heavy template: 8 sort-based aggregates (everything
#: that touches the shared lexsort order, KURTOSIS included) plus two
#: accumulation aggregates, crossed with the 5 template predicates = 50
#: queries.  Split into two batches so the second batch exercises sort-order
#: reuse *across* batches of one template (its functions never ran before,
#: so nothing comes from the result cache -- only the orders are shared).
ORDER_FUNCS_BATCH1 = ["MIN", "MAX", "MEDIAN", "MODE", "COUNT_DISTINCT", "KURTOSIS", "SUM", "AVG"]
ORDER_FUNCS_BATCH2 = ["MAD", "ENTROPY"]


def make_order_statistics_queries(funcs) -> List[PredicateAwareQuery]:
    return [
        PredicateAwareQuery(
            func,
            "hover_duration",
            ("session_id",),
            dict(predicates),
            {attr: PREDICATE_DTYPES[attr] for attr in predicates},
        )
        for predicates in PREDICATES
        for func in funcs
    ]


def test_fused_sort_reuse_vs_per_aggregate():
    """Fused single-pass execution + the shared sort-order cache vs the
    per-aggregate path, on an order-statistics-heavy 50-query template batch.

    The per-aggregate baseline executes every query as its own plan with the
    sort-order cache disabled (``EngineConfig(sort_cache_size=0)``): each of
    the 40 sort-based queries pays its own ``np.lexsort``.  The fused path
    runs the same 50 queries through ``execute_batch`` with the cache on:
    one sort per (predicate, keys, value column) -- 5 in total -- shared by
    every order-statistics kernel of the fused plans and, for the second
    batch, reused across batches.  Acceptance bar: >= 1.5x on the
    order-statistics aggregation phase (``seconds_sorting +
    seconds_aggregating``), serial and plan-sharded; results bit-identical
    and sort-cache counters identical at every worker count.  The sharded
    bar is asserted on hosts with >= 4 cores: below that, 4 worker threads
    timeslice one core and every concurrently-running kernel's wall-clock
    span stretches by its neighbours' runtime, inflating the booked phase
    (the serial bar, the counters and bit-identity are asserted everywhere).
    """
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    batch1 = make_order_statistics_queries(ORDER_FUNCS_BATCH1)
    batch2 = make_order_statistics_queries(ORDER_FUNCS_BATCH2)
    n_sort_queries = sum(
        func not in ("SUM", "AVG") for func in ORDER_FUNCS_BATCH1 + ORDER_FUNCS_BATCH2
    ) * len(PREDICATES)
    # MAD pays a second sort (its deviation order) on top of the shared main
    # order, so each MAD query books two misses on the uncached path.
    n_mad_queries = len(PREDICATES)

    def phase(engine: QueryEngine) -> float:
        return engine.stats.seconds_sorting + engine.stats.seconds_aggregating

    # Per-aggregate path: one plan per query, no sort-order reuse anywhere.
    per_agg_engine = QueryEngine(relevant, config=EngineConfig(sort_cache_size=0))
    start = time.perf_counter()
    per_agg_results = [per_agg_engine.execute(q) for q in batch1 + batch2]
    per_agg_seconds = time.perf_counter() - start
    assert per_agg_engine.stats.sort_misses == n_sort_queries + n_mad_queries

    def run_fused(config: EngineConfig):
        engine = QueryEngine(relevant, config=config)
        start = time.perf_counter()
        results = engine.execute_batch(batch1) + engine.execute_batch(batch2)
        return engine, results, time.perf_counter() - start

    fused_engine, fused_results, fused_seconds = run_fused(EngineConfig())
    sharded_engine, sharded_results, sharded_seconds = run_fused(
        EngineConfig(num_workers=4, shard_strategy="plan")
    )

    for per_agg, fused, sharded in zip(per_agg_results, fused_results, sharded_results):
        assert_feature_tables_match(per_agg, fused)
        assert_feature_tables_match(per_agg, sharded)

    # One main sort per fused plan; the second batch's main orders are pure
    # sort-cache hits while its MAD queries miss once each on their (cached)
    # deviation orders -- and the spec-split shard units book the identical
    # totals.
    for engine in (fused_engine, sharded_engine):
        assert engine.stats.sort_misses == len(PREDICATES) + n_mad_queries
        assert engine.stats.sort_hits == len(PREDICATES)

    per_agg_phase = phase(per_agg_engine)
    fused_phase = phase(fused_engine)
    sharded_phase = phase(sharded_engine)
    rows = [
        [
            "per-aggregate (no sort reuse)",
            round(per_agg_seconds, 4),
            round(per_agg_phase, 4),
            per_agg_engine.stats.sort_misses,
            per_agg_engine.stats.sort_hits,
            1.0,
        ],
        [
            "fused + sort cache (serial)",
            round(fused_seconds, 4),
            round(fused_phase, 4),
            fused_engine.stats.sort_misses,
            fused_engine.stats.sort_hits,
            round(per_agg_phase / fused_phase, 2),
        ],
        [
            "fused + sort cache (4 plan workers)",
            round(sharded_seconds, 4),
            round(sharded_phase, 4),
            sharded_engine.stats.sort_misses,
            sharded_engine.stats.sort_hits,
            round(per_agg_phase / sharded_phase, 2),
        ],
    ]
    text = "Fused-pass micro-benchmark (order-statistics-heavy 50-query template)\n"
    text += render_table(
        ["variant", "batch seconds", "sort+agg seconds", "sort misses", "sort hits", "phase speedup"],
        rows,
    )
    text += (
        f"\nper-aggregate sorting: {per_agg_engine.stats.seconds_sorting:.4f}s, "
        f"fused sorting: {fused_engine.stats.seconds_sorting:.4f}s"
        f"\ncpu cores: {os.cpu_count()}"
    )
    print(text)
    write_result("bench_engine", text, append=True)

    assert per_agg_phase / fused_phase >= 1.5, (
        f"expected >= 1.5x on the order-statistics aggregation phase from the "
        f"fused pass + sort-order cache, got {per_agg_phase / fused_phase:.2f}x"
    )
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(
            f"sharded phase bar needs >= 4 cores, host has {cores}; measured "
            f"serial {per_agg_phase / fused_phase:.2f}x, sharded "
            f"{per_agg_phase / sharded_phase:.2f}x (results verified "
            f"bit-identical, sort counters identical at every worker count)"
        )
    assert per_agg_phase / sharded_phase >= 1.5, (
        f"expected the sharded fused pass to hold the >= 1.5x phase bar too, "
        f"got {per_agg_phase / sharded_phase:.2f}x"
    )


#: The parameterized-family template: a quantile sweep plus two top-k
#: concentration levels, all riding the *same* shared lexsort order per
#: (predicate, keys, value column) -- crossed with the 5 template predicates.
#: Batch 2 widens the sweep so its main orders come purely from the
#: sort-order cache (its (func, param) pairs never ran, so nothing comes
#: from the result cache -- only the orders are shared).
QUANTILE_FUNCS_BATCH1 = [
    "QUANTILE:0.1",
    "QUANTILE:0.25",
    "QUANTILE:0.5",
    "QUANTILE:0.75",
    "QUANTILE:0.9",
    "TOP_K_SHARE:1",
    "TOP_K_SHARE:3",
]
QUANTILE_FUNCS_BATCH2 = ["QUANTILE:0.99", "TOP_K_SHARE:5"]


def test_fused_quantile_family_sort_reuse_vs_per_aggregate():
    """Fused execution + the shared sort-order cache vs the per-aggregate
    path, on a parameterized quantile-family 45-query template batch.

    Every ``QUANTILE:q`` and ``TOP_K_SHARE:k`` kernel is sort-based and reads
    the *same* main lexsort order (quantiles gather from the sorted segments,
    top-k share from the equal-value runs), so a fused quantile sweep pays
    one ``np.lexsort`` per (predicate, keys, value column) -- 5 in total --
    no matter how many parameter points it evaluates, while the
    per-aggregate baseline (``EngineConfig(sort_cache_size=0)``, one plan
    per query) pays one per query: 45.  Acceptance bar: >= 1.5x on the
    sort + aggregation phase, serial and plan-sharded; results
    bit-identical and sort-cache counters identical at every worker count.
    The sharded bar is asserted on hosts with >= 4 cores (below that,
    worker threads timeslice one core and inflate the booked phase; the
    serial bar, the counters and bit-identity are asserted everywhere).
    """
    relevant = make_student(n_sessions=400, events_per_session=150, seed=0).relevant
    batch1 = make_order_statistics_queries(QUANTILE_FUNCS_BATCH1)
    batch2 = make_order_statistics_queries(QUANTILE_FUNCS_BATCH2)
    n_queries = len(batch1) + len(batch2)

    def phase(engine: QueryEngine) -> float:
        return engine.stats.seconds_sorting + engine.stats.seconds_aggregating

    # Per-aggregate path: one plan per query, every query re-sorts.
    per_agg_engine = QueryEngine(relevant, config=EngineConfig(sort_cache_size=0))
    start = time.perf_counter()
    per_agg_results = [per_agg_engine.execute(q) for q in batch1 + batch2]
    per_agg_seconds = time.perf_counter() - start
    assert per_agg_engine.stats.sort_misses == n_queries

    def run_fused(config: EngineConfig):
        engine = QueryEngine(relevant, config=config)
        start = time.perf_counter()
        results = engine.execute_batch(batch1) + engine.execute_batch(batch2)
        return engine, results, time.perf_counter() - start

    fused_engine, fused_results, fused_seconds = run_fused(EngineConfig())
    sharded_engine, sharded_results, sharded_seconds = run_fused(
        EngineConfig(num_workers=4, shard_strategy="plan")
    )

    for per_agg, fused, sharded in zip(per_agg_results, fused_results, sharded_results):
        assert_feature_tables_match(per_agg, fused)
        assert_feature_tables_match(per_agg, sharded)

    # One main sort per fused plan in batch 1; batch 2's orders are pure
    # sort-cache hits (neither family needs a secondary order) -- and the
    # spec-split shard units book the identical totals.
    for engine in (fused_engine, sharded_engine):
        assert engine.stats.sort_misses == len(PREDICATES)
        assert engine.stats.sort_hits == len(PREDICATES)

    per_agg_phase = phase(per_agg_engine)
    fused_phase = phase(fused_engine)
    sharded_phase = phase(sharded_engine)
    rows = [
        [
            "per-aggregate (no sort reuse)",
            round(per_agg_seconds, 4),
            round(per_agg_phase, 4),
            per_agg_engine.stats.sort_misses,
            per_agg_engine.stats.sort_hits,
            1.0,
        ],
        [
            "fused + sort cache (serial)",
            round(fused_seconds, 4),
            round(fused_phase, 4),
            fused_engine.stats.sort_misses,
            fused_engine.stats.sort_hits,
            round(per_agg_phase / fused_phase, 2),
        ],
        [
            "fused + sort cache (4 plan workers)",
            round(sharded_seconds, 4),
            round(sharded_phase, 4),
            sharded_engine.stats.sort_misses,
            sharded_engine.stats.sort_hits,
            round(per_agg_phase / sharded_phase, 2),
        ],
    ]
    text = "Quantile-family micro-benchmark (parameterized 45-query template)\n"
    text += render_table(
        ["variant", "batch seconds", "sort+agg seconds", "sort misses", "sort hits", "phase speedup"],
        rows,
    )
    text += (
        f"\nper-aggregate sorting: {per_agg_engine.stats.seconds_sorting:.4f}s, "
        f"fused sorting: {fused_engine.stats.seconds_sorting:.4f}s"
        f"\ncpu cores: {os.cpu_count()}"
    )
    print(text)
    write_result("bench_engine", text, append=True)

    assert per_agg_phase / fused_phase >= 1.5, (
        f"expected >= 1.5x on the quantile-family aggregation phase from the "
        f"fused pass + sort-order cache, got {per_agg_phase / fused_phase:.2f}x"
    )
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(
            f"sharded phase bar needs >= 4 cores, host has {cores}; measured "
            f"serial {per_agg_phase / fused_phase:.2f}x, sharded "
            f"{per_agg_phase / sharded_phase:.2f}x (results verified "
            f"bit-identical, sort counters identical at every worker count)"
        )
    assert per_agg_phase / sharded_phase >= 1.5, (
        f"expected the sharded quantile-family pass to hold the >= 1.5x phase "
        f"bar too, got {per_agg_phase / sharded_phase:.2f}x"
    )


def test_engine_result_cache_repeated_queries():
    """Repeated identical queries (TPE re-samples) are near-free."""
    relevant = make_student(n_sessions=200, events_per_session=50, seed=1).relevant
    queries = make_queries()[:10]
    engine = QueryEngine(relevant)
    engine.execute_batch(queries)
    engine.execute_batch(queries)
    # result_hits proves the cached path was taken; the second pass executes
    # zero queries (no wall-clock assertion: CI schedulers jitter).
    assert engine.stats.result_hits == len(queries)
    assert engine.stats.queries == len(queries)


def test_group_by_aggregate_matches_seed_grouping():
    """The vectorized grouping visits exactly the groups the seed loop found."""
    relevant = make_student(n_sessions=50, events_per_session=20, seed=2).relevant
    vectorized = group_by_aggregate(relevant, ["session_id"], "hover_duration", "SUM")
    seed_groups = group_indices_seed(relevant, ["session_id"])
    assert vectorized.num_rows == len(seed_groups)
    assert list(vectorized.column("session_id").values) == [k[0] for k in seed_groups]
