"""Vectorized grouped-aggregation kernels.

Given factorized group codes (one ``int64`` code in ``[0, n_groups)`` per row,
e.g. from :func:`repro.dataframe.groupby.factorize_key_codes`) and a float64
value array, a :class:`GroupedAggregator` computes any of the 15 aggregation
functions of :mod:`repro.dataframe.aggregates` for **every group at once**:

* ``np.bincount`` drives the accumulation family (COUNT, SUM, AVG, VAR,
  VAR_SAMPLE, STD, STD_SAMPLE, KURTOSIS),
* one ``np.lexsort`` per value array drives the order-statistics family
  (MIN, MAX, MEDIAN, MAD) via segment boundaries, and
* equal-value *runs* inside the sorted segments drive the distribution
  family (COUNT_DISTINCT, ENTROPY, MODE).

Intermediates (NaN-stripped values, group counts, sums, deviations, the
sorted segments and the value runs) are computed lazily and shared across
functions, so evaluating all 15 aggregates costs roughly one sort plus a
handful of ``bincount`` passes -- this is what makes
``QueryEngine.execute_batch`` scale past the per-group Python loop.  The sort
order itself is an **injectable** intermediate: callers may pass a
precomputed ``sort_order`` to the constructor or hook an ``order_cache``
callable onto the aggregator, so the lexsort that dominates the
order-statistics family (``SORT_BASED_KERNELS``) runs at most once per
(filter, grouping, value column) -- the query engine caches these orders
across whole query batches (see ``QueryEngine.sort_order``).

Semantics contract (matching :func:`repro.dataframe.aggregates.aggregate`
element-wise):

* NaN values are dropped per group before aggregating.
* Empty groups (no rows, or all values NaN) yield ``NaN``, except COUNT and
  COUNT_DISTINCT which yield ``0.0``.
* VAR_SAMPLE / STD_SAMPLE need at least two values, else ``NaN``.
* KURTOSIS needs at least two values (else ``NaN``) and is ``0.0`` for
  zero-variance groups (decided on ``max == min``).
* MODE ties break deterministically to the **smallest** value (see
  :func:`repro.dataframe.aggregates.agg_mode`).

Every kernel is **bit-for-bit identical** to the per-group Python reference,
including the floating-point accumulations: the reference aggregates total
through a strict left-to-right sum (``aggregates._seq_sum``) and
``np.bincount`` adds its weights one at a time in row order, so both paths
associate every addition identically (the accumulation-order contract in
:mod:`repro.dataframe.aggregates`).  The kernel-equivalence suite in
``tests/dataframe/test_grouped_kernels.py`` pins this down on arbitrary
finite floats, and it is what lets the engine switch kernel modes without
perturbing a search trajectory by even an ulp.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dataframe.aggregates import (
    AGGREGATE_FUNCTIONS,
    PARAMETERIZED_AGGREGATES,
    parse_aggregate_name,
)

#: The 15 plain aggregate functions of Table II, every one with a vectorized
#: kernel.  Parameterized families (``PARAMETERIZED_KERNELS``) are kept
#: separate because their bare names are not computable without a parameter.
GROUPED_KERNELS = frozenset(AGGREGATE_FUNCTIONS)

#: Parameterized aggregate families with vectorized kernels; computed via
#: ``compute("QUANTILE", 0.25)`` or the spelled form ``compute("QUANTILE:0.25")``.
PARAMETERIZED_KERNELS = frozenset(PARAMETERIZED_AGGREGATES)

#: Kernels whose evaluation touches the shared (code, value) sort order.
#: KURTOSIS is here because its zero-variance test reads MIN / MAX off the
#: sorted segments; QUANTILE reads the sorted segments directly and
#: TOP_K_SHARE reads the equal-value runs derived from them; the remaining
#: accumulation kernels are pure ``bincount`` passes and never trigger a sort.
SORT_BASED_KERNELS = frozenset(
    {
        "MIN",
        "MAX",
        "MEDIAN",
        "MAD",
        "MODE",
        "ENTROPY",
        "COUNT_DISTINCT",
        "KURTOSIS",
        "QUANTILE",
        "TOP_K_SHARE",
    }
)


class GroupedAggregator:
    """All 15 grouped aggregates over one (codes, values) pair, vectorized.

    Parameters
    ----------
    codes:
        ``int64`` group id per row, each in ``[0, n_groups)``.  Groups that no
        row references are legal and behave as empty groups.
    values:
        float64 aggregation values aligned to *codes*; NaN marks missing.
    n_groups:
        Number of output groups (the length of every result array).
    sort_order:
        Optional precomputed ``np.lexsort((values, codes))`` order over the
        **NaN-stripped** rows (see :meth:`sort_order`).  Passing an order
        computed for the same (codes, values) pair -- e.g. one cached by the
        query engine across queries of a template -- skips the lexsort that
        otherwise dominates the order-statistics kernels, and is bit-neutral:
        lexsort is deterministic, so the provided order is exactly the one
        the aggregator would compute itself.
    """

    def __init__(
        self,
        codes: np.ndarray,
        values: np.ndarray,
        n_groups: int,
        sort_order: Optional[np.ndarray] = None,
    ):
        codes = np.asarray(codes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if codes.shape != values.shape:
            raise ValueError(
                f"codes and values must align: {codes.shape} vs {values.shape}"
            )
        self.n_groups = int(n_groups)
        valid = ~np.isnan(values)
        if valid.all():
            self._codes, self._values = codes, values
        else:
            self._codes, self._values = codes[valid], values[valid]
        if sort_order is not None and len(sort_order) != len(self._values):
            raise ValueError(
                f"sort_order must cover the {len(self._values)} NaN-stripped "
                f"rows, got {len(sort_order)} entries"
            )
        self._counts = np.bincount(self._codes, minlength=self.n_groups)
        self._nonempty = self._counts > 0
        #: Optional external order source: a callable taking this
        #: aggregator's own compute thunk and returning the (possibly cached)
        #: order array.  The query engine hooks its LRU sort-order cache in
        #: here so the lexsort runs at most once per (predicate, keys, value
        #: column) across queries; left ``None``, the aggregator sorts
        #: locally exactly as before.
        self.order_cache: Optional[
            Callable[[Callable[[], np.ndarray]], np.ndarray]
        ] = None
        #: Same protocol as :attr:`order_cache`, but for MAD's second order:
        #: the lexsort over |x - group median| deviations.  The engine keys it
        #: per (sort key, MEDIAN) pair next to the main order in its LRU.
        self.mad_order_cache: Optional[
            Callable[[Callable[[], np.ndarray]], np.ndarray]
        ] = None
        # Lazily shared intermediates.
        self._order: Optional[np.ndarray] = sort_order
        self._mad_dev: Optional[np.ndarray] = None
        self._mad_order: Optional[np.ndarray] = None
        self._sums: Optional[np.ndarray] = None
        self._means: Optional[np.ndarray] = None
        self._dev: Optional[np.ndarray] = None
        self._ssd: Optional[np.ndarray] = None
        self._sorted: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._runs: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._medians: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compute(self, name: str, param=None) -> np.ndarray:
        """The per-group results of aggregate *name* (length ``n_groups``).

        Parameterized families take their parameter either via *param*
        (``compute("QUANTILE", 0.25)``) or spelled into the name
        (``compute("QUANTILE:0.25")``) -- but not both.
        """
        key, parsed = parse_aggregate_name(name)
        if parsed is not None:
            if param is not None:
                raise ValueError(
                    f"Aggregate {name!r} spells its parameter; do not pass param too"
                )
            param = parsed
        if key in PARAMETERIZED_AGGREGATES:
            if param is None:
                raise ValueError(f"Aggregation function {key!r} requires a parameter")
            _, parser = PARAMETERIZED_AGGREGATES[key]
            return self._PARAM_KERNELS[key](self, parser(param))
        if param is not None:
            raise ValueError(f"Aggregation function {key!r} does not take a parameter")
        kernel = self._KERNELS.get(key)
        if kernel is None:
            raise KeyError(f"No grouped kernel for aggregation function {name!r}")
        return kernel(self)

    @property
    def counts(self) -> np.ndarray:
        """Non-NaN value count per group (``int64``)."""
        return self._counts

    def sort_order(self) -> np.ndarray:
        """The ``np.lexsort((values, codes))`` order over the stripped rows.

        Resolved at most once: a constructor-provided order wins, else the
        :attr:`order_cache` hook (the engine's shared cache) is consulted,
        else the lexsort runs locally.  This is the single order every
        order-statistics kernel (and the distribution family's value runs)
        reads through :meth:`_sorted_segments`.
        """
        if self._order is None:
            if self.order_cache is not None:
                order = self.order_cache(self._compute_sort_order)
                if len(order) != len(self._values):
                    # Same guard the constructor applies to a provided
                    # order: a stale or colliding cached order must fail
                    # loudly, not silently corrupt every order statistic.
                    raise ValueError(
                        f"cached sort order covers {len(order)} rows, "
                        f"expected {len(self._values)} NaN-stripped rows"
                    )
                self._order = order
            else:
                self._order = self._compute_sort_order()
        return self._order

    def _compute_sort_order(self) -> np.ndarray:
        return np.lexsort((self._values, self._codes))

    def resolve_sort_order(self) -> None:
        """Force :meth:`sort_order` resolution now (timing-neutral warm-up).

        The engine's backends call this *outside* their per-kernel timer so
        the lexsort (or the cache lookup replacing it) is accounted to the
        sorting phase, not to whichever sort-based kernel happens to run
        first.
        """
        self.sort_order()

    def mad_deviations(self) -> np.ndarray:
        """``|x - group median|`` per NaN-stripped row (MAD's value array)."""
        if self._mad_dev is None:
            self._mad_dev = np.abs(self._values - self._group_medians()[self._codes])
        return self._mad_dev

    def mad_sort_order(self) -> np.ndarray:
        """The ``np.lexsort((mad_deviations, codes))`` order over the rows.

        MAD is a second grouped median, so it needs a second order -- over
        the deviations instead of the values.  Like :meth:`sort_order` it is
        resolved at most once, consulting :attr:`mad_order_cache` first so
        repeated queries of a template stop paying the deviation lexsort.
        The deviations are a deterministic function of (codes, values), so a
        cached order is exactly the one a local sort would produce.
        """
        if self._mad_order is None:
            # The deviation values are needed regardless of where the order
            # comes from (only the lexsort itself is cacheable), and
            # computing them first resolves the main order too -- so the
            # compute thunk below never re-enters an order-cache hook while
            # the hook's lock is held.
            self.mad_deviations()
            if self.mad_order_cache is not None:
                order = self.mad_order_cache(self._compute_mad_order)
                if len(order) != len(self._values):
                    raise ValueError(
                        f"cached MAD order covers {len(order)} rows, "
                        f"expected {len(self._values)} NaN-stripped rows"
                    )
                self._mad_order = order
            else:
                self._mad_order = self._compute_mad_order()
        return self._mad_order

    def _compute_mad_order(self) -> np.ndarray:
        return np.lexsort((self.mad_deviations(), self._codes))

    def resolve_mad_order(self) -> None:
        """Force :meth:`mad_sort_order` resolution (timing-neutral warm-up).

        Resolves the main order too (the deviations need the group medians),
        so both sorts are booked to the engine's sorting phase before MAD's
        kernel timer starts.
        """
        self.mad_sort_order()

    # ------------------------------------------------------------------
    # Shared intermediates
    # ------------------------------------------------------------------
    def _group_sums(self) -> np.ndarray:
        if self._sums is None:
            self._sums = np.bincount(
                self._codes, weights=self._values, minlength=self.n_groups
            )
        return self._sums

    def _group_means(self) -> np.ndarray:
        if self._means is None:
            with np.errstate(invalid="ignore"):
                self._means = self._group_sums() / self._counts
        return self._means

    def _deviations(self) -> np.ndarray:
        """Per-row deviation from the row's group mean (two-pass, like np.var)."""
        if self._dev is None:
            self._dev = self._values - self._group_means()[self._codes]
        return self._dev

    def _sum_squared_deviations(self) -> np.ndarray:
        if self._ssd is None:
            dev = self._deviations()
            self._ssd = np.bincount(
                self._codes, weights=dev * dev, minlength=self.n_groups
            )
        return self._ssd

    def _sorted_segments(self) -> Tuple[np.ndarray, np.ndarray]:
        """Values sorted by (group, value) plus each group's segment start.

        Empty groups get the start offset of their successor; callers must
        only index segments of non-empty groups.
        """
        if self._sorted is None:
            self._sorted = (self._values[self.sort_order()], self._segment_starts())
        return self._sorted

    def _segment_starts(self) -> np.ndarray:
        starts = np.zeros(self.n_groups, dtype=np.int64)
        if self.n_groups > 1:
            np.cumsum(self._counts[:-1], out=starts[1:])
        return starts

    def _median_from_sorted(self, svals: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Per-group median from segment-sorted values."""
        result = np.full(self.n_groups, np.nan)
        ne = self._nonempty
        if ne.any():
            s, c = starts[ne], self._counts[ne]
            med = svals[s + (c - 1) // 2].copy()
            # Even segments: np.median averages the two middle elements; odd
            # segments keep the element itself (averaging (v + v) / 2 would
            # overflow near the float64 maximum).
            even = (c % 2) == 0
            if even.any():
                lo, hi = med[even], svals[(s + c // 2)[even]]
                med[even] = (lo + hi) / 2.0
            result[ne] = med
        return result

    def _group_medians(self) -> np.ndarray:
        if self._medians is None:
            # Reuse the shared sorted segments: MEDIAN must not pay a second
            # lexsort when MIN/MAX/MODE/... already sorted the values.
            self._medians = self._median_from_sorted(*self._sorted_segments())
        return self._medians

    def _value_runs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Runs of equal values inside the sorted segments.

        Returns ``(run_group, run_value, run_count)``, ordered by
        (group ascending, value ascending) -- one run per distinct value per
        group, which is exactly the ``np.unique(..., return_counts=True)``
        view the Python aggregates take of each group.
        """
        if self._runs is None:
            svals, _ = self._sorted_segments()
            n = svals.shape[0]
            if n == 0:
                empty = np.empty(0, dtype=np.int64)
                self._runs = (empty, np.empty(0, dtype=np.float64), empty)
                return self._runs
            scodes = np.repeat(
                np.arange(self.n_groups, dtype=np.int64), self._counts
            )
            new_run = np.empty(n, dtype=bool)
            new_run[0] = True
            new_run[1:] = (svals[1:] != svals[:-1]) | (scodes[1:] != scodes[:-1])
            run_starts = np.flatnonzero(new_run)
            run_count = np.diff(np.append(run_starts, n))
            self._runs = (scodes[run_starts], svals[run_starts], run_count)
        return self._runs

    def _nan_where_empty(self, values: np.ndarray, copy: bool = False) -> np.ndarray:
        """NaN for empty groups; *copy* protects cached intermediate arrays."""
        values = np.asarray(values, dtype=np.float64)
        if not self._nonempty.all():
            if copy:
                values = values.copy()
            values[~self._nonempty] = np.nan
        return values

    # ------------------------------------------------------------------
    # Kernels (one per aggregate function)
    # ------------------------------------------------------------------
    def count(self) -> np.ndarray:
        return self._counts.astype(np.float64)

    def sum(self) -> np.ndarray:
        return self._nan_where_empty(self._group_sums(), copy=True)

    def avg(self) -> np.ndarray:
        return self._nan_where_empty(self._group_means(), copy=True)

    def min(self) -> np.ndarray:
        svals, starts = self._sorted_segments()
        result = np.full(self.n_groups, np.nan)
        ne = self._nonempty
        if ne.any():
            result[ne] = svals[starts[ne]]
        return result

    def max(self) -> np.ndarray:
        svals, starts = self._sorted_segments()
        result = np.full(self.n_groups, np.nan)
        ne = self._nonempty
        if ne.any():
            result[ne] = svals[starts[ne] + self._counts[ne] - 1]
        return result

    def median(self) -> np.ndarray:
        return self._group_medians().copy()

    def mad(self) -> np.ndarray:
        """Median absolute deviation: a second grouped median over |x - med|."""
        deviations = self.mad_deviations()
        return self._median_from_sorted(
            deviations[self.mad_sort_order()], self._segment_starts()
        )

    def var(self) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return self._nan_where_empty(self._sum_squared_deviations() / self._counts)

    def var_sample(self) -> np.ndarray:
        result = np.full(self.n_groups, np.nan)
        enough = self._counts > 1
        if enough.any():
            result[enough] = self._sum_squared_deviations()[enough] / (
                self._counts[enough] - 1
            )
        return result

    def std(self) -> np.ndarray:
        return np.sqrt(self.var())

    def std_sample(self) -> np.ndarray:
        return np.sqrt(self.var_sample())

    def kurtosis(self) -> np.ndarray:
        """Excess kurtosis; NaN below two values, 0.0 for zero-variance groups.

        Like :func:`repro.dataframe.aggregates.agg_kurtosis`, zero variance is
        decided on the group's value range (``max == min``), so constant
        groups are exactly 0.0 regardless of float accumulation order.
        """
        result = np.full(self.n_groups, np.nan)
        enough = self._counts > 1
        if not enough.any():
            return result
        constant = self.max() == self.min()  # NaN for empty groups -> False
        dev = self._deviations()
        dev2 = dev * dev
        m4 = np.bincount(self._codes, weights=dev2 * dev2, minlength=self.n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            m4 = m4 / self._counts
            # Mirror agg_kurtosis exactly: m4 / var**2 - 3.
            var = self._sum_squared_deviations() / self._counts
            ratio = m4 / (var * var) - 3.0
        zero_variance = constant[enough] | (var[enough] == 0.0)
        result[enough] = np.where(zero_variance, 0.0, ratio[enough])
        return result

    def count_distinct(self) -> np.ndarray:
        run_group, _, _ = self._value_runs()
        return np.bincount(run_group, minlength=self.n_groups).astype(np.float64)

    def entropy(self) -> np.ndarray:
        run_group, _, run_count = self._value_runs()
        if run_group.size == 0:
            return np.full(self.n_groups, np.nan)
        p = run_count / self._counts[run_group]
        terms = -(p * np.log(p))
        return self._nan_where_empty(
            np.bincount(run_group, weights=terms, minlength=self.n_groups)
        )

    def mode(self) -> np.ndarray:
        """Most frequent value; ties break to the smallest value.

        Runs are ordered by value within each group, so the first run that
        reaches the group's maximum count is the smallest tied value --
        the same winner ``agg_mode`` picks via ascending ``np.unique`` plus
        first-occurrence ``argmax``.
        """
        run_group, run_value, run_count = self._value_runs()
        result = np.full(self.n_groups, np.nan)
        if run_group.size == 0:
            return result
        best = np.zeros(self.n_groups, dtype=np.int64)
        np.maximum.at(best, run_group, run_count)
        qualifies = run_count == best[run_group]
        groups, first = np.unique(run_group[qualifies], return_index=True)
        result[groups] = run_value[qualifies][first]
        return result

    def quantile(self, q: float) -> np.ndarray:
        """Linear-interpolation quantile at *q* per group.

        Replays :func:`repro.dataframe.aggregates.agg_quantile`'s formula
        elementwise over the shared sorted segments -- ``pos = q * (n - 1)``,
        truncate, interpolate -- so the result is bit-identical to the
        per-group reference for every q.
        """
        svals, starts = self._sorted_segments()
        result = np.full(self.n_groups, np.nan)
        ne = self._nonempty
        if not ne.any():
            return result
        s, c = starts[ne], self._counts[ne]
        pos = q * (c - 1)
        lo = pos.astype(np.int64)
        frac = pos - lo
        v_lo = svals[s + lo]
        # Clamped gather: rows with frac == 0 never read v_hi, but np.where
        # evaluates both branches, so the index must stay in the segment.
        v_hi = svals[s + np.minimum(lo + 1, c - 1)]
        result[ne] = np.where(frac == 0.0, v_lo, v_lo + (v_hi - v_lo) * frac)
        return result

    def top_k_share(self, k: int) -> np.ndarray:
        """Share of each group's non-NaN rows held by its *k* most frequent values.

        Works over the equal-value runs: order runs by descending count
        within each group, keep each group's first *k*, and total their
        counts.  Counts are exact integers, so the per-group totals (and the
        final division by the group size) match
        :func:`repro.dataframe.aggregates.agg_top_k_share` bit for bit.
        """
        run_group, _, run_count = self._value_runs()
        result = np.full(self.n_groups, np.nan)
        if run_group.size == 0:
            return result
        order = np.lexsort((-run_count, run_group))
        ordered_group = run_group[order]
        ordered_count = run_count[order]
        runs_per_group = np.bincount(run_group, minlength=self.n_groups)
        group_start = np.zeros(self.n_groups, dtype=np.int64)
        if self.n_groups > 1:
            np.cumsum(runs_per_group[:-1], out=group_start[1:])
        rank = np.arange(ordered_group.size, dtype=np.int64) - group_start[ordered_group]
        selected = rank < int(k)
        top = np.bincount(
            ordered_group[selected],
            weights=ordered_count[selected].astype(np.float64),
            minlength=self.n_groups,
        )
        ne = self._nonempty
        result[ne] = top[ne] / self._counts[ne]
        return result

    #: name -> unbound kernel method, keyed by canonical aggregate name.
    _KERNELS = {
        "SUM": sum,
        "MIN": min,
        "MAX": max,
        "COUNT": count,
        "AVG": avg,
        "COUNT_DISTINCT": count_distinct,
        "VAR": var,
        "VAR_SAMPLE": var_sample,
        "STD": std,
        "STD_SAMPLE": std_sample,
        "ENTROPY": entropy,
        "KURTOSIS": kurtosis,
        "MODE": mode,
        "MAD": mad,
        "MEDIAN": median,
    }

    #: parameterized family -> unbound kernel method taking (self, param).
    _PARAM_KERNELS = {
        "QUANTILE": quantile,
        "TOP_K_SHARE": top_k_share,
    }


def grouped_aggregate(
    name: str,
    codes: np.ndarray,
    values: np.ndarray,
    n_groups: int,
    sort_order: Optional[np.ndarray] = None,
    param=None,
) -> np.ndarray:
    """One-shot helper: aggregate *values* per group code with kernel *name*."""
    return GroupedAggregator(codes, values, n_groups, sort_order=sort_order).compute(
        name, param
    )


def grouped_aggregate_many(
    names,
    codes: np.ndarray,
    values: np.ndarray,
    n_groups: int,
    sort_order: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Evaluate several aggregates over one grouping, sharing intermediates.

    Parameterized aggregates are accepted via their spelled names
    (``"QUANTILE:0.25"``).
    """
    aggregator = GroupedAggregator(codes, values, n_groups, sort_order=sort_order)
    return {name: aggregator.compute(name) for name in names}
