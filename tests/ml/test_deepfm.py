"""Unit tests for the DeepFM classifier."""

import numpy as np
import pytest

from repro.ml.deepfm import DeepFMClassifier
from repro.ml.metrics import roc_auc_score


def make_interaction_data(n=600, seed=0):
    """Labels driven by a feature interaction -- the case FM models excel at."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, size=n).astype(float)
    b = rng.integers(0, 4, size=n).astype(float)
    noise = rng.normal(0, 0.3, size=n)
    y = ((a == b).astype(float) + noise > 0.5).astype(float)
    X = np.column_stack([a, b, rng.normal(size=n)])
    return X, y


class TestDeepFM:
    def test_learns_interactions(self):
        X, y = make_interaction_data()
        model = DeepFMClassifier(n_epochs=12, embedding_dim=6, random_state=0).fit(X, y)
        assert roc_auc_score(y, model.predict_proba(X)[:, 1]) > 0.75

    def test_heldout_better_than_chance(self):
        X, y = make_interaction_data(seed=1)
        model = DeepFMClassifier(n_epochs=10, random_state=0).fit(X[:450], y[:450])
        assert roc_auc_score(y[450:], model.predict_proba(X[450:])[:, 1]) > 0.6

    def test_probabilities_valid(self):
        X, y = make_interaction_data(200)
        proba = DeepFMClassifier(n_epochs=3, random_state=0).fit(X, y).predict_proba(X)
        assert proba.shape == (200, 2)
        assert np.all((proba >= 0) & (proba <= 1))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_labels_are_original_classes(self):
        X, y01 = make_interaction_data(200)
        y = np.where(y01 == 1, 7.0, 3.0)
        model = DeepFMClassifier(n_epochs=3, random_state=0).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {3.0, 7.0}

    def test_rejects_multiclass(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.asarray([0, 1, 2] * 10, dtype=float)
        with pytest.raises(ValueError):
            DeepFMClassifier().fit(X, y)

    def test_handles_nan_inputs(self):
        X, y = make_interaction_data(150)
        X[::10, 0] = np.nan
        model = DeepFMClassifier(n_epochs=2, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(np.isfinite(proba))

    def test_deterministic_given_seed(self):
        X, y = make_interaction_data(150)
        a = DeepFMClassifier(n_epochs=2, random_state=5).fit(X, y).predict_proba(X)
        b = DeepFMClassifier(n_epochs=2, random_state=5).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_clone_unfitted(self):
        model = DeepFMClassifier(n_epochs=4)
        clone = model.clone()
        assert clone.n_epochs == 4
        assert not hasattr(clone, "_V")
