"""Deep-layer relationships: flattening a star schema before augmentation.

The paper notes (Section III.A) that deep-layer relationships -- e.g.
Instacart's order items referencing products referencing departments -- reduce
to the single-relevant-table case "by joining all the tables into one relevant
table".  This example builds exactly that schema with
:class:`repro.query.RelationalSchema`, flattens it, and runs FeatAug on the
flattened table so the discovered predicates can reference attributes from any
layer (e.g. the department of the purchased product).

Run with:  python examples/multi_table_schema.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FeatAugConfig
from repro.core.feataug import FeatAug
from repro.dataframe import Column, DType, Table
from repro.query import RelationalSchema, flatten_relevant_tables


def build_schema(n_users: int = 300, items_per_user: int = 20, seed: int = 11):
    """Order items -> products -> departments, plus a user training table."""
    rng = np.random.default_rng(seed)
    products = Table.from_dict(
        {
            "product_id": [float(i) for i in range(12)],
            "product_name": [
                "banana", "organic banana", "milk", "yogurt", "bread", "bagel",
                "pizza", "ice cream", "soda", "water", "chips", "cookies",
            ],
            "department_id": [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 5.0, 5.0, 6.0, 6.0],
            "unit_price": [0.4, 0.7, 2.5, 1.2, 3.0, 1.5, 6.0, 4.5, 1.8, 1.0, 2.2, 2.8],
        }
    )
    departments = Table.from_dict(
        {
            "department_id": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "department": ["produce", "dairy", "bakery", "frozen", "beverages", "snacks"],
        }
    )

    users = [f"user_{i:04d}" for i in range(n_users)]
    n_items = n_users * items_per_user
    item_users = list(rng.choice(users, size=n_items))
    item_products = rng.integers(0, 12, size=n_items).astype(float)
    quantity = rng.integers(1, 5, size=n_items).astype(float)
    order_items = Table(
        [
            Column("user_id", item_users, dtype=DType.CATEGORICAL),
            Column("product_id", item_products, dtype=DType.NUMERIC),
            Column("quantity", quantity, dtype=DType.NUMERIC),
        ]
    )

    # Label: heavy produce buyers (only visible through the department table).
    produce_quantity = {u: 0.0 for u in users}
    for u, p, q in zip(item_users, item_products, quantity):
        if p in (0.0, 1.0):  # the two banana products live in the produce department
            produce_quantity[u] += q
    signal = np.asarray([produce_quantity[u] for u in users])
    label = (signal + rng.normal(0, signal.std() * 0.3, n_users) > np.median(signal)).astype(float)
    household_size = rng.integers(1, 6, size=n_users).astype(float)
    train = Table(
        [
            Column("user_id", users, dtype=DType.CATEGORICAL),
            Column("household_size", household_size, dtype=DType.NUMERIC),
            Column("label", label, dtype=DType.NUMERIC),
        ]
    )

    schema = RelationalSchema(
        {"order_items": order_items, "products": products, "departments": departments}
    )
    schema.add_relationship("order_items", "product_id", "products", "product_id")
    schema.add_relationship("products", "department_id", "departments", "department_id")
    return train, schema


def main() -> None:
    train, schema = build_schema()
    print("Registered tables:", schema.table_names)
    for relationship in schema.relationships:
        print("  relationship:", relationship.describe())

    relevant = flatten_relevant_tables(schema, base="order_items", keys=["user_id"])
    print(f"\nFlattened relevant table: {relevant.num_rows} rows x {relevant.num_columns} columns")
    print("Columns:", relevant.column_names)

    config = FeatAugConfig(
        n_templates=2,
        queries_per_template=3,
        warmup_iterations=30,
        warmup_top_k=6,
        search_iterations=12,
        max_template_depth=2,
        seed=0,
    )
    feataug = FeatAug(label="label", keys=["user_id"], task="binary", model="LR", config=config)
    result = feataug.augment(
        train,
        relevant,
        candidate_attrs=["departments__department", "products__product_name", "products__unit_price"],
        agg_attrs=["quantity"],
        agg_funcs=["SUM", "COUNT", "AVG"],
        n_features=4,
    )

    print("\nDiscovered queries over the flattened schema:")
    for generated in result.queries:
        print(f"\n-- validation AUC {generated.metric:.3f}")
        print(generated.query.to_sql())


if __name__ == "__main__":
    main()
