"""Shard-equivalence suite: serial vs sharded execution on every backend.

The quality benchmarks depend on one canonical numeric trajectory, so sharded
execution must never perturb a result: for every registered backend, every
shard count and both shard strategies, ``execute_batch`` must return tables
element-wise identical to the same engine running serially
(``num_workers=1``).  The in-process backends (numpy / python) are held to
**bit-for-bit** identity -- group-range sharding preserves the
accumulation-order contract because groups never straddle a range boundary
and boolean-mask row selection keeps the original row order within every
group.  The sqlite backend (whose per-worker instances re-materialise their
own database) is held to the storage-owning value bar of ``1e-9``, exactly
like its serial-vs-naive bar.

Edge cases pinned explicitly: empty filter results (empty groups),
single-group tables, and group counts smaller than the worker count (shards
must degrade, never produce empty ranges or duplicate groups).

The same equivalence bars hold for the **process executor**
(``EngineConfig(executor="process")``, :mod:`repro.query.procpool`):
workers aggregate over shared-memory views of the exact same float64 /
object column arrays, so numpy / python stay bit-identical and sqlite keeps
its 1e-9 bar.  The process suite additionally pins deterministic
shared-memory cleanup: after ``QueryEngine.close()`` no segment of the
engine's store remains in ``/dev/shm``.  The hypothesis property suite and
the stats pins stay on the thread executor (helpers pin
``executor="thread"`` so the CI executor matrix slot cannot flip them):
process plan-sharding books mask / sort counters worker-side by design.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe.aggregates import AGGREGATE_FUNCTIONS
from repro.dataframe.column import Column, DType
from repro.dataframe.grouped_kernels import GroupedAggregator
from repro.dataframe.table import Table
from repro.query.backends import backend_names
from repro.query.engine import EngineConfig, QueryEngine
from repro.query.query import PredicateAwareQuery, WindowConstraint
from repro.query.sharding import (
    AUTO_HEAVY_PLAN_COST,
    GroupRangeShards,
    SHARD_STRATEGY_ENV_VAR,
    default_shard_strategy,
    resolve_auto_strategy,
    split_ranges,
)

#: Plain aggregates plus spelled parameterized family members: group-range
#: sharding must stay bit-identical for the new sort-based kernels too.
AGG_FUNCS = list(AGGREGATE_FUNCTIONS) + [
    "QUANTILE:0.25",
    "QUANTILE:0.5",
    "TOP_K_SHARE:2",
]
BACKENDS = tuple(backend_names())
#: In-process backends: serial and sharded results must be bit-identical.
EXACT_BACKENDS = ("numpy", "python")
SHARD_COUNTS = (1, 2, 3, 7)
STRATEGIES = ("plan", "group", "auto")
VALUE_TOLERANCE = 1e-9

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


#: Worker counts exercised by the process-executor suite (kept small: every
#: multi-worker case spins up a real process pool).
PROCESS_WORKER_COUNTS = (1, 2, 4)


def serial_engine(table: Table, backend: str) -> QueryEngine:
    return QueryEngine(
        table, config=EngineConfig(backend=backend, num_workers=1, executor="thread")
    )


def sharded_engine(
    table: Table, backend: str, workers: int, strategy: str, executor: str = "thread"
) -> QueryEngine:
    return QueryEngine(
        table,
        config=EngineConfig(
            backend=backend,
            num_workers=workers,
            shard_strategy=strategy,
            executor=executor,
        ),
    )


def assert_tables_match(actual: Table, expected: Table, exact: bool) -> None:
    assert actual.column_names == expected.column_names
    for name in expected.column_names:
        left, right = actual.column(name), expected.column(name)
        assert left.dtype is right.dtype
        if exact or not left.is_numeric_like:
            assert left == right, f"column {name!r} differs"
        else:
            a, b = left.values, right.values
            assert a.shape == b.shape
            assert np.array_equal(np.isnan(a), np.isnan(b))
            assert np.allclose(a, b, rtol=0.0, atol=VALUE_TOLERANCE, equal_nan=True)


def assert_batches_match(backend: str, actual, expected) -> None:
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert_tables_match(got, want, exact=backend in EXACT_BACKENDS)


@st.composite
def random_tables(draw):
    """Small tables with NaN-bearing keys; group counts vary from 1 to ~20."""
    n = draw(st.integers(min_value=1, max_value=40))
    key_space = draw(st.sampled_from([[1.0], [1.0, 2.0], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]]))

    def rows(strategy):
        return draw(st.lists(strategy, min_size=n, max_size=n))

    return Table(
        [
            Column("key", rows(st.one_of(st.none(), st.sampled_from(key_space))), dtype=DType.NUMERIC),
            Column("cat", rows(st.sampled_from(["x", "y", "z", None])), dtype=DType.CATEGORICAL),
            Column("num", rows(st.one_of(st.none(), finite_floats)), dtype=DType.NUMERIC),
            Column("val", rows(st.one_of(st.none(), finite_floats)), dtype=DType.NUMERIC),
        ]
    )


@st.composite
def random_queries(draw):
    agg_func = draw(st.sampled_from(AGG_FUNCS))
    agg_attr = draw(st.sampled_from(["val", "num", "cat"]))
    predicates = {}
    if draw(st.booleans()):
        # "q" never occurs, so empty filter results are generated regularly
        # -- both for scalar equality and inside IN-lists.
        predicates["cat"] = draw(
            st.one_of(
                st.sampled_from(["x", "y", "q"]),
                st.lists(
                    st.sampled_from(["x", "y", "z", "q"]), min_size=1, max_size=3
                ).map(tuple),
            )
        )
    if draw(st.booleans()):
        low = draw(st.one_of(st.none(), finite_floats))
        high = draw(st.one_of(st.none(), finite_floats))
        if low is not None and high is not None and low > high:
            low, high = high, low
        if low is not None and high is not None and draw(st.booleans()):
            predicates["num"] = WindowConstraint(low, high)
        elif low is not None or high is not None:
            predicates["num"] = (low, high)
    dtypes = {attr: (DType.CATEGORICAL if attr == "cat" else DType.NUMERIC) for attr in predicates}
    return PredicateAwareQuery(agg_func, agg_attr, ("key",), predicates, dtypes)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestShardEquivalenceProperty:
    @given(
        table=random_tables(),
        queries=st.lists(random_queries(), min_size=1, max_size=6),
        workers=st.sampled_from(SHARD_COUNTS),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_batch_matches_serial(self, backend, strategy, table, queries, workers):
        expected = serial_engine(table, backend).execute_batch(queries)
        sharded = sharded_engine(table, backend, workers, strategy)
        assert_batches_match(backend, sharded.execute_batch(queries), expected)
        # A second pass is served from the result cache and must match too.
        assert_batches_match(backend, sharded.execute_batch(queries), expected)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("workers", SHARD_COUNTS)
class TestShardEquivalenceEdgeCases:
    def batch(self):
        queries = []
        for predicates in ({}, {"cat": "x"}, {"cat": "missing"}):
            for func in ("SUM", "COUNT", "MEDIAN", "MODE", "ENTROPY", "KURTOSIS"):
                queries.append(
                    PredicateAwareQuery(
                        func, "val", ("key",), dict(predicates),
                        {k: DType.CATEGORICAL for k in predicates},
                    )
                )
        return queries

    def run_both(self, table, backend, workers, strategy):
        queries = self.batch()
        expected = serial_engine(table, backend).execute_batch(queries)
        actual = sharded_engine(table, backend, workers, strategy).execute_batch(queries)
        assert_batches_match(backend, actual, expected)

    def test_empty_filter_results(self, backend, strategy, workers):
        rng = np.random.default_rng(0)
        table = Table(
            [
                Column("key", rng.integers(0, 5, size=30).astype(np.float64), dtype=DType.NUMERIC),
                Column("cat", ["y"] * 30, dtype=DType.CATEGORICAL),  # "x" never matches
                Column("val", rng.normal(size=30), dtype=DType.NUMERIC),
            ]
        )
        self.run_both(table, backend, workers, strategy)

    def test_single_group_table(self, backend, strategy, workers):
        table = Table(
            [
                Column("key", [1.0] * 12, dtype=DType.NUMERIC),
                Column("cat", ["x", "y"] * 6, dtype=DType.CATEGORICAL),
                Column("val", [float(i) for i in range(12)], dtype=DType.NUMERIC),
            ]
        )
        self.run_both(table, backend, workers, strategy)

    def test_fewer_groups_than_workers(self, backend, strategy, workers):
        table = Table(
            [
                Column("key", [1.0, 2.0, 1.0, 2.0, 1.0], dtype=DType.NUMERIC),
                Column("cat", ["x", "x", "y", "x", "x"], dtype=DType.CATEGORICAL),
                Column("val", [0.5, -1.5, 2.5, float("nan"), 3.5], dtype=DType.NUMERIC),
            ]
        )
        self.run_both(table, backend, workers, strategy)


def process_table(seed: int = 3) -> Table:
    """NaN / None-bearing table for the process suite (numeric + categorical
    columns cover both shared-memory transports)."""
    rng = np.random.default_rng(seed)
    n = 120
    return Table(
        [
            Column("key", rng.integers(0, 11, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [["x", "y", "z", None][i] for i in rng.integers(0, 4, size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column(
                "val",
                np.where(rng.random(n) < 0.15, np.nan, rng.normal(size=n)),
                dtype=DType.NUMERIC,
            ),
        ]
    )


def process_batch():
    queries = []
    for predicates in ({}, {"cat": "x"}, {"cat": "missing"}):
        for func in ("SUM", "COUNT", "MEDIAN", "MODE", "ENTROPY", "KURTOSIS", "MAD"):
            queries.append(
                PredicateAwareQuery(
                    func, "val", ("key",), dict(predicates),
                    {k: DType.CATEGORICAL for k in predicates},
                )
            )
    # Categorical aggregation attribute: exercises the code/label transport.
    queries.append(
        PredicateAwareQuery("MODE", "cat", ("key",), {"cat": "x"}, {"cat": DType.CATEGORICAL})
    )
    queries.append(PredicateAwareQuery("COUNT_DISTINCT", "cat", ("key",), {}, {}))
    return queries


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("workers", PROCESS_WORKER_COUNTS)
class TestProcessExecutorEquivalence:
    """Process-pool execution vs serial: the thread suite's bars, plus
    deterministic shared-memory cleanup on ``close()``."""

    def test_matches_serial_and_releases_shm(self, backend, strategy, workers):
        import os

        table = process_table()
        queries = process_batch()
        expected = serial_engine(table, backend).execute_batch(queries)
        engine = sharded_engine(table, backend, workers, strategy, executor="process")
        assert_batches_match(backend, engine.execute_batch(queries), expected)
        # A second pass is served from the coordinator's result cache.
        assert_batches_match(backend, engine.execute_batch(queries), expected)
        assert engine.stats.result_hits == len(queries)
        store = getattr(engine.sharder, "store", None)
        names = list(store.segment_names) if store is not None else []
        if workers > 1 and strategy == "plan":
            # Plan sharding with >1 worker genuinely placed the table in
            # shared memory (group sharding may fall back serially when the
            # backend exposes no plan context, e.g. sqlite).
            assert names
        engine.close()
        engine.close()  # idempotent
        for name in names:
            assert not os.path.exists("/dev/shm/" + name), name


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestProcessExecutorStats:
    """Process-mode stats are deterministic: two identical runs on fresh
    engines book identical integer counters (result-cache accounting is
    coordinator-side, so queries / batches / result_* also match thread
    mode; mask / sort counters are worker-side under plan sharding and are
    simply deterministic)."""

    def test_counters_deterministic_across_runs(self, strategy):
        snapshots = []
        for _ in range(2):
            engine = sharded_engine(
                process_table(), "numpy", 4, strategy, executor="process"
            )
            engine.execute_batch(process_batch())
            stats = engine.stats.as_dict()
            engine.close()
            snapshots.append(
                {
                    k: v
                    for k, v in stats.items()
                    if isinstance(v, int) and not isinstance(v, bool)
                }
            )
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["queries"] == len(process_batch())

    def test_result_accounting_matches_thread_mode(self, strategy):
        thread_engine = sharded_engine(process_table(), "numpy", 4, strategy)
        thread_engine.execute_batch(process_batch())
        proc_engine = sharded_engine(
            process_table(), "numpy", 4, strategy, executor="process"
        )
        proc_engine.execute_batch(process_batch())
        names = ("queries", "batches", "batched_queries", "result_hits", "result_misses")
        got = {name: getattr(proc_engine.stats, name) for name in names}
        want = {name: getattr(thread_engine.stats, name) for name in names}
        proc_engine.close()
        assert got == want
        assert proc_engine.stats.executor == "process"
        assert thread_engine.stats.executor == "thread"


class TestSplitRanges:
    @given(n=st.integers(min_value=0, max_value=200), shards=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_contiguous_balanced_cover(self, n, shards):
        ranges = split_ranges(n, shards)
        # Contiguous cover of [0, n) with no gaps or overlaps.
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in ranges]
        if n > 0:
            # Never more ranges than groups, never an empty range, balanced.
            assert len(ranges) == min(shards, n)
            assert min(sizes) >= 1
            assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        assert split_ranges(0, 4) == [(0, 0)]


class TestGroupRangeShardsBitIdentity:
    """The group-range sharder vs the unsharded kernels, directly."""

    @given(
        n_groups=st.integers(min_value=1, max_value=12),
        shards=st.integers(min_value=1, max_value=9),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_kernels_concatenate_bit_identically(self, n_groups, shards, data):
        n = data.draw(st.integers(min_value=0, max_value=60))
        codes = np.asarray(
            data.draw(st.lists(st.integers(min_value=0, max_value=n_groups - 1), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        values = np.asarray(
            data.draw(
                st.lists(
                    st.one_of(st.just(float("nan")), finite_floats), min_size=n, max_size=n
                )
            ),
            dtype=np.float64,
        )
        reference = GroupedAggregator(codes, values, n_groups)
        ranges = GroupRangeShards(codes, n_groups, shards)
        parts = [
            GroupedAggregator(part_codes, values[rows], hi - lo)
            for part_codes, rows, (lo, hi) in zip(ranges.codes, ranges.rows, ranges.ranges)
        ]
        for func in AGG_FUNCS:
            want = reference.compute(func)
            got = np.concatenate([part.compute(func) for part in parts])
            assert got.shape == want.shape
            assert np.array_equal(got, want, equal_nan=True), func


class TestAutoStrategyChooser:
    """``auto`` resolves deterministically from (plan count, plan cost)."""

    def test_chooser_is_unit_pinned(self):
        # Wide fused batches always go plan-level, however heavy.
        assert resolve_auto_strategy(3, 0.0) == "plan"
        assert resolve_auto_strategy(2, AUTO_HEAVY_PLAN_COST * 10) == "plan"
        # A single plan goes group-range exactly at the cost threshold.
        assert resolve_auto_strategy(1, AUTO_HEAVY_PLAN_COST) == "group"
        assert resolve_auto_strategy(1, AUTO_HEAVY_PLAN_COST * 2) == "group"
        assert resolve_auto_strategy(1, AUTO_HEAVY_PLAN_COST - 1.0) == "plan"
        assert resolve_auto_strategy(1, 0.0) == "plan"

    def test_default_strategy_reads_the_environment(self, monkeypatch):
        monkeypatch.delenv(SHARD_STRATEGY_ENV_VAR, raising=False)
        assert default_shard_strategy() == "plan"
        monkeypatch.setenv(SHARD_STRATEGY_ENV_VAR, "   ")
        assert default_shard_strategy() == "plan"
        for name in ("plan", "group", "auto"):
            monkeypatch.setenv(SHARD_STRATEGY_ENV_VAR, name)
            assert default_shard_strategy() == name
        monkeypatch.setenv(SHARD_STRATEGY_ENV_VAR, "rows")
        with pytest.raises(ValueError, match="unknown shard strategy"):
            default_shard_strategy()

    def test_engine_config_resolves_the_environment_default(self, monkeypatch):
        monkeypatch.setenv(SHARD_STRATEGY_ENV_VAR, "auto")
        assert EngineConfig().shard_strategy_name == "auto"
        # An explicit value always wins over the environment.
        assert EngineConfig(shard_strategy="group").shard_strategy_name == "group"
        with pytest.raises(ValueError):
            EngineConfig(shard_strategy="rows")


def auto_table(n: int, seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        [
            Column("key", rng.integers(0, 9, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column("cat", [str(c) for c in rng.choice(list("xyz"), size=n)], dtype=DType.CATEGORICAL),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


@pytest.mark.parametrize("executor", ("thread", "process"))
class TestAutoStrategyEngine:
    """Engine-level pinning of the ``auto`` choice, on both executors:
    wide batches book plan shards, a single heavy fused plan books group
    shards, a light single plan stays fully serial -- and every path stays
    bit-identical to serial execution."""

    def run_auto(self, table, queries, executor):
        expected = serial_engine(table, "numpy").execute_batch(queries)
        engine = sharded_engine(table, "numpy", 3, "auto", executor=executor)
        try:
            assert_batches_match("numpy", engine.execute_batch(queries), expected)
            return engine.stats
        finally:
            engine.close()

    def test_wide_batch_goes_plan_level(self, executor):
        queries = [
            PredicateAwareQuery(
                "SUM", "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
            )
            for value in "xyz"
        ]
        stats = self.run_auto(auto_table(60), queries, executor)
        assert stats.plan_shards > 0
        assert stats.group_shards == 0

    def test_single_heavy_plan_goes_group_range(self, executor):
        # All queries fuse into ONE plan (same predicate/keys); its cost
        # (rows x aggregates) crosses AUTO_HEAVY_PLAN_COST, so auto flips
        # that single plan -- parameterized kernels included -- to
        # group-range sharding.
        n = int(AUTO_HEAVY_PLAN_COST) // len(AGG_FUNCS) + 50
        queries = [
            PredicateAwareQuery(func, "val", ("key",)) for func in AGG_FUNCS
        ]
        stats = self.run_auto(auto_table(n), queries, executor)
        assert stats.group_shards > 0
        assert stats.plan_shards == 0

    def test_single_light_plan_stays_serial(self, executor):
        queries = [PredicateAwareQuery("SUM", "val", ("key",))]
        stats = self.run_auto(auto_table(50), queries, executor)
        assert stats.plan_shards == 0
        assert stats.group_shards == 0


class TestShardStats:
    def table(self):
        rng = np.random.default_rng(1)
        return Table(
            [
                Column("key", rng.integers(0, 8, size=80).astype(np.float64), dtype=DType.NUMERIC),
                Column("cat", [str(c) for c in rng.choice(list("abc"), size=80)], dtype=DType.CATEGORICAL),
                Column("val", rng.normal(size=80), dtype=DType.NUMERIC),
            ]
        )

    def batch(self):
        return [
            PredicateAwareQuery(func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL})
            for value in "abc"
            for func in ("SUM", "MEDIAN")
        ]

    def test_plan_sharding_books_observability_counters(self):
        engine = sharded_engine(self.table(), "numpy", 3, "plan")
        engine.execute_batch(self.batch())
        stats = engine.stats
        assert stats.workers == 3
        assert stats.sharded_batches == 1
        # Three fused plans, all dispatched; heavy plans may split into
        # aggregate-spec units, so the unit count can exceed the plan count.
        assert stats.plan_shards >= 3
        assert stats.group_shards == 0
        assert stats.seconds_sharding > 0.0
        assert stats.shard_seconds and all(k.startswith("w") for k in stats.shard_seconds)
        assert 0.0 < stats.worker_utilisation <= 1.0
        assert stats.as_dict()["worker_utilisation"] == stats.worker_utilisation

    def test_group_sharding_books_observability_counters(self):
        engine = sharded_engine(self.table(), "numpy", 3, "group")
        engine.execute_batch(self.batch())
        stats = engine.stats
        assert stats.sharded_batches == 0
        assert stats.plan_shards == 0
        assert stats.group_shards > 0
        assert stats.shard_seconds and all(k.startswith("g") for k in stats.shard_seconds)

    def test_stats_counters_identical_serial_vs_sharded(self):
        """The determinism contract: int counters match at any worker count."""
        table = self.table()
        counter_names = (
            "queries", "batches", "batched_queries", "empty_results",
            "mask_hits", "mask_misses", "mask_evictions",
            "result_hits", "result_misses",
            "group_index_builds", "group_index_reuses",
        )
        baselines = None
        for workers in (1, 4):
            engine = sharded_engine(table, "numpy", workers, "plan")
            engine.execute_batch(self.batch())
            engine.execute_batch(self.batch())  # second pass: result-cache hits
            counts = {name: getattr(engine.stats, name) for name in counter_names}
            if baselines is None:
                baselines = counts
            else:
                assert counts == baselines

    def test_delta_since_carries_workers_and_utilisation(self):
        engine = sharded_engine(self.table(), "numpy", 2, "plan")
        baseline = engine.stats.as_dict()
        engine.execute_batch(self.batch())
        delta = engine.stats.delta_since(baseline)
        assert delta["workers"] == 2
        assert delta["sharded_batches"] == 1
        assert 0.0 <= delta["worker_utilisation"] <= 1.0

    def test_reset_preserves_workers_identity(self):
        engine = sharded_engine(self.table(), "numpy", 2, "plan")
        engine.execute_batch(self.batch())
        engine.stats.reset()
        assert engine.stats.workers == 2
        assert engine.stats.sharded_batches == 0
        assert engine.stats.shard_seconds == {}
