"""Quickstart: augment a training table from a one-to-many relevant table.

This example rebuilds the running example from the FeatAug paper: a
``User_Info`` training table, a ``User_Logs`` behaviour table with a
one-to-many relationship, and a predicate-aware aggregation feature such as

    SELECT cname, AVG(pprice) AS avgprice
    FROM User_Logs
    WHERE department = 'electronics' AND timestamp >= '2023-07-01'
    GROUP BY cname

discovered automatically.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FeatAug, FeatAugConfig
from repro.dataframe import Column, DType, Table
from repro.ml.metrics import roc_auc_score
from repro.ml.linear import LogisticRegression


def build_tables(n_users: int = 400, events_per_user: int = 30, seed: int = 7):
    """Synthesise User_Info / User_Logs with a planted predicate-aware signal."""
    rng = np.random.default_rng(seed)
    users = [f"user_{i:04d}" for i in range(n_users)]
    age = rng.integers(18, 70, size=n_users).astype(float)
    gender = list(rng.choice(["f", "m"], size=n_users))

    n_events = n_users * events_per_user
    event_users = list(rng.choice(users, size=n_events))
    departments = list(
        rng.choice(["electronics", "household", "media", "grocery"], size=n_events)
    )
    prices = np.round(rng.lognormal(3.0, 0.7, size=n_events), 2)
    # Timestamps over the last year; the planted signal lives in the most
    # recent four months (so every customer has a handful of matching events).
    anchor = np.datetime64("2023-08-01").astype("datetime64[s]").astype(float)
    timestamps = anchor - rng.uniform(0, 365 * 86400, size=n_events)
    recent_cutoff = anchor - 120 * 86400

    # Label: did the customer spend a lot on electronics recently?
    spend = {u: 0.0 for u in users}
    for u, d, p, t in zip(event_users, departments, prices, timestamps):
        if d == "electronics" and t >= recent_cutoff:
            spend[u] += p
    signal = np.asarray([spend[u] for u in users])
    noise = rng.normal(0, signal.std() * 0.25, size=n_users)
    label = (signal + noise > np.quantile(signal, 0.6)).astype(float)

    user_info = Table(
        [
            Column("cname", users, dtype=DType.CATEGORICAL),
            Column("age", age, dtype=DType.NUMERIC),
            Column("gender", gender, dtype=DType.CATEGORICAL),
            Column("label", label, dtype=DType.NUMERIC),
        ]
    )
    user_logs = Table(
        [
            Column("cname", event_users, dtype=DType.CATEGORICAL),
            Column("department", departments, dtype=DType.CATEGORICAL),
            Column("pprice", prices, dtype=DType.NUMERIC),
            Column("timestamp", timestamps, dtype=DType.DATETIME),
        ]
    )
    return user_info, user_logs


def main() -> None:
    user_info, user_logs = build_tables()
    print(f"Training table:  {user_info.num_rows} rows x {user_info.num_columns} columns")
    print(f"Relevant table:  {user_logs.num_rows} rows x {user_logs.num_columns} columns")

    config = FeatAugConfig(
        n_templates=2,
        queries_per_template=3,
        warmup_iterations=60,
        warmup_top_k=10,
        search_iterations=20,
        max_template_depth=2,
        seed=0,
    )
    feataug = FeatAug(label="label", keys=["cname"], task="binary", model="LR", config=config)
    result = feataug.augment(
        user_info,
        user_logs,
        candidate_attrs=["department", "timestamp"],
        agg_attrs=["pprice"],
        agg_funcs=["SUM", "AVG", "MAX", "COUNT"],
        n_features=6,
    )

    print("\nDiscovered predicate-aware SQL queries:")
    for generated in result.queries:
        print(f"\n-- validation AUC {generated.metric:.3f}")
        print(generated.query.to_sql())

    # Compare a model trained with and without the augmented features.
    augmented = result.augmented_table
    split = int(0.8 * augmented.num_rows)
    y = augmented.column("label").values

    def auc_with(features):
        X = np.column_stack([augmented.column(f).values for f in features])
        X = np.nan_to_num(X, nan=0.0)
        model = LogisticRegression(n_iter=300).fit(X[:split], y[:split])
        return roc_auc_score(y[split:], model.predict_proba(X[split:])[:, 1])

    base_auc = auc_with(["age"])
    augmented_auc = auc_with(["age"] + result.feature_names)
    print(f"\nHeld-out AUC with base features only : {base_auc:.3f}")
    print(f"Held-out AUC with FeatAug features   : {augmented_auc:.3f}")


if __name__ == "__main__":
    main()
