"""Unit tests for preprocessing: encoders, scaler, imputer, vectoriser, splits."""

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.ml.preprocessing import (
    LabelEncoder,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    TableVectorizer,
    train_valid_test_split,
)


class TestLabelEncoder:
    def test_contiguous_codes(self):
        codes = LabelEncoder().fit_transform(["a", "b", "a", "c"])
        assert list(codes) == [0.0, 1.0, 0.0, 2.0]

    def test_unknown_maps_to_minus_one(self):
        encoder = LabelEncoder().fit(["a", "b"])
        assert encoder.transform(["c"])[0] == -1.0

    def test_missing_values_get_a_code(self):
        codes = LabelEncoder().fit_transform(["a", None, "a"])
        assert codes[1] != codes[0]

    def test_inverse_transform(self):
        encoder = LabelEncoder().fit(["x", "y"])
        assert encoder.inverse_transform([1, 0]) == ["y", "x"]


class TestOneHotEncoder:
    def test_shape(self):
        out = OneHotEncoder().fit_transform(["a", "b", "a"])
        assert out.shape == (3, 2)

    def test_rows_sum_to_one_for_known(self):
        out = OneHotEncoder().fit_transform(["a", "b", "c", "a"])
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_unknown_category_is_all_zero(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        assert encoder.transform(["z"]).sum() == 0.0

    def test_max_categories_keeps_most_frequent(self):
        values = ["a"] * 5 + ["b"] * 3 + ["c"]
        encoder = OneHotEncoder(max_categories=2).fit(values)
        assert set(encoder.categories_) == {"a", "b"}


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        X = np.ones((10, 1))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))


class TestSimpleImputer:
    def test_mean_imputation(self):
        X = np.asarray([[1.0], [np.nan], [3.0]])
        out = SimpleImputer().fit_transform(X)
        assert out[1, 0] == 2.0

    def test_median_imputation(self):
        X = np.asarray([[1.0], [np.nan], [100.0], [3.0]])
        out = SimpleImputer(strategy="median").fit_transform(X)
        assert out[1, 0] == 3.0

    def test_constant_imputation(self):
        X = np.asarray([[np.nan], [np.nan]])
        out = SimpleImputer(strategy="constant", fill_value=-1.0).fit_transform(X)
        assert np.all(out == -1.0)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="magic")

    def test_all_nan_column_uses_fill_value(self):
        X = np.asarray([[np.nan], [np.nan]])
        out = SimpleImputer(strategy="mean", fill_value=0.0).fit_transform(X)
        assert np.all(out == 0.0)


class TestTableVectorizer:
    @pytest.fixture
    def table(self):
        return Table(
            [
                Column("num", [1.0, 2.0, None, 4.0], dtype=DType.NUMERIC),
                Column("small_cat", ["a", "b", "a", "b"], dtype=DType.CATEGORICAL),
                Column("big_cat", [f"v{i}" for i in range(4)], dtype=DType.CATEGORICAL),
            ]
        )

    def test_output_shape(self, table):
        vec = TableVectorizer(["num", "small_cat"], one_hot_max_cardinality=5)
        X = vec.fit_transform(table)
        assert X.shape == (4, 3)  # 1 numeric + 2 one-hot

    def test_high_cardinality_label_encoded(self, table):
        vec = TableVectorizer(["big_cat"], one_hot_max_cardinality=2)
        X = vec.fit_transform(table)
        assert X.shape == (4, 1)

    def test_missing_numeric_imputed(self, table):
        vec = TableVectorizer(["num"])
        X = vec.fit_transform(table)
        assert not np.isnan(X).any()

    def test_transform_before_fit_raises(self, table):
        with pytest.raises(RuntimeError):
            TableVectorizer(["num"]).transform(table)

    def test_consistent_layout_on_new_table(self, table):
        vec = TableVectorizer(["num", "small_cat"]).fit(table)
        other = Table(
            [
                Column("num", [9.0], dtype=DType.NUMERIC),
                Column("small_cat", ["zzz"], dtype=DType.CATEGORICAL),
            ]
        )
        X = vec.transform(other)
        assert X.shape[1] == len(vec.output_names_)

    def test_output_names(self, table):
        vec = TableVectorizer(["num", "small_cat"]).fit(table)
        assert vec.output_names_[0] == "num"
        assert any(name.startswith("small_cat=") for name in vec.output_names_)


class TestSplit:
    def test_sizes(self):
        table = Table.from_dict({"x": list(range(100))})
        train, valid, test = train_valid_test_split(table, (0.6, 0.2, 0.2), seed=0)
        assert train.num_rows == 60
        assert valid.num_rows == 20
        assert test.num_rows == 20

    def test_disjoint_and_complete(self):
        table = Table.from_dict({"x": list(range(50))})
        train, valid, test = train_valid_test_split(table, seed=1)
        values = (
            list(train.column("x").values)
            + list(valid.column("x").values)
            + list(test.column("x").values)
        )
        assert sorted(values) == [float(i) for i in range(50)]

    def test_invalid_ratios(self):
        table = Table.from_dict({"x": [1, 2, 3]})
        with pytest.raises(ValueError):
            train_valid_test_split(table, (0.5, 0.2, 0.2))

    def test_deterministic_with_seed(self):
        table = Table.from_dict({"x": list(range(30))})
        a = train_valid_test_split(table, seed=7)[0]
        b = train_valid_test_split(table, seed=7)[0]
        assert list(a.column("x").values) == list(b.column("x").values)
