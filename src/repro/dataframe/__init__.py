"""A small columnar table engine.

This subpackage replaces the pandas dependency used by the original FeatAug
implementation.  It provides exactly the relational operations FeatAug needs:

* typed columns (numeric, categorical, datetime, boolean),
* vectorised predicate evaluation (equality and range predicates),
* hash group-by with the 15 aggregation functions listed in the paper,
* left joins used to attach generated features to the training table,
* CSV input/output for the example scripts.
"""

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.dataframe.predicates import (
    Predicate,
    Equals,
    IsIn,
    Range,
    And,
    Or,
    Not,
    AlwaysTrue,
)
from repro.dataframe.aggregates import AGGREGATE_FUNCTIONS, aggregate
from repro.dataframe.groupby import group_by_aggregate
from repro.dataframe.io import read_csv, write_csv

__all__ = [
    "Column",
    "DType",
    "Table",
    "Predicate",
    "Equals",
    "IsIn",
    "Range",
    "And",
    "Or",
    "Not",
    "AlwaysTrue",
    "AGGREGATE_FUNCTIONS",
    "aggregate",
    "group_by_aggregate",
    "read_csv",
    "write_csv",
]
