"""Random forests (bagged CART trees with feature subsampling).

RF is one of the paper's four downstream models (Table III / VI) and its
feature importances power the GBDT/LR-style selector baselines when a
tree-based importance is requested.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        max_features: float | str | None = "sqrt",
        max_thresholds: int = 16,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def fit(self, X, y) -> "_BaseForest":
        X, y = self._validate_xy(X, y)
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.estimators_ = []
        importances = np.zeros(X.shape[1], dtype=np.float64)
        for i in range(self.n_estimators):
            indices = rng.choice(n, size=n, replace=True)
            tree = self._make_tree(seed=int(rng.integers(0, 2**31 - 1)))
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated decision tree classifier."""

    _estimator_type = "classifier"

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            max_thresholds=self.max_thresholds,
            random_state=seed,
        )

    def fit(self, X, y) -> "RandomForestClassifier":
        y_arr = np.asarray(y, dtype=np.float64).ravel()
        self.classes_ = np.unique(y_arr)
        return super().fit(X, y_arr)

    def predict_proba(self, X) -> np.ndarray:
        """Average the class distributions predicted by all trees."""
        X = np.asarray(X, dtype=np.float64)
        proba = np.zeros((X.shape[0], self.classes_.shape[0]), dtype=np.float64)
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Align the tree's classes (a bootstrap sample may miss a class).
            for j, c in enumerate(tree.classes_):
                target = np.where(self.classes_ == c)[0][0]
                proba[:, target] += tree_proba[:, j]
        proba /= len(self.estimators_)
        return proba

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated decision tree regressor."""

    _estimator_type = "regressor"

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            max_thresholds=self.max_thresholds,
            random_state=seed,
        )

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        preds = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.estimators_:
            preds += tree.predict(X)
        return preds / len(self.estimators_)
