"""FeatAug core: the paper's primary contribution.

* :class:`FeatAugConfig` -- every knob of the framework in one dataclass.
* :class:`ModelEvaluator` -- trains the downstream model on an augmented
  training table and returns the validation loss (Problem 1's objective).
* proxies -- mutual information / Spearman / logistic-regression low-cost
  proxies (Section V.C and Table VIII).
* :class:`SQLQueryGenerator` -- TPE search over a query pool with the MI
  warm-up (Section V).
* :class:`QueryTemplateIdentifier` -- beam search over WHERE-clause attribute
  combinations with the low-cost proxy and the performance-predictor pruning
  (Section VI).
* :class:`FeatAug` -- the end-to-end facade combining both components
  (Figure 2).
"""

from repro.core.config import FeatAugConfig
from repro.core.evaluation import EvaluationResult, ModelEvaluator
from repro.core.proxies import LRProxy, MutualInformationProxy, Proxy, SpearmanProxy, make_proxy
from repro.core.sql_generation import GeneratedQuery, SQLQueryGenerator
from repro.core.predictor import TemplatePerformancePredictor
from repro.core.template_identification import QueryTemplateIdentifier, TemplateScore
from repro.core.feataug import FeatAug, FeatAugResult

__all__ = [
    "FeatAugConfig",
    "EvaluationResult",
    "ModelEvaluator",
    "Proxy",
    "MutualInformationProxy",
    "SpearmanProxy",
    "LRProxy",
    "make_proxy",
    "GeneratedQuery",
    "SQLQueryGenerator",
    "TemplatePerformancePredictor",
    "QueryTemplateIdentifier",
    "TemplateScore",
    "FeatAug",
    "FeatAugResult",
]
