"""Delta-equivalence suite: append-then-query must equal rebuild-from-scratch.

The bar of the delta-aware engine (:mod:`repro.query.delta`): after any
sequence of ``Table.append_rows`` calls, a warm engine -- whatever it
upgraded in place and whatever it evicted -- must return exactly what a
fresh engine over the fully rebuilt table returns.  The in-process backends
(numpy / python) are held to **bit-for-bit** identity at every worker count
and under both shard strategies and both executors; the storage-owning
sqlite backend (which ``INSERT``\\ s the appended slice into its
materialised database) keeps its usual ``1e-9`` value bar.

Covered append shapes: empty appends (version bump, zero-row delta), new
categorical labels, NaN / missing rows, rows creating brand-new groups, and
repeated appends between query batches.  The hypothesis property generates
the base/delta split; the fixed matrix replays one adversarial append on
every backend x strategy x executor x worker-count combination.

Also pinned here: the refresh counters (``EngineStats.REFRESH_FIELDS``)
book deterministically -- extensions and merges in incremental mode, pure
``staleness_evictions`` in flush mode -- and follow the PR 7 gauge-style
carry contract through ``reset()`` / ``delta_since`` without being gauges
(``set_gauges`` rejects them).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends import backend_names
from repro.query.delta import INCREMENTAL_ENV_VAR, default_incremental
from repro.query.engine import EngineConfig, EngineStats, QueryEngine
from repro.query.query import PredicateAwareQuery, WindowConstraint

BACKENDS = tuple(backend_names())
#: In-process backends: append-then-query must be bit-identical to rebuild.
EXACT_BACKENDS = ("numpy", "python")
VALUE_TOLERANCE = 1e-9

#: Aggregates spanning every upgrade class: additive continuation (COUNT,
#: SUM), sort-order consumers (MEDIAN, MAD), evict-and-recompute moments
#: (AVG, VAR), order statistics (MIN, MAX), the code-valued MODE, and the
#: parameterized families (whose 6-tuple result keys bypass the additive
#: upgrade and evict via ``staleness_evictions`` by construction).
AGG_FUNCS = (
    "COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "VAR", "MODE", "MAD",
    "QUANTILE:0.25", "TOP_K_SHARE:2",
)

USERS = ["u0", "u1", "u2", "u3", "u4", None]
CATS = ["a", "b", "c", None]
#: Labels only the appended rows may introduce (new groups, new domains).
NEW_USERS = ["u5", "u6"]
NEW_CATS = ["zz"]


def build_table(rows) -> Table:
    """rows: list of (user, cat, x) tuples."""
    return Table(
        [
            Column("user", [r[0] for r in rows], dtype=DType.CATEGORICAL),
            Column("cat", [r[1] for r in rows], dtype=DType.CATEGORICAL),
            Column(
                "x",
                np.asarray([r[2] for r in rows], dtype=np.float64)
                if rows
                else np.empty(0, dtype=np.float64),
                dtype=DType.NUMERIC,
            ),
        ]
    )


def query_battery():
    queries = []
    for func in AGG_FUNCS:
        queries.append(
            PredicateAwareQuery(
                func, "x", ("user",), {"cat": "a"}, {"cat": DType.CATEGORICAL}
            )
        )
        queries.append(
            PredicateAwareQuery(
                func, "x", ("user",), {"x": (0.2, 0.8)}, {"x": DType.NUMERIC}
            )
        )
        queries.append(PredicateAwareQuery(func, "x", ("user",), {}, {}))
        queries.append(
            PredicateAwareQuery(func, "cat", ("user", "cat"), {}, {})
        )
        # IN-list including a label only the delta introduces: the cached
        # membership mask must extend correctly over the appended slice.
        queries.append(
            PredicateAwareQuery(
                func, "x", ("user",), {"cat": ("a", "zz")}, {"cat": DType.CATEGORICAL}
            )
        )
        # Half-open window over the event column.
        queries.append(
            PredicateAwareQuery(
                func, "x", ("user",), {"x": WindowConstraint(0.2, 0.8)},
                {"x": DType.NUMERIC},
            )
        )
    return queries


def assert_tables_equal(result: Table, reference: Table, tolerance: float, tag):
    assert result.column_names == reference.column_names, tag
    for name in result.column_names:
        got = result.column(name).values
        want = reference.column(name).values
        if result.column(name).is_numeric_like:
            assert got.shape == want.shape, (tag, name)
            if tolerance == 0.0:
                assert np.array_equal(got, want, equal_nan=True), (tag, name, got, want)
            else:
                both_nan = np.isnan(got) & np.isnan(want)
                close = np.abs(got - want) <= tolerance
                assert bool(np.all(both_nan | close)), (tag, name, got, want)
        else:
            assert list(got) == list(want), (tag, name, got, want)


def assert_equivalent(results, references, tolerance: float, tag):
    assert len(results) == len(references), tag
    for i, (result, reference) in enumerate(zip(results, references)):
        assert_tables_equal(result, reference, tolerance, (tag, i))


def rebuilt_results(rows, backend: str, queries):
    engine = QueryEngine(
        build_table(rows), config=EngineConfig(backend=backend, executor="thread")
    )
    try:
        return engine.execute_batch(queries)
    finally:
        engine.close()


def fixed_base_rows(n: int = 240, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (
            USERS[int(rng.integers(0, len(USERS)))],
            CATS[int(rng.integers(0, len(CATS)))],
            float(v) if v < 0.9 else float("nan"),
        )
        for v in rng.random(n)
    ]


def fixed_delta_rows(n: int = 30, seed: int = 7):
    """An adversarial delta: new labels, new groups, NaNs, missing keys."""
    rng = np.random.default_rng(seed)
    pool_users = USERS + NEW_USERS
    pool_cats = CATS + NEW_CATS
    return [
        (
            pool_users[int(rng.integers(0, len(pool_users)))],
            pool_cats[int(rng.integers(0, len(pool_cats)))],
            float(v) if v < 0.8 else float("nan"),
        )
        for v in rng.random(n)
    ]


def run_append_scenario(backend, workers, strategy, executor, incremental):
    """Warm an engine, append (adversarial delta + an empty append), requery."""
    base = fixed_base_rows()
    delta = fixed_delta_rows()
    table = build_table(base)
    queries = query_battery()
    config = EngineConfig(
        backend=backend,
        num_workers=workers,
        shard_strategy=strategy,
        executor=executor,
        incremental=incremental,
    )
    engine = QueryEngine(table, config=config)
    try:
        engine.execute_batch(queries)  # warm every cache layer
        table.append_rows(build_table(delta))
        table.append_rows({"user": [], "cat": [], "x": []})
        results = engine.execute_batch(queries)
        stats = engine.stats.as_dict()
    finally:
        engine.close()
    tolerance = 0.0 if backend in EXACT_BACKENDS else VALUE_TOLERANCE
    tag = (backend, workers, strategy, executor, incremental)
    assert_equivalent(
        results, rebuilt_results(base + delta, backend, queries), tolerance, tag
    )
    return stats


class TestDefaultIncremental:
    def test_defaults_to_off(self, monkeypatch):
        monkeypatch.delenv(INCREMENTAL_ENV_VAR, raising=False)
        assert default_incremental() is False
        assert EngineConfig().incremental_enabled is False

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_boolean_words(self, monkeypatch, raw, expected):
        monkeypatch.setenv(INCREMENTAL_ENV_VAR, raw)
        assert default_incremental() is expected
        assert EngineConfig().incremental_enabled is expected

    def test_malformed_value_raises_at_config_validation(self, monkeypatch):
        monkeypatch.setenv(INCREMENTAL_ENV_VAR, "sideways")
        with pytest.raises(ValueError, match="REPRO_ENGINE_INCREMENTAL"):
            EngineConfig().validate()

    def test_explicit_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv(INCREMENTAL_ENV_VAR, "1")
        assert EngineConfig(incremental=False).incremental_enabled is False

    def test_incremental_is_part_of_the_cache_key(self):
        assert (
            EngineConfig(incremental=True).cache_key()
            != EngineConfig(incremental=False).cache_key()
        )


class TestAppendEquivalenceThread:
    """Every backend x strategy x worker count, thread executor."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy", ("plan", "group", "auto"))
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_incremental_append_equals_rebuild(self, backend, strategy, workers):
        run_append_scenario(backend, workers, strategy, "thread", True)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_flush_append_equals_rebuild(self, backend):
        run_append_scenario(backend, 1, "plan", "thread", False)

    def test_repeated_appends_between_batches(self):
        base = fixed_base_rows(120, seed=3)
        queries = query_battery()
        table = build_table(base)
        engine = QueryEngine(
            table,
            config=EngineConfig(backend="numpy", executor="thread", incremental=True),
        )
        rows = list(base)
        try:
            engine.execute_batch(queries)
            for step in range(3):
                delta = fixed_delta_rows(10, seed=20 + step)
                table.append_rows(build_table(delta))
                rows += delta
                results = engine.execute_batch(queries)
                assert_equivalent(
                    results,
                    rebuilt_results(rows, "numpy", queries),
                    0.0,
                    ("repeated", step),
                )
        finally:
            engine.close()


class TestAppendEquivalenceProcess:
    """Process executor (trimmed: the pool spin-up dominates runtime; the
    executor seam is identical across backends, and the sqlite worker path
    is exercised by the thread matrix plus test_sharding_equivalence)."""

    @pytest.mark.parametrize("strategy", ("plan", "group"))
    @pytest.mark.parametrize("workers", (2, 4))
    def test_incremental_append_equals_rebuild(self, strategy, workers):
        run_append_scenario("numpy", workers, strategy, "process", True)


class TestRefreshCounters:
    def test_incremental_counters_book_extensions(self):
        stats = run_append_scenario("numpy", 1, "plan", "thread", True)
        assert stats["appended_rows"] == len(fixed_delta_rows())
        assert stats["masks_extended"] > 0
        assert stats["indexes_extended"] > 0
        assert stats["runs_merged"] > 0
        assert stats["results_upgraded"] > 0
        assert stats["staleness_evictions"] > 0  # the non-additive results

    def test_flush_counters_book_pure_evictions(self):
        stats = run_append_scenario("numpy", 1, "plan", "thread", False)
        assert stats["appended_rows"] == len(fixed_delta_rows())
        assert stats["masks_extended"] == 0
        assert stats["indexes_extended"] == 0
        assert stats["runs_merged"] == 0
        assert stats["results_upgraded"] == 0
        assert stats["staleness_evictions"] > 0

    def test_empty_append_books_no_refresh_work(self):
        table = build_table(fixed_base_rows(60, seed=5))
        engine = QueryEngine(
            table,
            config=EngineConfig(backend="numpy", executor="thread", incremental=True),
        )
        queries = query_battery()
        try:
            warm = engine.execute_batch(queries)
            table.append_rows({"user": [], "cat": [], "x": []})
            again = engine.execute_batch(queries)
            assert_equivalent(again, warm, 0.0, "empty-append")
            stats = engine.stats
            assert stats.appended_rows == 0
            assert stats.staleness_evictions == 0
            assert stats.masks_extended == 0
            # The version probe resynced without touching any cache: the
            # second batch was answered entirely from the result cache.
            assert stats.result_hits >= len(queries)
        finally:
            engine.close()

    def test_sync_happens_once_per_version_bump(self):
        table = build_table(fixed_base_rows(60, seed=6))
        engine = QueryEngine(
            table,
            config=EngineConfig(backend="numpy", executor="thread", incremental=True),
        )
        queries = query_battery()
        try:
            engine.execute_batch(queries)
            table.append_rows(build_table(fixed_delta_rows(8, seed=9)))
            engine.execute_batch(queries)
            booked = engine.stats.appended_rows
            engine.execute_batch(queries)  # no new version: no refresh work
            assert engine.stats.appended_rows == booked
        finally:
            engine.close()


class TestRefreshFieldsStatsContract:
    """Satellite: REFRESH_FIELDS follow the PR 7 gauge carry contract."""

    def make_stats(self) -> EngineStats:
        stats = EngineStats(backend="numpy", workers=1, executor="thread")
        stats.bump(
            queries=4,
            appended_rows=30,
            masks_extended=2,
            indexes_extended=1,
            runs_merged=3,
            results_upgraded=5,
            staleness_evictions=7,
        )
        return stats

    def test_reset_carries_refresh_fields_and_zeroes_counters(self):
        stats = self.make_stats()
        stats.reset()
        assert stats.queries == 0
        assert stats.appended_rows == 30
        assert stats.masks_extended == 2
        assert stats.indexes_extended == 1
        assert stats.runs_merged == 3
        assert stats.results_upgraded == 5
        assert stats.staleness_evictions == 7

    def test_delta_since_passes_refresh_fields_through_unsubtracted(self):
        stats = self.make_stats()
        baseline = {name: 10**6 for name in EngineStats.REFRESH_FIELDS}
        baseline["queries"] = 1
        delta = stats.delta_since(baseline)
        assert delta["queries"] == 3
        for name in EngineStats.REFRESH_FIELDS:
            assert delta[name] == getattr(stats, name)

    def test_refresh_fields_are_not_gauges(self):
        stats = self.make_stats()
        for name in EngineStats.REFRESH_FIELDS:
            with pytest.raises(ValueError, match="not a gauge"):
                stats.set_gauges(**{name: 0})


# ----------------------------------------------------------------------
# Hypothesis property: arbitrary base/delta splits, numpy serial engine.
# ----------------------------------------------------------------------
row_strategy = st.tuples(
    st.sampled_from(USERS + NEW_USERS),
    st.sampled_from(CATS + NEW_CATS),
    st.one_of(
        st.just(float("nan")),
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=32),
    ),
)


class TestAppendProperty:
    @given(
        base=st.lists(row_strategy, min_size=1, max_size=40),
        deltas=st.lists(
            st.lists(row_strategy, min_size=0, max_size=12),
            min_size=1,
            max_size=3,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_append_then_query_equals_rebuild(self, base, deltas):
        queries = query_battery()
        table = build_table(base)
        engine = QueryEngine(
            table,
            config=EngineConfig(backend="numpy", executor="thread", incremental=True),
        )
        rows = list(base)
        try:
            engine.execute_batch(queries)
            for delta in deltas:
                table.append_rows(build_table(delta))
                rows += delta
            results = engine.execute_batch(queries)
        finally:
            engine.close()
        assert_equivalent(
            results, rebuilt_results(rows, "numpy", queries), 0.0, "property"
        )
