"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, load_dataset
from repro.dataframe.groupby import group_sizes
from repro.stats.mutual_information import mutual_information

SMALL_SCALE = 0.08


@pytest.fixture(scope="module")
def bundles():
    return {name: load_dataset(name, scale=SMALL_SCALE, seed=0) for name in DATASET_NAMES}


class TestRegistry:
    def test_all_names_load(self, bundles):
        assert set(bundles) == set(DATASET_NAMES)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("tmall", scale=0.0)

    def test_scale_changes_size(self):
        small = load_dataset("student", scale=0.1, seed=0)
        large = load_dataset("student", scale=0.2, seed=0)
        assert large.train.num_rows > small.train.num_rows

    def test_reproducible_given_seed(self):
        a = load_dataset("tmall", scale=SMALL_SCALE, seed=3)
        b = load_dataset("tmall", scale=SMALL_SCALE, seed=3)
        assert list(a.train.column(a.label_col).values) == list(b.train.column(b.label_col).values)

    def test_different_seeds_differ(self):
        a = load_dataset("tmall", scale=SMALL_SCALE, seed=1)
        b = load_dataset("tmall", scale=SMALL_SCALE, seed=2)
        assert list(a.train.column(a.label_col).values) != list(b.train.column(b.label_col).values)


class TestBundleStructure:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_label_column_exists(self, bundles, name):
        bundle = bundles[name]
        assert bundle.label_col in bundle.train

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_keys_exist_in_both_tables(self, bundles, name):
        bundle = bundles[name]
        for key in bundle.keys:
            assert key in bundle.train
            assert key in bundle.relevant

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_candidate_and_agg_attrs_exist(self, bundles, name):
        bundle = bundles[name]
        for attr in bundle.candidate_attrs + bundle.agg_attrs:
            assert attr in bundle.relevant

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_no_label_leakage_into_relevant_table(self, bundles, name):
        bundle = bundles[name]
        assert bundle.label_col not in bundle.relevant.column_names

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_summary_fields(self, bundles, name):
        summary = bundles[name].summary()
        assert summary["n_train_rows"] > 0
        assert summary["n_relevant_rows"] > 0
        assert summary["task"] in ("binary", "multiclass", "regression")

    @pytest.mark.parametrize("name", ["tmall", "instacart", "student", "merchant"])
    def test_one_to_many_cardinality(self, bundles, name):
        bundle = bundles[name]
        assert bundle.relationship == "one-to-many"
        sizes = group_sizes(bundle.relevant, bundle.keys)
        assert max(sizes.values()) > 1

    @pytest.mark.parametrize("name", ["covtype", "household"])
    def test_one_to_one_cardinality(self, bundles, name):
        bundle = bundles[name]
        sizes = group_sizes(bundle.relevant, bundle.keys)
        assert max(sizes.values()) == 1

    @pytest.mark.parametrize("name", ["tmall", "instacart", "student"])
    def test_binary_labels(self, bundles, name):
        bundle = bundles[name]
        labels = set(np.unique(bundle.train.column(bundle.label_col).values))
        assert labels <= {0.0, 1.0}
        assert len(labels) == 2

    def test_merchant_is_regression(self, bundles):
        labels = bundles["merchant"].train.column("label").values
        assert len(np.unique(labels)) > 20

    @pytest.mark.parametrize("name", ["covtype", "household"])
    def test_multiclass_labels(self, bundles, name):
        labels = np.unique(bundles[name].train.column("label").values)
        assert len(labels) >= 3


class TestPlantedSignal:
    """The datasets must reward predicate-aware aggregation over plain aggregation."""

    def test_student_predicate_feature_beats_unrestricted(self):
        bundle = load_dataset("student", scale=0.3, seed=0)
        from repro.dataframe.predicates import And, Equals, Range
        from repro.query.executor import execute_query
        from repro.query.query import PredicateAwareQuery
        from repro.dataframe.column import DType
        from repro.query.augment import augment_training_table

        restricted = PredicateAwareQuery(
            agg_func="SUM", agg_attr="hover_duration", keys=tuple(bundle.keys),
            predicates={"event_type": "notebook_click", "level": (13.0, None)},
            predicate_dtypes={"event_type": DType.CATEGORICAL, "level": DType.NUMERIC},
        )
        unrestricted = PredicateAwareQuery(
            agg_func="SUM", agg_attr="hover_duration", keys=tuple(bundle.keys)
        )
        label = bundle.train.column(bundle.label_col).values

        def mi_of(query):
            feature_table = execute_query(query, bundle.relevant)
            joined = augment_training_table(bundle.train, feature_table, bundle.keys, "feature", "f")
            return mutual_information(joined.column("f").values, label)

        assert mi_of(restricted) > mi_of(unrestricted) + 0.05
