"""Shared building blocks for the synthetic dataset generators.

All generators follow the same recipe:

1. create an entity table (users / sessions / card holders) with a few
   demographic base features,
2. create an event log with a one-to-many relationship to the entities,
   containing categorical attributes (department, action, ...), numeric
   attributes (price, amount, ...) and a timestamp,
3. compute a *planted signal* per entity: an aggregate of the event log
   restricted by a predicate (a specific category and/or a recent time
   window),
4. derive the label from the planted signal plus noise and a small
   contribution of the base features.

Because the label depends on a **predicate-restricted** aggregate, queries
with the right WHERE clause carry far more information about the label than
the unrestricted aggregates Featuretools can generate -- which is exactly the
structural property the paper's evaluation relies on.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Sequence

import numpy as np

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table

#: Anchor date used by every generator (the paper's running example predicts
#: behaviour in August 2023 from the preceding 12 months).
ANCHOR = _dt.datetime(2023, 8, 1)
WINDOW_DAYS = 365


def epoch(dt: _dt.datetime) -> float:
    return (dt - _dt.datetime(1970, 1, 1)).total_seconds()


def random_timestamps(rng: np.random.Generator, n: int, days: int = WINDOW_DAYS) -> np.ndarray:
    """Epoch seconds uniformly distributed over the *days* before :data:`ANCHOR`."""
    offsets = rng.uniform(0, days * 86400.0, size=n)
    return epoch(ANCHOR) - offsets


def recent_cutoff(days: int = 30) -> float:
    """Epoch seconds of "*days* before the anchor" -- the planted time window."""
    return epoch(ANCHOR) - days * 86400.0


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def standardise(x: np.ndarray) -> np.ndarray:
    std = x.std()
    if std == 0:
        return np.zeros_like(x)
    return (x - x.mean()) / std


def make_entity_ids(prefix: str, n: int) -> List[str]:
    return [f"{prefix}_{i:06d}" for i in range(n)]


def grouped_sum(
    entity_ids: Sequence[str],
    event_entity_ids: np.ndarray,
    values: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Per-entity sum of ``values`` restricted to rows where ``mask`` holds."""
    index = {eid: i for i, eid in enumerate(entity_ids)}
    out = np.zeros(len(entity_ids), dtype=np.float64)
    selected = np.where(mask)[0]
    for row in selected:
        out[index[event_entity_ids[row]]] += values[row]
    return out


def binary_label_from_signal(
    rng: np.random.Generator,
    signal: np.ndarray,
    base_contribution: np.ndarray | None = None,
    noise: float = 0.8,
    positive_rate: float = 0.4,
) -> np.ndarray:
    """Convert a planted signal into a noisy binary label with a target rate."""
    score = 2.0 * standardise(signal)
    if base_contribution is not None:
        score = score + 0.5 * standardise(base_contribution)
    score = score + rng.normal(0, noise, size=score.shape[0])
    threshold = np.quantile(score, 1.0 - positive_rate)
    return (score >= threshold).astype(np.float64)


def regression_label_from_signal(
    rng: np.random.Generator,
    signal: np.ndarray,
    base_contribution: np.ndarray | None = None,
    noise: float = 1.0,
    scale: float = 2.0,
    offset: float = 0.0,
) -> np.ndarray:
    """Convert a planted signal into a noisy continuous label."""
    score = scale * standardise(signal)
    if base_contribution is not None:
        score = score + 0.5 * standardise(base_contribution)
    return offset + score + rng.normal(0, noise, size=score.shape[0])


def multiclass_label_from_signals(
    rng: np.random.Generator,
    signals: Sequence[np.ndarray],
    noise: float = 0.5,
) -> np.ndarray:
    """Pick the argmax of several noisy planted signals as a class label."""
    stacked = np.column_stack([standardise(s) for s in signals])
    stacked = stacked + rng.normal(0, noise, size=stacked.shape)
    return np.argmax(stacked, axis=1).astype(np.float64)


def build_table(data: Dict[str, tuple]) -> Table:
    """Build a table from ``{name: (values, dtype)}``."""
    columns = [Column(name, values, dtype=dtype) for name, (values, dtype) in data.items()]
    return Table(columns)


def choice_column(rng: np.random.Generator, n: int, values: Sequence[str], p: Sequence[float] | None = None) -> List[str]:
    return list(rng.choice(list(values), size=n, p=p))
