"""Unit tests for the HPO search-space primitives."""

import numpy as np
import pytest

from repro.hpo.space import CategoricalDimension, IntegerDimension, RealDimension, SearchSpace


class TestCategoricalDimension:
    def test_sample_is_a_choice(self, rng):
        dim = CategoricalDimension("f", ["SUM", "AVG", "MAX"])
        for _ in range(20):
            assert dim.sample(rng) in dim.choices

    def test_contains(self):
        dim = CategoricalDimension("f", ["a", None])
        assert dim.contains("a")
        assert dim.contains(None)
        assert not dim.contains("z")

    def test_index_of(self):
        dim = CategoricalDimension("f", ["a", "b"])
        assert dim.index_of("b") == 1

    def test_index_of_missing_raises(self):
        with pytest.raises(ValueError):
            CategoricalDimension("f", ["a"]).index_of("z")

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDimension("f", [])


class TestRealDimension:
    def test_sample_in_bounds(self, rng):
        dim = RealDimension("x", 2.0, 5.0)
        samples = [dim.sample(rng) for _ in range(50)]
        assert all(2.0 <= s <= 5.0 for s in samples)

    def test_optional_can_return_none(self, rng):
        dim = RealDimension("x", 0.0, 1.0, optional=True, none_probability=0.9)
        samples = [dim.sample(rng) for _ in range(30)]
        assert any(s is None for s in samples)

    def test_non_optional_never_none(self, rng):
        dim = RealDimension("x", 0.0, 1.0)
        assert all(dim.sample(rng) is not None for _ in range(30))

    def test_contains_none_only_when_optional(self):
        assert RealDimension("x", 0, 1, optional=True).contains(None)
        assert not RealDimension("x", 0, 1).contains(None)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RealDimension("x", 5.0, 1.0)


class TestIntegerDimension:
    def test_sample_is_integer_in_bounds(self, rng):
        dim = IntegerDimension("k", 1, 4)
        samples = [dim.sample(rng) for _ in range(40)]
        assert all(isinstance(s, int) and 1 <= s <= 4 for s in samples)

    def test_contains(self):
        dim = IntegerDimension("k", 0, 10)
        assert dim.contains(5)
        assert not dim.contains(11)


class TestSearchSpace:
    def test_sample_has_all_dimensions(self, rng):
        space = SearchSpace(
            [CategoricalDimension("a", [1, 2]), RealDimension("b", 0, 1), IntegerDimension("c", 0, 3)]
        )
        point = space.sample(rng)
        assert set(point) == {"a", "b", "c"}

    def test_validate_accepts_sampled_points(self, rng):
        space = SearchSpace([CategoricalDimension("a", ["x"]), RealDimension("b", 0, 1, optional=True)])
        for _ in range(20):
            space.validate(space.sample(rng))

    def test_validate_rejects_missing_dimension(self):
        space = SearchSpace([CategoricalDimension("a", ["x"])])
        with pytest.raises(ValueError):
            space.validate({})

    def test_validate_rejects_out_of_domain(self):
        space = SearchSpace([RealDimension("b", 0, 1)])
        with pytest.raises(ValueError):
            space.validate({"b": 5.0})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([CategoricalDimension("a", [1]), CategoricalDimension("a", [2])])

    def test_getitem_and_names(self):
        space = SearchSpace([CategoricalDimension("a", [1]), RealDimension("b", 0, 1)])
        assert space.names == ["a", "b"]
        assert space["b"].low == 0
        assert len(space) == 2
