"""Tree-structured Parzen Estimator (Bergstra et al., NeurIPS 2011).

The algorithm implemented here follows the description in Section V.B of the
FeatAug paper:

1. split observed trials into a "good" group (the best ``gamma`` fraction by
   objective value) and a "bad" group,
2. fit per-dimension densities ``l(x)`` (good) and ``g(x)`` (bad),
3. draw ``n_candidates`` samples from ``l`` and pick the one maximising the
   expected-improvement surrogate ``l(x) / g(x)``.

Before ``n_startup_trials`` observations exist, points are sampled uniformly
at random.  ``warm_start`` lets FeatAug seed the history with trials evaluated
during the warm-up phase (Section V.C), so the first "real" suggestion is
already informed by the proxy task.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.hpo.kde import CategoricalDensity, GaussianKDE
from repro.hpo.optimizer import Optimizer
from repro.hpo.space import CategoricalDimension, IntegerDimension, RealDimension, SearchSpace
from repro.hpo.trial import Trial


class TPEOptimizer(Optimizer):
    """Sequential TPE optimiser over a :class:`SearchSpace` (minimisation)."""

    def __init__(
        self,
        space: SearchSpace,
        seed: int | None = None,
        gamma: float = 0.15,
        n_startup_trials: int = 10,
        n_candidates: int = 24,
        min_good: int = 3,
        exploration_probability: float = 0.1,
    ):
        super().__init__(space, seed)
        if not 0 < gamma < 1:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.gamma = gamma
        self.n_startup_trials = n_startup_trials
        self.n_candidates = n_candidates
        self.min_good = min_good
        # Fraction of suggestions drawn uniformly from the space even after the
        # surrogate is trained.  This bounds the worst case at random-search
        # behaviour and prevents the occasional premature lock-in of pure TPE.
        self.exploration_probability = exploration_probability
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Suggestion
    # ------------------------------------------------------------------
    def suggest(self) -> Dict[str, object]:
        if len(self.history) < self.n_startup_trials:
            return self.space.sample(self._rng)
        if self.exploration_probability > 0 and self._rng.random() < self.exploration_probability:
            return self.space.sample(self._rng)
        good, bad = self._split_trials()
        if len(good) < self.min_good or not bad:
            return self.space.sample(self._rng)
        good_density = self._fit_densities(good)
        bad_density = self._fit_densities(bad)

        best_params = None
        best_score = -np.inf
        for _ in range(self.n_candidates):
            candidate = {
                name: good_density[name].sample(self._rng) for name in self.space.names
            }
            score = 0.0
            for name in self.space.names:
                value = candidate[name]
                score += np.log(good_density[name].pdf(value)) - np.log(
                    bad_density[name].pdf(value)
                )
            if score > best_score:
                best_score = score
                best_params = candidate
        if best_params is None:  # pragma: no cover - defensive
            return self.space.sample(self._rng)
        return best_params

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split_trials(self):
        trials: List[Trial] = self.history.trials
        ordered = sorted(trials, key=lambda t: t.value)
        n_good = max(self.min_good, int(np.ceil(self.gamma * len(ordered))))
        n_good = min(n_good, max(len(ordered) - 1, 1))
        return ordered[:n_good], ordered[n_good:]

    def _fit_densities(self, trials: List[Trial]):
        """Fit one density per dimension from the given trial group."""
        densities = {}
        for dim in self.space.dimensions:
            observations = [t.params.get(dim.name) for t in trials]
            if isinstance(dim, CategoricalDimension):
                densities[dim.name] = CategoricalDensity(dim.choices, observations)
            elif isinstance(dim, (RealDimension, IntegerDimension)):
                densities[dim.name] = _NumericDensityAdapter(dim, observations)
            else:  # pragma: no cover - defensive
                raise TypeError(f"Unsupported dimension type {type(dim).__name__}")
        return densities


class _NumericDensityAdapter:
    """Wrap :class:`GaussianKDE` so integer dimensions round their samples."""

    def __init__(self, dimension, observations):
        self._dimension = dimension
        self._kde = GaussianKDE(dimension.low, dimension.high, observations)
        self._integer = isinstance(dimension, IntegerDimension)

    def pdf(self, value) -> float:
        return self._kde.pdf(value)

    def sample(self, rng: np.random.Generator):
        value = self._kde.sample(rng)
        if value is None:
            if self._dimension.optional:
                return None
            value = self._kde.low
        if self._integer:
            return int(round(value))
        return value
