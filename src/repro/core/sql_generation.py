"""The SQL Query Generation component (Section V, Figure 3).

Given a fixed query template the component searches the template's query pool
for queries whose generated feature minimises the downstream model's
validation loss.  The search runs in two phases:

* **Warm-up phase** -- TPE optimises the low-cost proxy (mutual information by
  default) for ``warmup_iterations`` rounds.  The ``warmup_top_k`` best
  proxy queries are then evaluated with the real model and injected as the
  initial history of the second TPE round.
* **Query-generation phase** -- TPE, warm-started with those real
  evaluations, optimises the actual validation loss for
  ``search_iterations`` rounds.

When ``use_warmup`` is disabled (the "NoWU" ablation) the warm-up is replaced
by an equal number of additional real-loss iterations, mirroring the paper's
budget-fair comparison (Section VII.D.1).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.config import FeatAugConfig
from repro.core.evaluation import ModelEvaluator
from repro.core.proxies import Proxy, make_proxy
from repro.dataframe.table import Table
from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.tpe import TPEOptimizer
from repro.hpo.trial import Trial
from repro.query.engine import QueryEngine, resolve_engine
from repro.query.pool import QueryPool
from repro.query.query import PredicateAwareQuery
from repro.query.template import QueryTemplate


@dataclass
class GeneratedQuery:
    """One query produced by the search, with its evaluation scores."""

    query: PredicateAwareQuery
    loss: float
    metric: float
    proxy_score: float = float("nan")


@dataclass
class GenerationReport:
    """Timing and history of one SQL-generation run (used by the scaling figures)."""

    warmup_seconds: float = 0.0
    generate_seconds: float = 0.0
    #: logical evaluation counts: every suggested candidate counts, whether it
    #: was executed or answered from the deduplication memo, so the numbers
    #: stay comparable across batch sizes.
    n_proxy_evaluations: int = 0
    n_model_evaluations: int = 0
    #: candidates answered from the per-generator memo instead of being
    #: executed (duplicate proposals within a batch or across rounds).
    n_proxy_dedup_hits: int = 0
    n_model_dedup_hits: int = 0
    best_loss_history: List[float] = field(default_factory=list)


class SQLQueryGenerator:
    """Search one query pool for effective predicate-aware queries."""

    def __init__(
        self,
        template: QueryTemplate,
        relevant_table: Table,
        evaluator: ModelEvaluator,
        config: FeatAugConfig | None = None,
        proxy: Proxy | None = None,
        seed: int | None = None,
        engine: QueryEngine | None = None,
    ):
        self.config = config or FeatAugConfig()
        self.config.validate()
        self.template = template
        self.relevant_table = relevant_table
        self.evaluator = evaluator
        self.proxy = proxy or make_proxy(self.config.proxy)
        self.seed = self.config.seed if seed is None else seed
        self.pool = QueryPool(template, relevant_table)
        self.report = GenerationReport()
        # The shared execution engine: every candidate query of this search
        # (and of every other component touching the same relevant table)
        # reuses one group index and predicate-mask cache.
        self.engine = resolve_engine(relevant_table, engine)
        # Deduplication memos keyed by query signature.  Both objectives are
        # deterministic functions of the decoded query, so answering a repeat
        # proposal from the memo is value-neutral -- it only skips the
        # execute/join/train work the engine would largely re-serve from its
        # result cache anyway.
        self._proxy_memo: Dict[tuple, float] = {}
        self._loss_memo: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Objectives
    # ------------------------------------------------------------------
    def _proxy_objective(self, params: Dict[str, object]) -> float:
        """Negative proxy score of the decoded query (TPE minimises)."""
        return self._proxy_objective_batch([params])[0]

    def _model_objective(self, params: Dict[str, object]) -> float:
        """Real validation loss of the decoded query."""
        return self._model_objective_batch([params])[0]

    def _proxy_objective_batch(self, params_batch: Sequence[Dict[str, object]]) -> List[float]:
        """Negative proxy scores for a whole suggestion batch.

        Unique unseen queries execute through one
        :meth:`ModelEvaluator.feature_vectors_for_queries` call -- i.e. a
        single ``QueryEngine.execute_batch`` -- so predicate masks, sort
        orders and fused group scans are shared across the candidates.
        """
        queries = [self.pool.decode(params) for params in params_batch]
        signatures = [query.signature() for query in queries]
        pending = self._pending_indices(signatures, self._proxy_memo)
        if pending:
            train_vecs, _ = self.evaluator.feature_vectors_for_queries(
                [queries[i] for i in pending], self.relevant_table, engine=self.engine
            )
            for i, train_vec in zip(pending, train_vecs):
                score = self.proxy.score(
                    train_vec, self.evaluator.y_train, self.evaluator.task
                )
                self._proxy_memo[signatures[i]] = -score
        self.report.n_proxy_evaluations += len(params_batch)
        self.report.n_proxy_dedup_hits += len(params_batch) - len(pending)
        return [self._proxy_memo[signature] for signature in signatures]

    def _model_objective_batch(self, params_batch: Sequence[Dict[str, object]]) -> List[float]:
        """Real validation losses for a whole suggestion batch.

        Feature materialisation for the batch's unique unseen queries is one
        engine pass; the per-query model retrains stay sequential (they are
        the irreducible cost the dedup memo protects).
        """
        queries = [self.pool.decode(params) for params in params_batch]
        signatures = [query.signature() for query in queries]
        pending = self._pending_indices(signatures, self._loss_memo)
        if pending:
            train_vecs, valid_vecs = self.evaluator.feature_vectors_for_queries(
                [queries[i] for i in pending], self.relevant_table, engine=self.engine
            )
            for i, train_vec, valid_vec in zip(pending, train_vecs, valid_vecs):
                result = self.evaluator.evaluate_matrix(train_vec, valid_vec)
                self._loss_memo[signatures[i]] = result.loss
        self.report.n_model_evaluations += len(params_batch)
        self.report.n_model_dedup_hits += len(params_batch) - len(pending)
        return [self._loss_memo[signature] for signature in signatures]

    @staticmethod
    def _pending_indices(signatures: Sequence[tuple], memo: Dict[tuple, float]) -> List[int]:
        """Positions that actually need evaluating: drops candidates already
        in the memo and in-batch repeats (first occurrence wins)."""
        pending: List[int] = []
        scheduled = set()
        for i, signature in enumerate(signatures):
            if signature in memo or signature in scheduled:
                continue
            scheduled.add(signature)
            pending.append(i)
        return pending

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _make_optimizer(self, seed_offset: int):
        """Instantiate the configured pool-search optimiser (TPE or random)."""
        if self.config.search_strategy == "random":
            return RandomSearchOptimizer(self.pool.space, seed=self.seed + seed_offset)
        return TPEOptimizer(
            self.pool.space,
            seed=self.seed + seed_offset,
            gamma=self.config.tpe_gamma,
            n_startup_trials=self.config.tpe_startup_trials,
            n_candidates=self.config.tpe_candidates,
        )

    def _run_batched(
        self,
        optimizer,
        objective_batch: Callable[[Sequence[Dict[str, object]]], List[float]],
        n_iterations: int,
        on_value: Callable[[float], None] | None = None,
    ) -> None:
        """Drive ``n_iterations`` logical evaluations through the ask/tell
        batch protocol.

        Each round asks for ``min(search_batch_size, remaining)`` suggestions,
        scores them with one batched-objective call (one fused engine batch
        for the unique unseen candidates) and tells the optimiser all results
        at once.  ``on_value`` fires once per logical evaluation, in suggestion
        order, after the batch is observed -- enough for running-best
        bookkeeping because the observed value sequence is exactly the
        sequential one at ``search_batch_size == 1``.
        """
        done = 0
        while done < n_iterations:
            n = min(self.config.search_batch_size, n_iterations - done)
            params_batch = optimizer.suggest_batch(n)
            values = objective_batch(params_batch)
            optimizer.observe_batch(params_batch, values)
            if on_value is not None:
                for value in values:
                    on_value(value)
            done += n

    def _warmup_trials(self) -> List[Trial]:
        """Run the proxy TPE round and evaluate its top-k queries for real."""
        proxy_optimizer = self._make_optimizer(seed_offset=1)
        self._run_batched(
            proxy_optimizer, self._proxy_objective_batch, self.config.warmup_iterations
        )
        top = proxy_optimizer.history.top_k(self.config.warmup_top_k, minimize=True)
        # The top-k transfer evaluations are one engine batch as well.
        losses = self._model_objective_batch([trial.params for trial in top])
        return [
            Trial(params=dict(trial.params), value=loss, metadata={"proxy": -trial.value})
            for trial, loss in zip(top, losses)
        ]

    def generate(self, n_queries: int = 1) -> List[GeneratedQuery]:
        """Run the two-phase search and return the *n_queries* best queries.

        Results are deduplicated by query signature and sorted by loss
        (ascending, i.e. best first).
        """
        optimizer = self._make_optimizer(seed_offset=2)
        extra_iterations = 0
        start = time.perf_counter()
        if self.config.use_warmup:
            warm_trials = self._warmup_trials()
            optimizer.warm_start(warm_trials)
        else:
            # Budget-fair ablation: spend the warm-up evaluations on the real
            # objective instead (warmup_top_k real evaluations were part of
            # the warm-up budget).
            extra_iterations = self.config.warmup_top_k
        self.report.warmup_seconds = time.perf_counter() - start

        start = time.perf_counter()
        n_iterations = self.config.search_iterations + extra_iterations
        # Running best, mirroring TrialHistory.best(minimize=True) so the
        # history has one entry per logical iteration regardless of the batch
        # size: minimum over finite values, falling back to the first trial's
        # value while no finite loss has been seen.
        first_value: float | None = None
        best_finite: float | None = None
        for trial in optimizer.history.trials:
            if first_value is None:
                first_value = trial.value
            if math.isfinite(trial.value):
                best_finite = trial.value if best_finite is None else min(best_finite, trial.value)

        def record(loss: float) -> None:
            nonlocal first_value, best_finite
            if first_value is None:
                first_value = loss
            if math.isfinite(loss):
                best_finite = loss if best_finite is None else min(best_finite, loss)
            self.report.best_loss_history.append(
                best_finite if best_finite is not None else first_value
            )

        self._run_batched(optimizer, self._model_objective_batch, n_iterations, on_value=record)
        self.report.generate_seconds = time.perf_counter() - start

        return self._collect_results(optimizer, n_queries)

    def _collect_results(self, optimizer: TPEOptimizer, n_queries: int) -> List[GeneratedQuery]:
        results: List[GeneratedQuery] = []
        seen = set()
        for trial in sorted(optimizer.history.trials, key=lambda t: t.value):
            query = self.pool.decode(trial.params)
            signature = query.signature()
            if signature in seen:
                continue
            seen.add(signature)
            metric = self._loss_to_metric(trial.value)
            results.append(
                GeneratedQuery(
                    query=query,
                    loss=trial.value,
                    metric=metric,
                    proxy_score=float(trial.metadata.get("proxy", float("nan"))),
                )
            )
            if len(results) >= n_queries:
                break
        return results

    def _loss_to_metric(self, loss: float) -> float:
        if self.evaluator.task == "regression":
            return loss
        return 1.0 - loss

    # ------------------------------------------------------------------
    # Proxy-only search (used by the template-identification component)
    # ------------------------------------------------------------------
    def best_proxy_score(self, n_iterations: int | None = None) -> float:
        """Best proxy value found by a short TPE run over this pool.

        This is the low-cost stand-in for the template's effectiveness used
        by Optimisation 1 of the Query Template Identification component.
        """
        n_iterations = n_iterations or self.config.template_proxy_iterations
        optimizer = self._make_optimizer(seed_offset=3)
        best = -np.inf

        def record(value: float) -> None:
            nonlocal best
            best = max(best, -value)

        self._run_batched(optimizer, self._proxy_objective_batch, n_iterations, on_value=record)
        return float(best)

    def best_real_score(self, n_iterations: int | None = None) -> float:
        """Best (negated loss) found by a short real-model TPE run.

        Used when Optimisation 1 is disabled, i.e. template effectiveness is
        measured by actually training the downstream model.
        """
        n_iterations = n_iterations or self.config.template_real_iterations
        optimizer = self._make_optimizer(seed_offset=4)
        best = -np.inf

        def record(loss: float) -> None:
            nonlocal best
            best = max(best, -loss)

        self._run_batched(optimizer, self._model_objective_batch, n_iterations, on_value=record)
        return float(best)
