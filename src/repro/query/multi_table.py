"""Multi-table schemas and deep-layer relationship flattening.

The problem formulation in the paper (Section III) assumes one training table
and one relevant table, and notes that richer layouts reduce to that case:

* *Deep-layer relationships* -- a chain of many-to-one tables hanging off the
  relevant table (e.g. order items -> products -> departments in Instacart) --
  "can be represented by the aforementioned scenario by joining all the tables
  into one relevant table".
* *Multiple relevant tables* -- handled as several independent (training
  table, relevant table) scenarios.

:class:`RelationalSchema` captures a set of named tables plus many-to-one
relationships between them and performs exactly that flattening: starting from
a base relevant table, every reachable dimension table is left-joined on, with
joined columns prefixed by their table name so attribute provenance stays
visible in generated SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.dataframe.table import Table, _join_key_codes


@dataclass(frozen=True)
class Relationship:
    """A many-to-one link: ``child.child_key`` references ``parent.parent_key``.

    "Many-to-one" means every child row has at most one matching parent row,
    so joining the parent onto the child never duplicates child rows.
    """

    child: str
    child_key: str
    parent: str
    parent_key: str

    def describe(self) -> str:
        return f"{self.child}.{self.child_key} -> {self.parent}.{self.parent_key}"


class RelationalSchema:
    """A collection of named tables plus many-to-one relationships."""

    def __init__(self, tables: Mapping[str, Table] | None = None):
        self._tables: Dict[str, Table] = {}
        self._relationships: List[Relationship] = []
        for name, table in (tables or {}).items():
            self.add_table(name, table)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_table(self, name: str, table: Table) -> "RelationalSchema":
        if not name:
            raise ValueError("Table name must be non-empty")
        if name in self._tables:
            raise ValueError(f"Table {name!r} already registered")
        self._tables[name] = table
        return self

    def add_relationship(self, child: str, child_key: str, parent: str, parent_key: str) -> "RelationalSchema":
        """Register ``child.child_key -> parent.parent_key`` (many-to-one)."""
        for table_name, key in ((child, child_key), (parent, parent_key)):
            if table_name not in self._tables:
                raise KeyError(f"Unknown table {table_name!r}")
            if key not in self._tables[table_name]:
                raise KeyError(f"Table {table_name!r} has no column {key!r}")
        relationship = Relationship(child, child_key, parent, parent_key)
        self._relationships.append(relationship)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    @property
    def relationships(self) -> List[Relationship]:
        return list(self._relationships)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(f"Unknown table {name!r}; registered: {self.table_names}")
        return self._tables[name]

    def parents_of(self, child: str) -> List[Relationship]:
        """Relationships whose child side is *child*."""
        return [r for r in self._relationships if r.child == child]

    # ------------------------------------------------------------------
    # Flattening
    # ------------------------------------------------------------------
    def flatten(self, base: str, max_depth: int = 3, prefix_joined_columns: bool = True) -> Table:
        """Join every dimension table reachable from *base* into one wide table.

        Joins are applied breadth-first following the registered many-to-one
        relationships, up to ``max_depth`` hops (the paper's "deep-layer"
        relationships).  Columns contributed by a joined table are renamed to
        ``{alias}__{column}`` (unless ``prefix_joined_columns`` is disabled) so
        generated query templates can tell where an attribute came from.

        Flattening is **alias-aware**: a parent reachable through several
        relationship paths (a diamond schema, or two foreign keys of one
        child referencing the same parent) is joined once *per path*, each
        join under its own role alias.  The first path keeps the plain table
        name as its alias -- historical single-path schemas flatten to
        exactly the same column names as before -- and later paths get
        role-qualified aliases derived from the referencing foreign key
        (``{child_key}__{parent}``, widened with the child's own alias and
        then a numeric suffix until unique).  A per-path visited set guards
        against relationship cycles without blocking the diamond's converging
        paths.  Without column prefixes role aliases cannot disambiguate
        anything, so ``prefix_joined_columns=False`` keeps the historical
        first-path-only behaviour.  The base table's row count is preserved
        because every join is many-to-one.
        """
        flattened = self.table(base)
        used_aliases = {base}
        joined_parents = {base}
        # (table name, alias in the flattened output, depth, tables on this path)
        frontier: List[Tuple[str, str, int, frozenset]] = [
            (base, base, 0, frozenset({base}))
        ]
        while frontier:
            child_name, child_alias, depth, path = frontier.pop(0)
            if depth >= max_depth:
                continue
            for relationship in self.parents_of(child_name):
                if relationship.parent in path:
                    continue  # cycle guard (per path, so diamonds still converge)
                if not prefix_joined_columns:
                    if relationship.parent in joined_parents:
                        continue
                    joined_parents.add(relationship.parent)
                parent_table = self.table(relationship.parent)
                alias = self._parent_alias(relationship, child_alias, used_aliases)
                used_aliases.add(alias)
                join_column = relationship.child_key
                if child_name != base and prefix_joined_columns:
                    join_column = f"{child_alias}__{relationship.child_key}"
                if join_column not in flattened:
                    raise KeyError(
                        f"Join key {join_column!r} is missing from the flattened table; "
                        f"cannot apply {relationship.describe()}"
                    )
                prepared = self._prepare_parent(
                    parent_table, relationship, prefix_joined_columns, alias=alias
                )
                right_key = (
                    f"{alias}__{relationship.parent_key}"
                    if prefix_joined_columns
                    else relationship.parent_key
                )
                # Align the join key names: rename the parent's key to match the child's.
                prepared = prepared.rename({right_key: join_column})
                before_rows = flattened.num_rows
                flattened = flattened.left_join(prepared, on=join_column)
                if flattened.num_rows != before_rows:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"Join {relationship.describe()} changed the row count; "
                        "the relationship is not many-to-one"
                    )
                frontier.append(
                    (
                        relationship.parent,
                        alias,
                        depth + 1,
                        path | {relationship.parent},
                    )
                )
        return flattened

    @staticmethod
    def _parent_alias(relationship: Relationship, child_alias: str, used: set) -> str:
        """Output alias for one join path onto ``relationship.parent``.

        The first path onto a parent keeps the plain table name, so
        single-path schemas keep their historical column names; later paths
        are role-qualified by the referencing foreign key.
        """
        candidates = [
            relationship.parent,
            f"{relationship.child_key}__{relationship.parent}",
            f"{child_alias}__{relationship.child_key}__{relationship.parent}",
        ]
        for candidate in candidates:
            if candidate not in used:
                return candidate
        i = 2
        while f"{candidates[-1]}__{i}" in used:
            i += 1
        return f"{candidates[-1]}__{i}"

    @staticmethod
    def _prepare_parent(
        parent_table: Table,
        relationship: Relationship,
        prefix: bool,
        alias: str | None = None,
    ) -> Table:
        """Deduplicate the parent on its key and optionally prefix its columns.

        Keeps the first row per key value (many-to-one targets should already
        be unique per key; this is a safety net for dirty inputs), vectorized
        through the same joint factorization as ``Table.left_join``: key
        codes share one label space where NaN / ``None`` take a single code,
        and a reversed index assignment marks each code's first occurrence.
        Collapsing all missing-key rows onto the first is join-invariant --
        ``left_join`` is first-match-wins over that same shared code, so no
        later missing-key row could ever be matched anyway.
        """
        key_column = parent_table.column(relationship.parent_key)
        no_rows = np.zeros(parent_table.num_rows, dtype=bool)
        codes, _, n_labels = _join_key_codes(key_column, key_column.filter(no_rows))
        first = np.full(n_labels, -1, dtype=np.int64)
        first[codes[::-1]] = np.arange(codes.shape[0] - 1, -1, -1, dtype=np.int64)
        keep = first[codes] == np.arange(codes.shape[0], dtype=np.int64)
        deduplicated = parent_table.filter(keep)
        if not prefix:
            return deduplicated
        alias = alias or relationship.parent
        mapping = {name: f"{alias}__{name}" for name in deduplicated.column_names}
        return deduplicated.rename(mapping)


def flatten_relevant_tables(
    schema: RelationalSchema,
    base: str,
    keys: Sequence[str],
    max_depth: int = 3,
) -> Table:
    """Flatten *schema* around *base* and sanity-check the foreign key columns.

    Convenience wrapper used when preparing FeatAug inputs: the returned table
    is the single relevant table ``R`` expected by :class:`repro.core.FeatAug`,
    and the foreign-key columns referenced by the training table must survive
    the flattening.
    """
    flattened = schema.flatten(base, max_depth=max_depth)
    missing = [key for key in keys if key not in flattened]
    if missing:
        raise KeyError(f"Foreign key column(s) {missing} are missing from the flattened table")
    return flattened


def flatten_to_engine(
    schema: RelationalSchema,
    base: str,
    keys: Sequence[str],
    max_depth: int = 3,
    config=None,
):
    """Flatten *schema* and bind the shared query engine to the result.

    Returns ``(relevant_table, engine)``.  Deep-layer scenarios execute the
    same search traffic as the single-table case, so they want the same
    shared :class:`~repro.query.engine.QueryEngine`; binding it right after
    flattening lets every downstream component (template identification, SQL
    generation, evaluation) reuse one group index and mask cache.  *config*
    (an :class:`~repro.query.engine.EngineConfig`) selects the execution
    backend and cache sizes; ``None`` uses the process default.
    """
    from repro.query.engine import engine_for

    flattened = flatten_relevant_tables(schema, base, keys, max_depth=max_depth)
    return flattened, engine_for(flattened, config=config)
