"""Information-theoretic and statistical primitives.

These are the low-cost proxies FeatAug uses to avoid repeatedly training the
downstream ML model: mutual information (the default warm-up proxy), Spearman
correlation, chi-square and Gini statistics (used by the Featuretools +
selector baselines).
"""

from repro.stats.entropy import shannon_entropy, discretize
from repro.stats.mutual_information import mutual_information, conditional_entropy
from repro.stats.correlation import pearson_correlation, spearman_correlation, rankdata
from repro.stats.chi2 import chi2_statistic
from repro.stats.gini import gini_impurity, gini_importance

__all__ = [
    "shannon_entropy",
    "discretize",
    "mutual_information",
    "conditional_entropy",
    "pearson_correlation",
    "spearman_correlation",
    "rankdata",
    "chi2_statistic",
    "gini_impurity",
    "gini_importance",
]
