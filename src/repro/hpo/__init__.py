"""Hyperparameter-optimisation substrate.

FeatAug maps predicate-aware SQL queries into hyperparameter vectors (Section
V.A) and searches the resulting space with TPE (Tree-structured Parzen
Estimator).  This subpackage replaces the Hyperopt dependency used by the
authors with an implementation of the published algorithm: per-dimension
Parzen (kernel density) estimators for the "good" and "bad" trial groups and
candidate selection by the density ratio l(x)/g(x).
"""

from repro.hpo.space import CategoricalDimension, RealDimension, IntegerDimension, SearchSpace
from repro.hpo.trial import Trial, TrialHistory
from repro.hpo.optimizer import Optimizer
from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.kde import CategoricalDensity, GaussianKDE
from repro.hpo.tpe import TPEOptimizer
from repro.hpo.hyperband import HyperbandOptimizer, successive_halving

__all__ = [
    "CategoricalDimension",
    "RealDimension",
    "IntegerDimension",
    "SearchSpace",
    "Trial",
    "TrialHistory",
    "Optimizer",
    "RandomSearchOptimizer",
    "CategoricalDensity",
    "GaussianKDE",
    "TPEOptimizer",
    "HyperbandOptimizer",
    "successive_halving",
]
