"""Synthetic datasets mirroring the paper's evaluation workloads.

The real datasets (Tmall, Instacart, Student, Merchant, Covtype, Household)
are Kaggle / Tianchi competition data that cannot be downloaded in this
offline environment.  Each generator here reproduces the corresponding
dataset's *shape*: its schema, the one-to-many cardinality between training
and relevant table, the task type and -- crucially -- a planted signal that is
only visible through predicate-aware aggregation (e.g. "spend in a target
department during the recent window predicts the label").  That planted
signal is what makes the paper's comparison meaningful: Featuretools'
predicate-free aggregates can only see a diluted version of it.
"""

from repro.datasets.base import DatasetBundle
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.datasets.tmall import make_tmall
from repro.datasets.instacart import make_instacart
from repro.datasets.student import make_student
from repro.datasets.merchant import make_merchant
from repro.datasets.covtype import make_covtype
from repro.datasets.household import make_household

__all__ = [
    "DatasetBundle",
    "DATASET_NAMES",
    "load_dataset",
    "make_tmall",
    "make_instacart",
    "make_student",
    "make_merchant",
    "make_covtype",
    "make_household",
]
