"""Integration tests: the whole pipeline on synthetic bundles.

These tests exercise dataset generation -> template identification -> TPE
search -> feature materialisation -> downstream evaluation, i.e. the same
path the benchmark harness uses, at a very small scale.
"""

import numpy as np
import pytest

from repro.core.config import FeatAugConfig
from repro.core.feataug import FeatAug
from repro.dataframe.io import read_csv, write_csv
from repro.datasets import load_dataset
from repro.experiments.runner import run_method


@pytest.fixture(scope="module")
def integration_config():
    return FeatAugConfig(
        n_templates=2,
        queries_per_template=2,
        warmup_iterations=10,
        warmup_top_k=4,
        search_iterations=6,
        template_proxy_iterations=6,
        max_template_depth=2,
        beam_width=1,
        tpe_startup_trials=3,
        seed=0,
    )


class TestFeatAugBeatsBaselinesOnPlantedSignal:
    """The headline claim of the paper at miniature scale."""

    def test_feataug_beats_featuretools_on_student(self, integration_config):
        bundle = load_dataset("student", scale=0.3, seed=0)
        feataug = run_method(bundle, "FeatAug", "LR", n_features=6, config=integration_config, seed=0)
        featuretools = run_method(bundle, "FT", "LR", n_features=6, config=integration_config, seed=0)
        base = run_method(bundle, "Base", "LR", n_features=0, config=integration_config, seed=0)
        assert feataug.metric > base.metric
        assert feataug.metric >= featuretools.metric - 0.02

    def test_feataug_beats_random_on_student(self, integration_config):
        bundle = load_dataset("student", scale=0.3, seed=0)
        feataug = run_method(bundle, "FeatAug", "LR", n_features=6, config=integration_config, seed=0)
        random = run_method(bundle, "Random", "LR", n_features=6, config=integration_config, seed=0)
        assert feataug.metric >= random.metric - 0.02

    def test_full_beats_noqti_ablation(self, integration_config):
        bundle = load_dataset("instacart", scale=0.25, seed=0)
        full = run_method(bundle, "FeatAug", "LR", n_features=6, config=integration_config, seed=0)
        noqti = run_method(bundle, "FeatAug-NoQTI", "LR", n_features=6, config=integration_config, seed=0)
        assert full.metric >= noqti.metric - 0.03


class TestEndToEndWorkflow:
    def test_csv_roundtrip_then_augment(self, tmp_path, integration_config):
        """Mimic the public-API workflow of the original repository: read CSVs,
        run FeatAug, write the augmented table back out."""
        bundle = load_dataset("student", scale=0.15, seed=1)
        train_path = tmp_path / "train.csv"
        relevant_path = tmp_path / "logs.csv"
        write_csv(bundle.train, train_path)
        write_csv(bundle.relevant, relevant_path)

        train = read_csv(train_path, dtypes={"session_id": "categorical"})
        relevant = read_csv(relevant_path, dtypes={"session_id": "categorical"})

        feataug = FeatAug(
            label=bundle.label_col, keys=bundle.keys, task="binary", model="LR", config=integration_config
        )
        result = feataug.augment(
            train, relevant, candidate_attrs=bundle.candidate_attrs, agg_attrs=bundle.agg_attrs, n_features=3
        )
        out_path = tmp_path / "augmented.csv"
        write_csv(result.augmented_table, out_path)
        reloaded = read_csv(out_path)
        assert reloaded.num_rows == train.num_rows
        assert all(name in reloaded for name in result.feature_names)

    def test_regression_pipeline(self, integration_config):
        bundle = load_dataset("merchant", scale=0.15, seed=0)
        result = run_method(bundle, "FeatAug", "LR", n_features=4, config=integration_config, seed=0)
        base = run_method(bundle, "Base", "LR", n_features=0, config=integration_config, seed=0)
        assert result.metric_name == "rmse"
        # Augmentation should not blow up the error and usually reduces it.
        assert result.metric <= base.metric * 1.1

    def test_multiclass_one_to_one_pipeline(self, integration_config):
        bundle = load_dataset("household", scale=0.12, seed=0)
        result = run_method(bundle, "FeatAug", "LR", n_features=4, config=integration_config, seed=0)
        assert result.metric_name == "f1"
        assert 0.0 <= result.metric <= 1.0

    def test_deepfm_downstream_model(self, integration_config):
        bundle = load_dataset("student", scale=0.15, seed=0)
        result = run_method(bundle, "FeatAug", "DeepFM", n_features=3, config=integration_config, seed=0)
        assert 0.0 <= result.metric <= 1.0

    def test_xgb_downstream_model(self, integration_config):
        bundle = load_dataset("student", scale=0.15, seed=0)
        result = run_method(bundle, "FeatAug", "XGB", n_features=3, config=integration_config, seed=0)
        assert 0.0 <= result.metric <= 1.0
