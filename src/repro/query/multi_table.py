"""Multi-table schemas and deep-layer relationship flattening.

The problem formulation in the paper (Section III) assumes one training table
and one relevant table, and notes that richer layouts reduce to that case:

* *Deep-layer relationships* -- a chain of many-to-one tables hanging off the
  relevant table (e.g. order items -> products -> departments in Instacart) --
  "can be represented by the aforementioned scenario by joining all the tables
  into one relevant table".
* *Multiple relevant tables* -- handled as several independent (training
  table, relevant table) scenarios.

:class:`RelationalSchema` captures a set of named tables plus many-to-one
relationships between them and performs exactly that flattening: starting from
a base relevant table, every reachable dimension table is left-joined on, with
joined columns prefixed by their table name so attribute provenance stays
visible in generated SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.dataframe.table import Table


@dataclass(frozen=True)
class Relationship:
    """A many-to-one link: ``child.child_key`` references ``parent.parent_key``.

    "Many-to-one" means every child row has at most one matching parent row,
    so joining the parent onto the child never duplicates child rows.
    """

    child: str
    child_key: str
    parent: str
    parent_key: str

    def describe(self) -> str:
        return f"{self.child}.{self.child_key} -> {self.parent}.{self.parent_key}"


class RelationalSchema:
    """A collection of named tables plus many-to-one relationships."""

    def __init__(self, tables: Mapping[str, Table] | None = None):
        self._tables: Dict[str, Table] = {}
        self._relationships: List[Relationship] = []
        for name, table in (tables or {}).items():
            self.add_table(name, table)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_table(self, name: str, table: Table) -> "RelationalSchema":
        if not name:
            raise ValueError("Table name must be non-empty")
        if name in self._tables:
            raise ValueError(f"Table {name!r} already registered")
        self._tables[name] = table
        return self

    def add_relationship(self, child: str, child_key: str, parent: str, parent_key: str) -> "RelationalSchema":
        """Register ``child.child_key -> parent.parent_key`` (many-to-one)."""
        for table_name, key in ((child, child_key), (parent, parent_key)):
            if table_name not in self._tables:
                raise KeyError(f"Unknown table {table_name!r}")
            if key not in self._tables[table_name]:
                raise KeyError(f"Table {table_name!r} has no column {key!r}")
        relationship = Relationship(child, child_key, parent, parent_key)
        self._relationships.append(relationship)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    @property
    def relationships(self) -> List[Relationship]:
        return list(self._relationships)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(f"Unknown table {name!r}; registered: {self.table_names}")
        return self._tables[name]

    def parents_of(self, child: str) -> List[Relationship]:
        """Relationships whose child side is *child*."""
        return [r for r in self._relationships if r.child == child]

    # ------------------------------------------------------------------
    # Flattening
    # ------------------------------------------------------------------
    def flatten(self, base: str, max_depth: int = 3, prefix_joined_columns: bool = True) -> Table:
        """Join every dimension table reachable from *base* into one wide table.

        Joins are applied breadth-first following the registered many-to-one
        relationships, up to ``max_depth`` hops (the paper's "deep-layer"
        relationships).  Columns contributed by a joined table are renamed to
        ``{table}__{column}`` (unless ``prefix_joined_columns`` is disabled) so
        generated query templates can tell where an attribute came from.  The
        base table's row count is preserved because every join is many-to-one.
        """
        flattened = self.table(base)
        visited = {base}
        frontier: List[Tuple[str, Table, int]] = [(base, flattened, 0)]
        # Maps original child-table column names in the flattened table.
        while frontier:
            child_name, _, depth = frontier.pop(0)
            if depth >= max_depth:
                continue
            for relationship in self.parents_of(child_name):
                if relationship.parent in visited:
                    continue
                parent_table = self.table(relationship.parent)
                join_column = relationship.child_key
                if child_name != base and prefix_joined_columns:
                    join_column = f"{child_name}__{relationship.child_key}"
                if join_column not in flattened:
                    raise KeyError(
                        f"Join key {join_column!r} is missing from the flattened table; "
                        f"cannot apply {relationship.describe()}"
                    )
                prepared = self._prepare_parent(parent_table, relationship, prefix_joined_columns)
                right_key = (
                    f"{relationship.parent}__{relationship.parent_key}"
                    if prefix_joined_columns
                    else relationship.parent_key
                )
                # Align the join key names: rename the parent's key to match the child's.
                prepared = prepared.rename({right_key: join_column})
                before_rows = flattened.num_rows
                flattened = flattened.left_join(prepared, on=join_column)
                if flattened.num_rows != before_rows:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"Join {relationship.describe()} changed the row count; "
                        "the relationship is not many-to-one"
                    )
                visited.add(relationship.parent)
                frontier.append((relationship.parent, prepared, depth + 1))
        return flattened

    @staticmethod
    def _prepare_parent(parent_table: Table, relationship: Relationship, prefix: bool) -> Table:
        """Deduplicate the parent on its key and optionally prefix its columns."""
        # Keep the first row per key value (many-to-one targets should already
        # be unique per key; this is a safety net for dirty inputs).
        seen = set()
        keep = []
        key_column = parent_table.column(relationship.parent_key)
        for i in range(parent_table.num_rows):
            value = key_column.values[i]
            key = float(value) if key_column.is_numeric_like else value
            if key in seen:
                keep.append(False)
            else:
                seen.add(key)
                keep.append(True)
        deduplicated = parent_table.filter(keep)
        if not prefix:
            return deduplicated
        mapping = {name: f"{relationship.parent}__{name}" for name in deduplicated.column_names}
        return deduplicated.rename(mapping)


def flatten_relevant_tables(
    schema: RelationalSchema,
    base: str,
    keys: Sequence[str],
    max_depth: int = 3,
) -> Table:
    """Flatten *schema* around *base* and sanity-check the foreign key columns.

    Convenience wrapper used when preparing FeatAug inputs: the returned table
    is the single relevant table ``R`` expected by :class:`repro.core.FeatAug`,
    and the foreign-key columns referenced by the training table must survive
    the flattening.
    """
    flattened = schema.flatten(base, max_depth=max_depth)
    missing = [key for key in keys if key not in flattened]
    if missing:
        raise KeyError(f"Foreign key column(s) {missing} are missing from the flattened table")
    return flattened


def flatten_to_engine(
    schema: RelationalSchema,
    base: str,
    keys: Sequence[str],
    max_depth: int = 3,
    config=None,
):
    """Flatten *schema* and bind the shared query engine to the result.

    Returns ``(relevant_table, engine)``.  Deep-layer scenarios execute the
    same search traffic as the single-table case, so they want the same
    shared :class:`~repro.query.engine.QueryEngine`; binding it right after
    flattening lets every downstream component (template identification, SQL
    generation, evaluation) reuse one group index and mask cache.  *config*
    (an :class:`~repro.query.engine.EngineConfig`) selects the execution
    backend and cache sizes; ``None`` uses the process default.
    """
    from repro.query.engine import engine_for

    flattened = flatten_relevant_tables(schema, base, keys, max_depth=max_depth)
    return flattened, engine_for(flattened, config=config)
