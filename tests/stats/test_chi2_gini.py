"""Unit tests for the chi-square and Gini selector statistics."""

import numpy as np
import pytest

from repro.stats.chi2 import chi2_statistic
from repro.stats.gini import gini_importance, gini_impurity


class TestChi2:
    def test_informative_feature_scores_higher(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=1000)
        informative = y * 5.0 + rng.uniform(0, 1, size=1000)
        noise = rng.uniform(0, 6, size=1000)
        assert chi2_statistic(informative, y) > chi2_statistic(noise, y)

    def test_single_class_is_zero(self):
        assert chi2_statistic(np.arange(10.0), np.zeros(10)) == 0.0

    def test_handles_negative_values_by_shifting(self):
        y = np.asarray([0, 1] * 50)
        x = np.asarray([-1.0, 1.0] * 50)
        assert chi2_statistic(x, y) >= 0.0

    def test_nan_rows_dropped(self):
        y = np.asarray([0, 1, 0, 1])
        x = np.asarray([1.0, np.nan, 1.0, 4.0])
        assert np.isfinite(chi2_statistic(x, y))

    def test_all_zero_feature(self):
        y = np.asarray([0, 1] * 10)
        assert chi2_statistic(np.zeros(20), y) == 0.0


class TestGiniImpurity:
    def test_pure_node_is_zero(self):
        assert gini_impurity(np.zeros(10)) == 0.0

    def test_balanced_binary_is_half(self):
        assert gini_impurity(np.asarray([0, 1] * 10)) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert gini_impurity(np.asarray([])) == 0.0

    def test_bounded_by_one(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 10, size=200)
        assert 0.0 <= gini_impurity(labels) < 1.0


class TestGiniImportance:
    def test_perfect_split_recovers_full_impurity(self):
        x = np.asarray([0.0] * 50 + [1.0] * 50)
        y = np.asarray([0] * 50 + [1] * 50)
        assert gini_importance(x, y) == pytest.approx(0.5, abs=1e-6)

    def test_uninformative_feature_is_low(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=500)
        x = rng.normal(size=500)
        assert gini_importance(x, y) < 0.05

    def test_constant_feature_is_zero(self):
        y = np.asarray([0, 1] * 20)
        assert gini_importance(np.ones(40), y) == 0.0

    def test_pure_labels_is_zero(self):
        assert gini_importance(np.arange(10.0), np.zeros(10)) == 0.0

    def test_informative_beats_noise(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=400)
        informative = y + rng.normal(0, 0.3, size=400)
        noise = rng.normal(size=400)
        assert gini_importance(informative, y) > gini_importance(noise, y)
