"""Synthetic Student: predict correct answers from game-play event streams.

The real Student dataset (Kaggle "Predict Student Performance from Game
Play") attaches a time-series event log to each game session.  The synthetic
relevant table is an event stream per session with event type, room, level,
hover duration and elapsed time.

Planted signal: the total hover duration on *notebook-click* events in late
levels drives the label, so an equality predicate on the event type combined
with a range predicate on the level exposes it.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.column import DType
from repro.datasets.base import DatasetBundle
from repro.datasets.synthetic import (
    binary_label_from_signal,
    build_table,
    choice_column,
    grouped_sum,
    make_entity_ids,
)

EVENT_TYPES = ["navigate_click", "person_click", "cutscene_click", "object_click", "notebook_click", "map_hover"]
ROOMS = ["tunic.historicalsociety", "tunic.library", "tunic.kohlcenter", "tunic.capitol"]


def make_student(n_sessions: int = 1000, events_per_session: int = 30, seed: int = 2) -> DatasetBundle:
    """Generate the synthetic Student game-play dataset."""
    rng = np.random.default_rng(seed)
    session_ids = make_entity_ids("session", n_sessions)

    grade = rng.integers(5, 9, size=n_sessions).astype(np.float64)
    prior_accuracy = np.clip(rng.normal(0.6, 0.15, size=n_sessions), 0, 1)

    n_events = n_sessions * events_per_session
    event_sessions = list(rng.choice(session_ids, size=n_events))
    event_type = choice_column(rng, n_events, EVENT_TYPES, p=[0.3, 0.2, 0.1, 0.2, 0.12, 0.08])
    room = choice_column(rng, n_events, ROOMS)
    level = rng.integers(0, 23, size=n_events).astype(np.float64)
    hover_duration = np.round(rng.exponential(2.0, size=n_events), 3)
    elapsed_time = np.round(rng.uniform(0, 3600, size=n_events), 1)

    notebook_late = (np.asarray(event_type, dtype=object) == "notebook_click") & (level >= 13)
    signal = grouped_sum(
        session_ids, np.asarray(event_sessions, dtype=object), hover_duration, notebook_late
    )
    label = binary_label_from_signal(rng, signal, base_contribution=prior_accuracy, positive_rate=0.5)

    train = build_table(
        {
            "session_id": (session_ids, DType.CATEGORICAL),
            "grade": (grade, DType.NUMERIC),
            "prior_accuracy": (prior_accuracy, DType.NUMERIC),
            "label": (label, DType.NUMERIC),
        }
    )
    relevant = build_table(
        {
            "session_id": (event_sessions, DType.CATEGORICAL),
            "event_type": (event_type, DType.CATEGORICAL),
            "room": (room, DType.CATEGORICAL),
            "level": (level, DType.NUMERIC),
            "hover_duration": (hover_duration, DType.NUMERIC),
            "elapsed_time": (elapsed_time, DType.NUMERIC),
        }
    )
    return DatasetBundle(
        name="student",
        train=train,
        relevant=relevant,
        keys=["session_id"],
        label_col="label",
        task="binary",
        metric_name="auc",
        candidate_attrs=["event_type", "room", "level", "hover_duration", "elapsed_time"],
        agg_attrs=["hover_duration", "elapsed_time", "level"],
        description="Correct-answer prediction from game-play events (synthetic Student).",
    )
