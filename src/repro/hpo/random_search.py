"""Random search optimiser (the paper's `Random` baseline search strategy)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hpo.optimizer import Optimizer
from repro.hpo.space import SearchSpace


class RandomSearchOptimizer(Optimizer):
    """Uniform random sampling of the search space."""

    def __init__(self, space: SearchSpace, seed: int | None = None):
        super().__init__(space, seed)
        self._rng = np.random.default_rng(seed)

    def suggest(self) -> Dict[str, object]:
        return self.space.sample(self._rng)
