"""Pluggable execution backends for the query engine.

The package exposes the :class:`ExecutionBackend` protocol and the name
registry (:func:`register_backend`, :func:`make_backend`,
:func:`backend_names`), plus the three built-in backends:

* ``"numpy"``  -- vectorized grouped kernels (the default; bit-identical to
  the reference aggregates),
* ``"python"`` -- the per-group Python loop (the in-process reference path),
* ``"sqlite"`` -- generated SQL over an in-memory SQLite database (a backend
  that owns its storage, filtering and grouping; value-equal within 1e-9).

Importing this package registers the built-ins; third-party backends register
themselves by decorating an :class:`ExecutionBackend` subclass with
``@register_backend("<name>")`` (see ``docs/architecture.md``).
"""

from repro.query.backends.base import (
    BACKEND_REGISTRY,
    ExecutionBackend,
    backend_names,
    make_backend,
    register_backend,
)
from repro.query.backends.numpy_backend import NumpyBackend
from repro.query.backends.python_backend import PythonBackend
from repro.query.backends.sqlite_backend import SqliteBackend

__all__ = [
    "BACKEND_REGISTRY",
    "ExecutionBackend",
    "backend_names",
    "make_backend",
    "register_backend",
    "NumpyBackend",
    "PythonBackend",
    "SqliteBackend",
]
