"""Gini impurity and a Gini-based feature importance score.

Used by the ``Featuretools + Gini Selector`` baseline: a feature is scored by
the impurity reduction of the best single split on that feature, i.e. the
importance a depth-1 decision stump would assign to it.
"""

from __future__ import annotations

import numpy as np


def gini_impurity(labels: np.ndarray) -> float:
    """Gini impurity of a label array: ``1 - sum_c p_c^2``."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / counts.sum()
    return float(1.0 - (p**2).sum())


def gini_importance(feature, label, max_thresholds: int = 32) -> float:
    """Impurity decrease of the best threshold split of *feature* on *label*.

    Missing feature values are routed to their own branch first; among the
    remaining values up to ``max_thresholds`` candidate split points (taken at
    quantiles) are evaluated and the largest weighted impurity decrease is
    returned.  Higher means a more useful feature.
    """
    x = np.asarray(feature, dtype=np.float64)
    y = np.asarray(label)
    parent = gini_impurity(y)
    finite = ~np.isnan(x)
    if finite.sum() < 2 or parent == 0:
        return 0.0
    xf, yf = x[finite], y[finite]
    distinct = np.unique(xf)
    if distinct.size < 2:
        return 0.0
    if distinct.size > max_thresholds:
        thresholds = np.quantile(xf, np.linspace(0, 1, max_thresholds + 2)[1:-1])
        thresholds = np.unique(thresholds)
    else:
        thresholds = (distinct[:-1] + distinct[1:]) / 2.0
    best = 0.0
    n = y.shape[0]
    for t in thresholds:
        left = xf <= t
        right = ~left
        if not left.any() or not right.any():
            continue
        weighted = (
            left.sum() * gini_impurity(yf[left]) + right.sum() * gini_impurity(yf[right])
        ) / n
        missing_part = (n - xf.shape[0]) * gini_impurity(y[~finite]) / n if (~finite).any() else 0.0
        decrease = parent - weighted - missing_part
        best = max(best, decrease)
    return float(best)
