"""Trial bookkeeping for the optimisers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Trial:
    """One evaluated point: parameters, objective value and optional metadata."""

    params: Dict[str, object]
    value: float
    metadata: Dict[str, object] = field(default_factory=dict)


class TrialHistory:
    """Ordered list of trials with convenience accessors."""

    def __init__(self):
        self._trials: List[Trial] = []

    def add(self, trial: Trial) -> None:
        self._trials.append(trial)

    def __len__(self) -> int:
        return len(self._trials)

    def __iter__(self):
        return iter(self._trials)

    def __getitem__(self, index: int) -> Trial:
        return self._trials[index]

    @property
    def trials(self) -> List[Trial]:
        return list(self._trials)

    def best(self, minimize: bool = True) -> Trial:
        """The finite trial with the lowest (or highest) objective value.

        NaN compares false with everything, so ``min`` over raw values would
        return an arbitrary trial as soon as one failed candidate reports a
        non-finite objective.  Non-finite trials are ignored unless the
        history holds nothing else, in which case the first trial is
        returned (deterministically) rather than raising.
        """
        if not self._trials:
            raise ValueError("No trials recorded yet")
        finite = [t for t in self._trials if math.isfinite(t.value)]
        if not finite:
            return self._trials[0]
        key = (lambda t: t.value) if minimize else (lambda t: -t.value)
        return min(finite, key=key)

    def top_k(self, k: int, minimize: bool = True) -> List[Trial]:
        """The *k* best trials, best first; non-finite trials rank last."""

        def rank(trial: Trial):
            # All non-finite values (NaN, +/-inf) count as failures and sort
            # after every finite trial, in insertion order.  A -inf "loss"
            # from a failed candidate must not masquerade as the best trial.
            if not math.isfinite(trial.value):
                return (1, 0.0)
            return (0, trial.value if minimize else -trial.value)

        return sorted(self._trials, key=rank)[:k]

    def values(self) -> List[float]:
        return [t.value for t in self._trials]
