"""Micro-benchmark of the admission-controlled query service (PR 9).

Serving scenario: four callers arrive concurrently, each wanting one
template's 50-query batch **plus** ten caller-specific level-range queries
(60 per caller, 240 total, 50 of them shared by everyone).  Two ways to
serve them:

* ``per-caller serial`` -- the pre-service world: every caller pays its own
  cold ``execute_batch`` (independent sessions share no engine state), so
  the shared template's masks, sort orders and aggregates are computed four
  times over,
* ``coalesced service`` -- one cold engine behind a :class:`QueryService`:
  the four concurrent submissions coalesce into one fused round, identical
  plans across callers execute once (fan-out of the shared result), and the
  caller-specific remainder shares the round's masks and sort orders.

Acceptance: every caller's service results are bit-identical to its own
serial cold-engine batch (asserted always, any host), and the coalesced
round beats the per-caller serial total by >= 1.3x on hosts with >= 4 cores
(slower hosts report their measured number and skip the bar, like the
PR 4-8 speed bars).  The ``service_coalesced`` / ``service_deduped``
counters are asserted and reported: the speedup must come from
cross-request fusion actually firing, not from noise.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List

import pytest

from _bench_utils import write_result
from repro.dataframe.column import DType
from repro.datasets.student import make_student
from repro.experiments.reporting import render_table
from repro.query.engine import EngineConfig, QueryEngine
from repro.query.query import PredicateAwareQuery
from repro.query.service import QueryService, ServiceConfig
from test_bench_engine import AGG_FUNCS, assert_feature_tables_match, make_queries

N_CALLERS = 4

#: Best-of-N fresh replays (every replay re-warms its own engines), matching
#: the timing discipline of the other engine benchmarks.
TIMING_REPEATS = 3


def make_relevant():
    return make_student(n_sessions=400, events_per_session=300, seed=0).relevant


def caller_batches() -> List[List[PredicateAwareQuery]]:
    """One 60-query batch per caller: the shared 50-query template batch
    plus ten caller-specific level-range queries."""
    shared = make_queries()
    batches = []
    for caller in range(N_CALLERS):
        private = [
            PredicateAwareQuery(
                func,
                "hover_duration",
                ("session_id",),
                {"level": (float(caller), float(caller) + 8.0)},
                {"level": DType.NUMERIC},
            )
            for func in AGG_FUNCS
        ]
        batches.append(list(shared) + private)
    return batches


def timed_serial(batches):
    """The pre-service cost: each caller's batch on its own cold engine."""
    relevant = make_relevant()
    best = float("inf")
    results = None
    for _ in range(TIMING_REPEATS):
        engines = [
            QueryEngine(relevant, config=EngineConfig(backend="numpy"))
            for _ in range(N_CALLERS)
        ]
        start = time.perf_counter()
        results = [
            engine.execute_batch(batch) for engine, batch in zip(engines, batches)
        ]
        best = min(best, time.perf_counter() - start)
    return results, best


def timed_service(batches):
    """One cold engine behind the service; callers submit concurrently."""
    relevant = make_relevant()
    best = float("inf")
    results = None
    stats = None
    for _ in range(TIMING_REPEATS):
        engine = QueryEngine(relevant, config=EngineConfig(backend="numpy"))
        baseline = engine.stats.as_dict()
        # Manual dispatch keeps the round formation deterministic: all four
        # callers admit first, then one draining close runs the fused
        # round(s) -- the timing never depends on window jitter.
        service = QueryService(
            engine, ServiceConfig(max_batch=1024, coalesce_window_ms=0),
            auto_start=False,
        )
        futures = [None] * N_CALLERS
        barrier = threading.Barrier(N_CALLERS)

        def caller(slot):
            barrier.wait(timeout=30)
            futures[slot] = service.submit(batches[slot])

        threads = [
            threading.Thread(target=caller, args=(slot,)) for slot in range(N_CALLERS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()  # draining close executes the coalesced round(s)
        results = [future.result(timeout=60) for future in futures]
        best = min(best, time.perf_counter() - start)
        stats = {
            key: value
            for key, value in engine.stats.delta_since(baseline).items()
            if key.startswith("service")
        }
    return results, best, stats


def test_coalesced_service_vs_per_caller_serial():
    batches = caller_batches()
    serial_results, serial_seconds = timed_serial(batches)
    service_results, service_seconds, stats = timed_service(batches)

    # The bar that matters on every host: coalescing is value-invisible.
    for serial_tables, service_tables in zip(serial_results, service_results):
        assert len(serial_tables) == len(service_tables)
        for serial_table, service_table in zip(serial_tables, service_tables):
            assert_feature_tables_match(serial_table, service_table)

    # Cross-request fusion really fired: one shared round, every admitted
    # query coalesced, the three repeat copies of the shared template's 50
    # queries served by fan-out.
    total_queries = sum(len(batch) for batch in batches)
    assert stats["service_rounds"] == 1
    assert stats["service_admitted"] == total_queries
    assert stats["service_coalesced"] == total_queries
    assert stats["service_deduped"] == (N_CALLERS - 1) * len(make_queries())

    speedup = serial_seconds / service_seconds
    rows = [
        ["per-caller serial", round(serial_seconds, 4), round(speedup, 2)],
        ["coalesced service", round(service_seconds, 4), 1.0],
    ]
    text = (
        f"Admission-controlled service ({N_CALLERS} concurrent callers, "
        f"{total_queries} queries, {len(make_queries())} shared)\n"
    )
    text += render_table(["variant", "seconds", "speedup vs service"], rows)
    text += "\nservice stats: " + ", ".join(
        f"{key}={stats[key]}"
        for key in (
            "service_admitted",
            "service_rounds",
            "service_coalesced",
            "service_deduped",
            "service_timeouts",
            "service_rejected",
        )
    )
    text += f"\ncpu cores: {os.cpu_count()}"
    print(text)
    write_result("bench_service", text)

    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(
            f"host has {cores} cpu cores; coalesced service measured "
            f"{speedup:.2f}x vs per-caller serial (results verified "
            "bit-identical); the >= 1.3x bar applies on >= 4 cores"
        )
    assert speedup >= 1.3, (
        f"expected the coalesced service >= 1.3x over per-caller serial "
        f"batches, got {speedup:.2f}x"
    )
