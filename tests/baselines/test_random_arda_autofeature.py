"""Unit tests for the Random, ARDA and AutoFeature baselines."""

import numpy as np
import pytest

from repro.baselines.arda import ARDA
from repro.baselines.autofeature import AutoFeatureDQN, AutoFeatureMAB
from repro.baselines.random_baseline import RandomAugmenter
from repro.core.evaluation import ModelEvaluator
from repro.dataframe.table import Table
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import train_valid_test_split


class TestRandomAugmenter:
    def test_generates_requested_count(self, logs_table):
        augmenter = RandomAugmenter(
            keys=["cname"], agg_attrs=["pprice"], n_templates=3, queries_per_template=4, seed=0
        )
        queries = augmenter.generate(logs_table, ["department", "pname", "timestamp"])
        assert len(queries) == 12

    def test_queries_are_executable(self, logs_table):
        from repro.query.executor import execute_query

        augmenter = RandomAugmenter(keys=["cname"], agg_attrs=["pprice"], n_templates=2, queries_per_template=2, seed=1)
        for query in augmenter.generate(logs_table, ["department", "timestamp"]):
            result = execute_query(query, logs_table)
            assert "feature" in result

    def test_deterministic_given_seed(self, logs_table):
        def run(seed):
            augmenter = RandomAugmenter(keys=["cname"], agg_attrs=["pprice"], n_templates=2, queries_per_template=2, seed=seed)
            return [q.signature() for q in augmenter.generate(logs_table, ["department", "timestamp"])]

        assert run(4) == run(4)

    def test_predicate_attrs_drawn_from_candidates(self, logs_table):
        augmenter = RandomAugmenter(keys=["cname"], agg_attrs=["pprice"], n_templates=4, queries_per_template=1, seed=2)
        queries = augmenter.generate(logs_table, ["department"])
        for query in queries:
            assert set(query.predicates) <= {"department"}


@pytest.fixture(scope="module")
def one_to_one_problem():
    rng = np.random.default_rng(9)
    n = 260
    informative_a = rng.normal(size=n)
    informative_b = rng.normal(size=n)
    noise = rng.normal(size=(n, 4))
    y = (informative_a + informative_b + rng.normal(0, 0.3, size=n) > 0).astype(float)
    X = np.column_stack([informative_a, informative_b, noise])
    names = ["info_a", "info_b", "noise_0", "noise_1", "noise_2", "noise_3"]

    # Keep the candidate features inside the split tables so the train/valid
    # matrices stay row-aligned with the evaluator's labels.
    data = {"base": rng.normal(size=n)}
    for j, name in enumerate(names):
        data[name] = X[:, j]
    data["label"] = y
    table = Table.from_dict(data)
    train, valid, _ = train_valid_test_split(table, (0.7, 0.3, 0.0), seed=0)
    evaluator = ModelEvaluator(
        train.select(["base", "label"]), valid.select(["base", "label"]),
        label="label", base_features=["base"],
        model=LogisticRegression(n_iter=100), task="binary",
    )
    X_train = np.column_stack([train.column(name).values for name in names])
    X_valid = np.column_stack([valid.column(name).values for name in names])
    return X, names, y, evaluator, X_train, X_valid


class TestARDA:
    def test_selects_k_features(self, one_to_one_problem):
        X, names, y, *_ = one_to_one_problem
        chosen = ARDA(seed=0, n_estimators=5).select(X, y, names, k=3)
        assert len(chosen) == 3

    def test_informative_features_survive_injection(self, one_to_one_problem):
        X, names, y, *_ = one_to_one_problem
        chosen = ARDA(seed=0, n_estimators=8).select(X, y, names, k=2)
        assert set(chosen) & {"info_a", "info_b"}

    def test_regression_task_runs(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(150, 3))
        y = X[:, 0] * 2 + rng.normal(0, 0.2, size=150)
        chosen = ARDA(seed=0, n_estimators=5).select(X, y, ["a", "b", "c"], k=1, task="regression")
        assert chosen == ["a"]

    def test_handles_nan(self, one_to_one_problem):
        X, names, y, *_ = one_to_one_problem
        X = X.copy()
        X[::7, 0] = np.nan
        chosen = ARDA(seed=0, n_estimators=5).select(X, y, names, k=2)
        assert len(chosen) == 2


class TestAutoFeatureMAB:
    def test_selects_k_features(self, one_to_one_problem):
        _, names, _, evaluator, X_train, X_valid = one_to_one_problem
        chosen = AutoFeatureMAB(n_iterations=12, seed=0).select(evaluator, X_train, X_valid, names, k=2)
        assert len(chosen) == 2

    def test_prefers_informative(self, one_to_one_problem):
        _, names, _, evaluator, X_train, X_valid = one_to_one_problem
        chosen = AutoFeatureMAB(n_iterations=15, seed=0).select(evaluator, X_train, X_valid, names, k=2)
        assert set(chosen) & {"info_a", "info_b"}

    def test_empty_candidates(self, one_to_one_problem):
        _, _, _, evaluator, X_train, X_valid = one_to_one_problem
        assert AutoFeatureMAB(seed=0).select(evaluator, X_train[:, :0], X_valid[:, :0], [], k=2) == []


class TestAutoFeatureDQN:
    def test_selects_at_most_k(self, one_to_one_problem):
        _, names, _, evaluator, X_train, X_valid = one_to_one_problem
        chosen = AutoFeatureDQN(n_episodes=2, seed=0).select(evaluator, X_train, X_valid, names, k=3)
        assert 0 < len(chosen) <= 3

    def test_deterministic_given_seed(self, one_to_one_problem):
        _, names, _, evaluator, X_train, X_valid = one_to_one_problem

        def run(seed):
            return AutoFeatureDQN(n_episodes=2, seed=seed).select(evaluator, X_train, X_valid, names, k=2)

        assert run(5) == run(5)

    def test_empty_candidates(self, one_to_one_problem):
        _, _, _, evaluator, X_train, X_valid = one_to_one_problem
        assert AutoFeatureDQN(seed=0).select(evaluator, X_train[:, :0], X_valid[:, :0], [], k=2) == []
