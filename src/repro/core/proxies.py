"""Low-cost proxies for query / template effectiveness.

Instead of retraining the downstream model for every candidate query, the
warm-up phase and the template-identification component score a candidate by
a cheap statistic of its generated feature against the label (Section V.C,
VI.C.1, Table VIII).  All proxies return a value where *higher is better*.
"""

from __future__ import annotations

import numpy as np

from repro.ml.linear import LinearRegression, LogisticRegression
from repro.ml.metrics import rmse, roc_auc_score
from repro.stats.correlation import spearman_correlation
from repro.stats.mutual_information import mutual_information


class Proxy:
    """Interface: score a candidate feature against the label (higher = better)."""

    name = "proxy"

    def score(self, feature: np.ndarray, label: np.ndarray, task: str) -> float:
        raise NotImplementedError


class MutualInformationProxy(Proxy):
    """Mutual information between the (binned) feature and the label."""

    name = "mi"

    def __init__(self, n_bins: int = 10):
        self.n_bins = n_bins

    def score(self, feature: np.ndarray, label: np.ndarray, task: str) -> float:
        return mutual_information(feature, label, n_bins=self.n_bins)


class SpearmanProxy(Proxy):
    """Absolute Spearman rank correlation between feature and label."""

    name = "spearman"

    def score(self, feature: np.ndarray, label: np.ndarray, task: str) -> float:
        return abs(spearman_correlation(feature, label))


class LRProxy(Proxy):
    """Validation performance of a tiny LR model trained on the single feature.

    The feature vector is split in half (first part train, second part
    validation); classification returns AUC, regression returns ``-RMSE`` so
    that higher is always better.
    """

    name = "lr"

    def __init__(self, n_iter: int = 100):
        self.n_iter = n_iter

    def score(self, feature: np.ndarray, label: np.ndarray, task: str) -> float:
        feature = np.asarray(feature, dtype=np.float64)
        label = np.asarray(label, dtype=np.float64)
        finite = ~np.isnan(feature)
        feature = np.where(finite, feature, np.nanmean(feature) if finite.any() else 0.0)
        n = feature.shape[0]
        if n < 10 or np.unique(label).size < 2:
            return 0.0
        half = n // 2
        X_train, X_valid = feature[:half].reshape(-1, 1), feature[half:].reshape(-1, 1)
        y_train, y_valid = label[:half], label[half:]
        if task == "regression":
            model = LinearRegression().fit(X_train, y_train)
            return -rmse(y_valid, model.predict(X_valid))
        if np.unique(y_train).size < 2:
            return 0.0
        model = LogisticRegression(n_iter=self.n_iter).fit(X_train, y_train)
        proba = model.predict_proba(X_valid)[:, -1]
        positive = model.classes_[-1]
        return roc_auc_score((y_valid == positive).astype(float), proba)


def make_proxy(name: str) -> Proxy:
    """Instantiate a proxy by its Table VIII name ("mi", "spearman", "lr")."""
    key = name.strip().lower()
    if key in ("mi", "mutual_information"):
        return MutualInformationProxy()
    if key in ("sc", "spearman"):
        return SpearmanProxy()
    if key in ("lr", "logistic"):
        return LRProxy()
    raise ValueError(f"Unknown proxy {name!r}; expected 'mi', 'spearman' or 'lr'")
