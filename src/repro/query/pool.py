"""Query pools: the search space of one query template (Definition 2, §V.A).

A :class:`QueryPool` inspects the relevant table once to collect the domain of
every predicate attribute (distinct values for categoricals, min/max for
numeric and datetime attributes) and builds the corresponding
:class:`~repro.hpo.space.SearchSpace`:

* one categorical dimension for the aggregation function,
* one categorical dimension for the aggregation attribute,
* per categorical predicate attribute: one categorical dimension over the
  attribute's values plus ``None`` ("no predicate"),
* per numeric/datetime predicate attribute: two optional real dimensions for
  the lower and upper bound,
* one categorical dimension selecting the (non-empty) subset of the foreign
  key used for GROUP BY.

The pool also converts HPO parameter dictionaries back into executable
:class:`~repro.query.query.PredicateAwareQuery` objects.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dataframe.column import DType
from repro.dataframe.table import Table
from repro.hpo.space import CategoricalDimension, RealDimension, SearchSpace
from repro.query.query import PredicateAwareQuery, WindowConstraint
from repro.query.template import QueryTemplate

#: Maximum number of distinct values kept per categorical predicate attribute;
#: rarer values are dropped from the search space to keep it tractable.
MAX_CATEGORICAL_VALUES = 30

#: Maximum IN-list size proposed for a template's ``in_list_attrs``: the
#: search dimension offers the top-1, top-2, ... top-m prefixes of the
#: attribute's domain (plus ``None``), so member sets grow by frequency
#: rank instead of exploding combinatorially.
MAX_IN_LIST_MEMBERS = 8


def _non_empty_key_subsets(keys: Sequence[str]) -> List[Tuple[str, ...]]:
    subsets: List[Tuple[str, ...]] = []
    keys = list(keys)
    n = len(keys)
    for mask in range(1, 2**n):
        subsets.append(tuple(keys[i] for i in range(n) if mask & (1 << i)))
    # Prefer the full key first so the default grouping matches the paper.
    subsets.sort(key=lambda s: -len(s))
    return subsets


class QueryPool:
    """The pool of candidate predicate-aware queries for one template."""

    def __init__(self, template: QueryTemplate, relevant_table: Table, relation_name: str = "R"):
        template.validate_against(relevant_table)
        self.template = template
        self.relation_name = relation_name
        self._categorical_domains: Dict[str, List] = {}
        self._numeric_domains: Dict[str, Tuple[float, float]] = {}
        self._predicate_dtypes: Dict[str, DType] = {}
        #: Every distinct categorical value ever seen, in first-appearance
        #: order over the whole table -- the uncapped superset the capped
        #: domain is derived from (so appends extend, never reshuffle, it).
        self._categorical_seen: Dict[str, List] = {}
        #: Raw (possibly NaN / degenerate) numeric bounds before the
        #: sampling adjustments, so appends can tighten them monotonically.
        self._raw_numeric_bounds: Dict[str, Tuple[float, float]] = {}
        self._inspected_rows = relevant_table.num_rows
        self._collect_domains(relevant_table)
        self.space = self._build_space()

    # ------------------------------------------------------------------
    # Domain collection and space construction
    # ------------------------------------------------------------------
    def _constrained_attrs(self) -> List[str]:
        """Every attribute the pool may constrain, deduplicated in order:
        plain predicate attributes, then IN-list, then window attributes."""
        ordered: List[str] = []
        for attr in (
            list(self.template.predicate_attrs)
            + list(self.template.in_list_attrs)
            + list(self.template.window_attrs)
        ):
            if attr not in ordered:
                ordered.append(attr)
        return ordered

    def _collect_domains(self, table: Table) -> None:
        for attr in self._constrained_attrs():
            column = table.column(attr)
            self._predicate_dtypes[attr] = column.dtype
            if column.dtype is DType.CATEGORICAL:
                self._categorical_seen[attr] = column.unique()
                self._categorical_domains[attr] = self._capped_domain(attr, column)
            else:
                low, high = column.min(), column.max()
                self._raw_numeric_bounds[attr] = (low, high)
                self._numeric_domains[attr] = self._adjusted_bounds(low, high)
        for attr in self.template.in_list_attrs:
            if self._predicate_dtypes[attr] is not DType.CATEGORICAL:
                raise ValueError(
                    f"in_list_attrs entry {attr!r} must be categorical, "
                    f"got {self._predicate_dtypes[attr]}"
                )
        for attr in self.template.window_attrs:
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                raise ValueError(
                    f"window_attrs entry {attr!r} must be numeric or datetime"
                )

    def _capped_domain(self, attr: str, column) -> List:
        """The search-space domain for one categorical attribute.

        Under the cap it is the full first-appearance value list; over the
        cap the whole column is recounted and the most frequent values win
        (stable sort: frequency ties keep first-appearance order), exactly
        as a freshly constructed pool would decide.
        """
        values = list(self._categorical_seen[attr])
        if len(values) > MAX_CATEGORICAL_VALUES:
            counts: Dict[object, int] = {}
            for v in column.values:
                if v is None:
                    continue
                counts[v] = counts.get(v, 0) + 1
            values = sorted(counts, key=lambda v: -counts[v])[:MAX_CATEGORICAL_VALUES]
        return values

    @staticmethod
    def _adjusted_bounds(low: float, high: float) -> Tuple[float, float]:
        """The sampling adjustments applied to raw min/max bounds."""
        if np.isnan(low) or np.isnan(high):
            low, high = 0.0, 1.0
        if low == high:
            high = low + 1.0
        return (float(low), float(high))

    def refresh(self, table: Table) -> bool:
        """Extend the pool's domains over rows appended to the table.

        Only the appended slice is inspected for new categorical values and
        numeric bounds; the capped-domain / bound-adjustment rules are then
        re-applied, so after any sequence of appends the domains -- and the
        rebuilt search space -- are exactly what constructing a fresh pool
        over the extended table would produce (including the
        ``MAX_CATEGORICAL_VALUES`` frequency cut, which recounts the full
        column only once the uncapped value list exceeds the cap).

        Returns ``True`` when any domain changed and the search space was
        rebuilt; encodings of previously decoded queries stay valid either
        way, because categorical domains only ever extend.
        """
        old_rows = self._inspected_rows
        if table.num_rows < old_rows:
            raise ValueError(
                "QueryPool.refresh expects an append-only table: saw "
                f"{table.num_rows} rows after inspecting {old_rows}"
            )
        if table.num_rows == old_rows:
            return False
        changed = False
        for attr in self._constrained_attrs():
            column = table.column(attr)
            if column.dtype is not self._predicate_dtypes[attr]:
                raise ValueError(
                    f"Predicate attribute {attr!r} changed dtype across an "
                    f"append: {self._predicate_dtypes[attr]} vs {column.dtype}"
                )
            if column.dtype is DType.CATEGORICAL:
                seen = self._categorical_seen[attr]
                seen_set = set(seen)
                for v in column.values[old_rows:]:
                    if v is None or v in seen_set:
                        continue
                    seen_set.add(v)
                    seen.append(v)
                domain = self._capped_domain(attr, column)
                if domain != self._categorical_domains[attr]:
                    self._categorical_domains[attr] = domain
                    changed = True
            else:
                values = column.values[old_rows:]
                finite = values[~np.isnan(values)]
                low, high = self._raw_numeric_bounds[attr]
                if finite.size:
                    d_low, d_high = float(finite.min()), float(finite.max())
                    low = d_low if np.isnan(low) else min(low, d_low)
                    high = d_high if np.isnan(high) else max(high, d_high)
                    self._raw_numeric_bounds[attr] = (low, high)
                adjusted = self._adjusted_bounds(low, high)
                if adjusted != self._numeric_domains[attr]:
                    self._numeric_domains[attr] = adjusted
                    changed = True
        self._inspected_rows = table.num_rows
        if changed:
            self.space = self._build_space()
        return changed

    def _build_space(self) -> SearchSpace:
        dimensions = [
            CategoricalDimension("agg_func", list(self.template.agg_funcs)),
            CategoricalDimension("agg_attr", list(self.template.agg_attrs)),
        ]
        for attr in self.template.predicate_attrs:
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                choices = [None] + list(self._categorical_domains[attr])
                dimensions.append(CategoricalDimension(f"pred::{attr}", choices))
            else:
                low, high = self._numeric_domains[attr]
                dimensions.append(
                    RealDimension(f"pred_low::{attr}", low, high, optional=True)
                )
                dimensions.append(
                    RealDimension(f"pred_high::{attr}", low, high, optional=True)
                )
        for attr in self.template.in_list_attrs:
            domain = list(self._categorical_domains[attr])
            prefixes = [
                tuple(domain[:i])
                for i in range(1, min(len(domain), MAX_IN_LIST_MEMBERS) + 1)
            ]
            dimensions.append(
                CategoricalDimension(f"pred_in::{attr}", [None] + prefixes)
            )
        for attr in self.template.window_attrs:
            low, high = self._numeric_domains[attr]
            dimensions.append(
                RealDimension(f"win_low::{attr}", low, high, optional=True)
            )
            dimensions.append(
                RealDimension(f"win_high::{attr}", low, high, optional=True)
            )
        dimensions.append(
            CategoricalDimension("group_keys", _non_empty_key_subsets(self.template.keys))
        )
        return SearchSpace(dimensions)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def decode(self, params: Dict[str, object]) -> PredicateAwareQuery:
        """Convert an HPO parameter dictionary into an executable query.

        Numeric bounds are swapped when sampled in the wrong order so every
        decoded query is well-formed (``low <= high``).
        """
        predicates: Dict[str, object] = {}
        for attr in self.template.predicate_attrs:
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                predicates[attr] = params.get(f"pred::{attr}")
            else:
                low = params.get(f"pred_low::{attr}")
                high = params.get(f"pred_high::{attr}")
                if low is not None and high is not None and low > high:
                    low, high = high, low
                predicates[attr] = (low, high)
        for attr in self.template.in_list_attrs:
            members = params.get(f"pred_in::{attr}")
            if members:
                predicates[attr] = tuple(members)
            elif attr not in predicates:
                predicates[attr] = None
        for attr in self.template.window_attrs:
            low = params.get(f"win_low::{attr}")
            high = params.get(f"win_high::{attr}")
            if low is not None and high is not None:
                if low > high:
                    low, high = high, low
                predicates[attr] = WindowConstraint(float(low), float(high))
            elif attr not in predicates:
                predicates[attr] = None
        group_keys = params.get("group_keys") or tuple(self.template.keys)
        return PredicateAwareQuery(
            agg_func=params["agg_func"],
            agg_attr=params["agg_attr"],
            keys=tuple(group_keys),
            predicates=predicates,
            predicate_dtypes=dict(self._predicate_dtypes),
            relation_name=self.relation_name,
        )

    def encode(self, query: PredicateAwareQuery) -> Dict[str, object]:
        """Convert a query back into an HPO parameter dictionary."""
        params: Dict[str, object] = {
            "agg_func": query.agg_func,
            "agg_attr": query.agg_attr,
            "group_keys": tuple(query.keys),
        }
        for attr in self.template.predicate_attrs:
            constraint = query.predicates.get(attr)
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                # Membership constraints live on the pred_in:: dimension.
                params[f"pred::{attr}"] = (
                    None
                    if isinstance(constraint, (list, tuple, set, frozenset))
                    else constraint
                )
            else:
                # Window constraints live on the win_low::/win_high:: pair.
                if isinstance(constraint, WindowConstraint) or constraint is None:
                    constraint = (None, None)
                low, high = constraint
                params[f"pred_low::{attr}"] = low
                params[f"pred_high::{attr}"] = high
        for attr in self.template.in_list_attrs:
            constraint = query.predicates.get(attr)
            params[f"pred_in::{attr}"] = (
                tuple(constraint)
                if isinstance(constraint, (list, tuple, set, frozenset)) and constraint
                else None
            )
        for attr in self.template.window_attrs:
            constraint = query.predicates.get(attr)
            if isinstance(constraint, WindowConstraint):
                params[f"win_low::{attr}"] = constraint.low
                params[f"win_high::{attr}"] = constraint.high
            else:
                params[f"win_low::{attr}"] = None
                params[f"win_high::{attr}"] = None
        return params

    def sample_random(self, seed: int | None = None, n: int = 1) -> List[PredicateAwareQuery]:
        """Draw *n* random queries from the pool."""
        rng = np.random.default_rng(seed)
        return [self.decode(self.space.sample(rng)) for _ in range(n)]

    def domain_of(self, attr: str):
        """Domain of one predicate attribute (list of values or (low, high))."""
        if attr in self._categorical_domains:
            return list(self._categorical_domains[attr])
        if attr in self._numeric_domains:
            return self._numeric_domains[attr]
        raise KeyError(f"{attr!r} is not a predicate attribute of this pool")

    @property
    def predicate_dtypes(self) -> Dict[str, DType]:
        return dict(self._predicate_dtypes)
