"""Optimiser interface: suggest / observe / minimize."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.hpo.space import SearchSpace
from repro.hpo.trial import Trial, TrialHistory


class Optimizer:
    """Base class for sequential model-based (and random) optimisers.

    The protocol is the classic ask/tell loop:

    >>> params = optimizer.suggest()
    >>> value = objective(params)
    >>> optimizer.observe(params, value)

    plus a batched variant for callers that can evaluate several candidates
    at once (the fused query engine amortises plan execution across a batch):

    >>> batch = optimizer.suggest_batch(8)
    >>> optimizer.observe_batch(batch, [objective(p) for p in batch])

    ``suggest_batch`` proposes *n* points without observing anything in
    between, so the whole batch is conditioned on the same history; a batch
    of size one must reproduce ``suggest()`` exactly.  ``minimize`` drives
    the loop for a fixed number of iterations and returns the best trial.
    Objective values are always *minimised*; callers that maximise a score
    (e.g. mutual information in the warm-up phase) negate it.
    """

    def __init__(self, space: SearchSpace, seed: int | None = None):
        self.space = space
        self.seed = seed
        self.history = TrialHistory()

    def suggest(self) -> Dict[str, object]:
        raise NotImplementedError

    def suggest_batch(self, n: int) -> List[Dict[str, object]]:
        """Propose *n* candidates from the current history.

        The default loops ``suggest()``; optimisers whose suggestion step
        conditions on the history (TPE) override this to fit their surrogate
        once per batch.  Either way the history is not updated until the
        caller reports values through :meth:`observe_batch`.
        """
        if n < 1:
            raise ValueError(f"batch size must be >= 1, got {n}")
        return [self.suggest() for _ in range(n)]

    def observe(self, params: Dict[str, object], value: float, **metadata) -> None:
        """Record an evaluated point."""
        self.space.validate(params)
        self.history.add(Trial(params=dict(params), value=float(value), metadata=metadata))

    def observe_batch(
        self,
        params_batch: Sequence[Dict[str, object]],
        values: Sequence[float],
        metadata: Sequence[Dict[str, object]] | None = None,
    ) -> None:
        """Record one value per suggestion, preserving suggestion order."""
        params_batch = list(params_batch)
        values = list(values)
        if len(params_batch) != len(values):
            raise ValueError(
                f"got {len(params_batch)} param sets but {len(values)} values"
            )
        if metadata is not None and len(metadata) != len(params_batch):
            raise ValueError(
                f"got {len(params_batch)} param sets but {len(metadata)} metadata dicts"
            )
        for i, (params, value) in enumerate(zip(params_batch, values)):
            self.observe(params, value, **(metadata[i] if metadata is not None else {}))

    def minimize(
        self,
        objective: Callable[[Dict[str, object]], float],
        n_iter: int,
        batch_size: int = 1,
    ) -> Trial:
        """Run the ask/tell loop for *n_iter* evaluations; return the best trial."""
        remaining = n_iter
        while remaining > 0:
            batch = self.suggest_batch(min(batch_size, remaining))
            values = [objective(params) for params in batch]
            self.observe_batch(batch, values)
            remaining -= len(batch)
        return self.history.best(minimize=True)

    def warm_start(self, trials) -> None:
        """Seed the optimiser's history with externally evaluated trials."""
        for trial in trials:
            self.history.add(Trial(params=dict(trial.params), value=float(trial.value), metadata=dict(trial.metadata)))
