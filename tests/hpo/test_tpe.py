"""Unit tests for the TPE optimiser."""

import numpy as np
import pytest

from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.space import CategoricalDimension, IntegerDimension, RealDimension, SearchSpace
from repro.hpo.tpe import TPEOptimizer
from repro.hpo.trial import Trial


@pytest.fixture
def quadratic_space():
    return SearchSpace([RealDimension("x", -10, 10), RealDimension("y", -10, 10)])


def quadratic(params):
    return (params["x"] - 3) ** 2 + (params["y"] + 2) ** 2


class TestTPE:
    def test_suggestions_valid(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0, n_startup_trials=3)
        for _ in range(25):
            params = optimizer.suggest()
            quadratic_space.validate(params)
            optimizer.observe(params, quadratic(params))

    def test_optimises_quadratic_better_than_random_on_average(self, quadratic_space):
        def best_of(optimizer_factory, seed):
            return optimizer_factory(seed).minimize(quadratic, n_iter=60).value

        tpe_scores = [
            best_of(lambda s: TPEOptimizer(quadratic_space, seed=s, n_startup_trials=8), s)
            for s in range(3)
        ]
        random_scores = [
            best_of(lambda s: RandomSearchOptimizer(quadratic_space, seed=s), s) for s in range(3)
        ]
        # Averaged over seeds TPE should at least match random search and find
        # a reasonable optimum of the quadratic (global minimum value is 0).
        assert np.mean(tpe_scores) <= np.mean(random_scores) + 2.0
        assert min(tpe_scores) < 10.0

    def test_exploitation_concentrates_near_good_region(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=1, n_startup_trials=5)
        for _ in range(40):
            params = optimizer.suggest()
            optimizer.observe(params, quadratic(params))
        late = [optimizer.suggest() for _ in range(10)]
        distances = [abs(p["x"] - 3) + abs(p["y"] + 2) for p in late]
        assert np.median(distances) < 10.0

    def test_categorical_optimisation(self):
        space = SearchSpace([CategoricalDimension("c", list("abcdef"))])
        target = {"a": 5.0, "b": 4.0, "c": 3.0, "d": 2.0, "e": 1.0, "f": 0.0}
        optimizer = TPEOptimizer(space, seed=0, n_startup_trials=5)
        best = optimizer.minimize(lambda p: target[p["c"]], n_iter=40)
        assert best.params["c"] == "f"

    def test_integer_dimension_rounds(self):
        space = SearchSpace([IntegerDimension("k", 0, 20)])
        optimizer = TPEOptimizer(space, seed=0, n_startup_trials=5)
        for _ in range(30):
            params = optimizer.suggest()
            assert isinstance(params["k"], int)
            optimizer.observe(params, abs(params["k"] - 7))

    def test_optional_dimension_handles_none(self):
        space = SearchSpace([RealDimension("x", 0, 1, optional=True), CategoricalDimension("c", ["a"])])
        optimizer = TPEOptimizer(space, seed=0, n_startup_trials=4)

        def objective(params):
            return 0.0 if params["x"] is None else 1.0 + params["x"]

        best = optimizer.minimize(objective, n_iter=30)
        assert best.params["x"] is None

    def test_warm_start_biases_search(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=2, n_startup_trials=2, min_good=2)
        seeds = [
            Trial({"x": 3.0 + dx, "y": -2.0 + dy}, quadratic({"x": 3.0 + dx, "y": -2.0 + dy}))
            for dx, dy in [(-0.2, 0.1), (0.1, -0.1), (0.3, 0.2), (5.0, 5.0), (-6.0, 4.0), (8.0, -8.0)]
        ]
        optimizer.warm_start(seeds)
        suggestions = [optimizer.suggest() for _ in range(10)]
        distances = [abs(p["x"] - 3) + abs(p["y"] + 2) for p in suggestions]
        assert np.median(distances) < 8.0

    def test_gamma_validation(self, quadratic_space):
        with pytest.raises(ValueError):
            TPEOptimizer(quadratic_space, gamma=1.5)

    def test_deterministic_given_seed(self, quadratic_space):
        def run(seed):
            opt = TPEOptimizer(quadratic_space, seed=seed, n_startup_trials=3)
            return opt.minimize(quadratic, n_iter=20).value

        assert run(7) == run(7)

    def test_history_grows(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0)
        optimizer.minimize(quadratic, n_iter=12)
        assert len(optimizer.history) == 12


class _ConstantDensity:
    """Stub density returning a fixed pdf for every value."""

    def __init__(self, pdf_value):
        self._pdf_value = pdf_value

    def pdf(self, value):
        return self._pdf_value


class TestSurrogateScoreClamping:
    """Regression: a zero pdf must never produce -inf / NaN surrogate scores."""

    def test_zero_pdf_scores_are_finite(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0)
        names = quadratic_space.names
        candidate = {name: 0.0 for name in names}
        good = {name: _ConstantDensity(0.0) for name in names}
        bad = {name: _ConstantDensity(1.0) for name in names}
        score = optimizer._surrogate_score(candidate, good, bad)
        assert np.isfinite(score)

    def test_zero_over_zero_is_not_nan(self, quadratic_space):
        """log(0) - log(0) used to collapse to NaN and discard the candidate."""
        optimizer = TPEOptimizer(quadratic_space, seed=0)
        names = quadratic_space.names
        candidate = {name: 0.0 for name in names}
        zero = {name: _ConstantDensity(0.0) for name in names}
        score = optimizer._surrogate_score(candidate, dict(zero), dict(zero))
        assert score == 0.0

    def test_zero_good_pdf_ranks_below_positive(self, quadratic_space):
        """The clamp keeps the ordering: an unsupported candidate loses."""
        optimizer = TPEOptimizer(quadratic_space, seed=0)
        names = quadratic_space.names
        candidate = {name: 0.0 for name in names}
        bad = {name: _ConstantDensity(0.5) for name in names}
        supported = optimizer._surrogate_score(
            candidate, {name: _ConstantDensity(0.5) for name in names}, bad
        )
        unsupported = optimizer._surrogate_score(
            candidate, {name: _ConstantDensity(0.0) for name in names}, bad
        )
        assert unsupported < supported


class TestNonFiniteTrials:
    """Failed candidates reporting NaN/inf must not poison the TPE split."""

    def test_split_sees_only_finite_trials(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0, n_startup_trials=2)
        values = [1.0, float("nan"), 2.0, float("inf"), 0.5, float("-inf"), 3.0]
        for i, value in enumerate(values):
            optimizer.observe({"x": float(i), "y": float(-i)}, value)
        good, bad = optimizer._split_trials()
        assert all(np.isfinite(t.value) for t in good + bad)
        assert len(good) + len(bad) == 4

    def test_all_non_finite_history_falls_back_to_sampling(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0, n_startup_trials=1)
        for i in range(6):
            optimizer.observe({"x": float(i), "y": 0.0}, float("nan"))
        params = optimizer.suggest()
        quadratic_space.validate(params)

    def test_minimize_survives_sporadic_nan_objective(self, quadratic_space):
        def flaky(params):
            value = quadratic(params)
            return float("nan") if params["x"] > 8 else value

        optimizer = TPEOptimizer(quadratic_space, seed=1, n_startup_trials=3)
        best = optimizer.minimize(flaky, n_iter=25)
        assert np.isfinite(best.value)


class TestIntegerSampleClamping:
    """_NumericDensityAdapter.sample must stay inside the dimension bounds."""

    @pytest.mark.parametrize("seed", range(8))
    def test_samples_within_bounds(self, seed):
        from repro.hpo.tpe import _NumericDensityAdapter

        rng = np.random.default_rng(seed)
        dim = IntegerDimension("n", 0, 9)
        observations = list(rng.integers(dim.low, dim.high + 1, size=12))
        adapter = _NumericDensityAdapter(dim, observations)
        for _ in range(200):
            value = adapter.sample(rng)
            assert isinstance(value, int)
            assert dim.low <= value <= dim.high

    @pytest.mark.parametrize("seed", range(4))
    def test_edge_heavy_observations_stay_clamped(self, seed):
        """Observations piled on the bounds push the KDE mass outward --
        rounding its clipped samples is exactly where the clamp matters."""
        from repro.hpo.tpe import _NumericDensityAdapter

        rng = np.random.default_rng(seed)
        dim = IntegerDimension("n", -3, 3)
        adapter = _NumericDensityAdapter(dim, [dim.low] * 6 + [dim.high] * 6)
        for _ in range(300):
            value = adapter.sample(rng)
            assert dim.low <= value <= dim.high
