"""Unit tests for entropy and discretisation."""

import numpy as np
import pytest

from repro.stats.entropy import discretize, shannon_entropy


class TestDiscretize:
    def test_few_distinct_values_get_own_codes(self):
        codes = discretize(np.asarray([1.0, 2.0, 1.0, 2.0]), n_bins=10)
        assert len(np.unique(codes)) == 2

    def test_nan_gets_dedicated_bin(self):
        codes = discretize(np.asarray([1.0, np.nan, 2.0]), n_bins=5)
        assert codes[1] == 5

    def test_many_values_binned_to_limit(self):
        values = np.linspace(0, 1, 1000)
        codes = discretize(values, n_bins=8)
        assert len(np.unique(codes)) <= 8

    def test_all_nan(self):
        codes = discretize(np.asarray([np.nan, np.nan]), n_bins=4)
        assert set(codes) == {4}

    def test_bins_are_roughly_balanced(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=2000)
        codes = discretize(values, n_bins=10)
        _, counts = np.unique(codes, return_counts=True)
        assert counts.min() > 100  # quantile bins ~200 each


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(np.asarray([])) == 0.0

    def test_constant_is_zero(self):
        assert shannon_entropy(np.asarray([3, 3, 3])) == 0.0

    def test_uniform_is_log_k(self):
        assert shannon_entropy(np.asarray([0, 1, 2, 3])) == pytest.approx(np.log(4))

    def test_entropy_is_nonnegative(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 5, size=100)
        assert shannon_entropy(codes) >= 0

    def test_entropy_bounded_by_log_support(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(0, 7, size=500)
        assert shannon_entropy(codes) <= np.log(7) + 1e-9
