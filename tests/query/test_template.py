"""Unit tests for query templates."""

import numpy as np
import pytest

from repro.dataframe.aggregates import DEFAULT_AGGREGATES
from repro.query.template import QueryTemplate, enumerate_attribute_combinations


class TestQueryTemplate:
    def test_example_5_from_paper(self):
        template = QueryTemplate(
            ["SUM", "AVG", "MAX"], ["pprice"], ["department", "timestamp"], ["cname"]
        )
        assert template.agg_funcs == ("SUM", "AVG", "MAX")
        assert template.agg_attrs == ("pprice",)
        assert template.predicate_attrs == ("department", "timestamp")
        assert template.keys == ("cname",)

    def test_default_aggregates_used_when_none(self):
        template = QueryTemplate(None, ["x"], [], ["k"])
        assert list(template.agg_funcs) == DEFAULT_AGGREGATES

    def test_agg_names_normalised(self):
        template = QueryTemplate(["count distinct", "avg"], ["x"], [], ["k"])
        assert template.agg_funcs == ("COUNT_DISTINCT", "AVG")

    def test_requires_agg_attr(self):
        with pytest.raises(ValueError):
            QueryTemplate(["SUM"], [], [], ["k"])

    def test_requires_key(self):
        with pytest.raises(ValueError):
            QueryTemplate(["SUM"], ["x"], [], [])

    def test_validate_against_table(self, logs_table):
        template = QueryTemplate(["SUM"], ["pprice"], ["department"], ["cname"])
        template.validate_against(logs_table)  # should not raise

    def test_validate_against_missing_column(self, logs_table):
        template = QueryTemplate(["SUM"], ["nonexistent"], [], ["cname"])
        with pytest.raises(KeyError):
            template.validate_against(logs_table)

    def test_one_hot_encoding(self):
        template = QueryTemplate(["SUM"], ["x"], ["a", "c"], ["k"])
        encoding = template.encode(["a", "b", "c", "d"])
        assert list(encoding) == [1.0, 0.0, 1.0, 0.0]

    def test_encoding_example_from_paper(self):
        """Section VI.C.2: {A, C, E, F} over universe A..F -> [1,0,1,0,1,1]."""
        template = QueryTemplate(["SUM"], ["x"], ["A", "C", "E", "F"], ["k"])
        assert list(template.encode(list("ABCDEF"))) == [1, 0, 1, 0, 1, 1]

    def test_with_predicate_attrs(self):
        base = QueryTemplate(["SUM"], ["x"], ["a"], ["k"])
        other = base.with_predicate_attrs(["b", "c"])
        assert other.predicate_attrs == ("b", "c")
        assert other.agg_attrs == base.agg_attrs

    def test_describe_mentions_parts(self):
        text = QueryTemplate(["SUM"], ["x"], ["a"], ["k"]).describe()
        assert "SUM" in text and "x" in text and "a" in text and "k" in text

    def test_hashable_and_frozen(self):
        template = QueryTemplate(["SUM"], ["x"], ["a"], ["k"])
        assert hash(template) == hash(QueryTemplate(["SUM"], ["x"], ["a"], ["k"]))


class TestEnumerateCombinations:
    def test_counts_all_nonempty_subsets(self):
        combos = enumerate_attribute_combinations(["a", "b", "c"])
        assert len(combos) == 7

    def test_max_size_limits(self):
        combos = enumerate_attribute_combinations(["a", "b", "c", "d"], max_size=2)
        assert all(len(c) <= 2 for c in combos)
        assert len(combos) == 4 + 6

    def test_empty_input(self):
        assert enumerate_attribute_combinations([]) == []

    def test_subset_count_matches_paper_formula(self):
        """|S_attr| = 2^|attr| (including the empty set which we exclude)."""
        attrs = list("abcde")
        assert len(enumerate_attribute_combinations(attrs)) == 2 ** len(attrs) - 1
