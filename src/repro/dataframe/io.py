"""CSV input/output for :class:`~repro.dataframe.table.Table`.

The example scripts persist the synthetic datasets to disk and read them back
so that the public API mirrors the pandas-based workflow of the original
FeatAug repository (``pd.read_csv`` -> search -> ``to_csv``).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.dataframe.column import Column, DType, format_datetime
from repro.dataframe.table import Table

_MISSING_TOKENS = {"", "na", "nan", "null", "none"}


def _try_parse_float(text: str):
    try:
        return float(text)
    except ValueError:
        return None


def _looks_like_datetime(text: str) -> bool:
    if len(text) < 8 or text[4:5] != "-":
        return False
    head = text[:4]
    return head.isdigit()


def _infer_column(name: str, raw: List[str]) -> Column:
    non_missing = [v for v in raw if v.strip().lower() not in _MISSING_TOKENS]
    if non_missing and all(_looks_like_datetime(v.strip()) for v in non_missing):
        values = [None if v.strip().lower() in _MISSING_TOKENS else v.strip() for v in raw]
        return Column(name, values, dtype=DType.DATETIME)
    parsed = [_try_parse_float(v) for v in non_missing]
    if non_missing and all(p is not None for p in parsed):
        values = [
            float("nan") if v.strip().lower() in _MISSING_TOKENS else float(v) for v in raw
        ]
        return Column(name, values, dtype=DType.NUMERIC)
    values = [None if v.strip().lower() in _MISSING_TOKENS else v for v in raw]
    return Column(name, values, dtype=DType.CATEGORICAL)


def read_csv(path: str | Path, dtypes: Dict[str, DType | str] | None = None) -> Table:
    """Read a CSV file into a :class:`Table`, inferring dtypes per column.

    ``dtypes`` can force specific columns to a dtype (e.g. treat an integer id
    column as categorical).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        return Table([])
    header, data_rows = rows[0], rows[1:]
    columns: List[Column] = []
    forced = {k: DType(v) for k, v in (dtypes or {}).items()}
    for j, name in enumerate(header):
        raw = [row[j] if j < len(row) else "" for row in data_rows]
        if name in forced:
            dtype = forced[name]
            if dtype in (DType.NUMERIC, DType.BOOLEAN):
                values = [
                    float("nan") if v.strip().lower() in _MISSING_TOKENS else float(v)
                    for v in raw
                ]
            elif dtype is DType.DATETIME:
                values = [None if v.strip().lower() in _MISSING_TOKENS else v.strip() for v in raw]
            else:
                values = [None if v.strip().lower() in _MISSING_TOKENS else v for v in raw]
            columns.append(Column(name, values, dtype=dtype))
        else:
            columns.append(_infer_column(name, raw))
    return Table(columns)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a :class:`Table` to a CSV file (datetimes rendered as ISO strings)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        columns = [table.column(name) for name in table.column_names]
        for i in range(table.num_rows):
            row = []
            for col in columns:
                v = col.values[i]
                if col.dtype is DType.DATETIME:
                    row.append(format_datetime(v))
                elif col.is_numeric_like:
                    row.append("" if np.isnan(v) else repr(float(v)))
                else:
                    row.append("" if v is None else str(v))
            writer.writerow(row)
