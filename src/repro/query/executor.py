"""Execute predicate-aware queries against the relevant table."""

from __future__ import annotations

from repro.dataframe.groupby import group_by_aggregate
from repro.dataframe.table import Table
from repro.query.engine import QueryEngine, resolve_engine
from repro.query.query import PredicateAwareQuery


def execute_query(
    query: PredicateAwareQuery, relevant_table: Table, engine: QueryEngine | None = None
) -> Table:
    """Run ``q(R)``: filter by the WHERE clause, then group-by aggregate.

    Returns a table with the query's key columns plus one numeric column named
    ``query.feature_name``.  An empty filter result yields an empty table (the
    join will then fill the feature with missing values for every training
    row).

    This is a thin compatibility wrapper over the shared
    :class:`~repro.query.engine.QueryEngine` bound to *relevant_table*: the
    query is lowered to a :class:`~repro.query.plan.QueryPlan` and executed
    by the engine's configured :class:`~repro.query.backends.ExecutionBackend`
    (the vectorized grouped kernels by default), with the group index,
    predicate masks and recent results cached across calls.  For the
    in-process backends the output is element-wise bit-for-bit identical to
    :func:`execute_query_naive` (see the accumulation-order contract in
    :mod:`repro.dataframe.grouped_kernels`); storage-owning backends such as
    sqlite are value-equal within 1e-9.
    """
    return resolve_engine(relevant_table, engine).execute(query)


def execute_query_naive(query: PredicateAwareQuery, relevant_table: Table) -> Table:
    """Reference implementation: filter, then group-by aggregate, per query.

    No caching and no sharing between queries.  Kept as the executable
    specification of query semantics: the equivalence suite asserts that the
    engine's fast path produces element-wise identical tables, and the
    engine micro-benchmark measures its speedup against this path.
    """
    predicate = query.build_predicate()
    mask = predicate.mask(relevant_table)
    filtered = relevant_table.filter(mask)
    if filtered.num_rows == 0:
        # Construct the empty projection directly instead of filtering the
        # full-length table with an all-False mask a second time.
        empty = relevant_table.select(list(query.keys) + [query.agg_attr]).head(0)
        return group_by_aggregate(
            empty, list(query.keys), query.agg_attr, query.agg_func, query.feature_name
        )
    return group_by_aggregate(
        filtered, list(query.keys), query.agg_attr, query.agg_func, query.feature_name
    )
