"""Table VI: single-table / one-to-one datasets (Covtype, Household).

Compares FeatAug against Featuretools, the ARDA and AutoFeature baselines and
Random on the two multi-class datasets, with the LR and RF downstream models
(the paper omits DeepFM here because it is binary-only).
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_FEATURES, BENCH_SCALE, bench_config, write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import run_method
from repro.experiments.scenarios import ONE_TO_ONE_DATASETS, PAPER_TABLE6

METHODS = ("FT", "FT+MI", "ARDA", "AutoFeat-MAB", "AutoFeat-DQN", "Random", "FeatAug")
MODELS = ("LR", "RF")


def _run_table6():
    config = bench_config()
    results = []
    for dataset_name in ONE_TO_ONE_DATASETS:
        bundle = load_dataset(dataset_name, scale=BENCH_SCALE, seed=0)
        for model_name in MODELS:
            for method in METHODS:
                results.append(
                    run_method(
                        bundle, method, model_name,
                        n_features=BENCH_FEATURES, config=config, seed=0,
                    )
                )
    return results


@pytest.mark.benchmark(group="table6")
def test_table6_one_to_one_performance(benchmark):
    results = benchmark.pedantic(_run_table6, rounds=1, iterations=1)
    text = (
        "Table VI -- single-table / one-to-one datasets (macro F1, higher is better)\n\n"
        + format_results_table(results, PAPER_TABLE6)
    )
    print("\n" + text)
    write_result("table6_one_to_one", text)

    # Shape check: FeatAug should be competitive with (not dominated by) the
    # one-to-one baselines -- in the paper it wins 4 of 6 scenarios.
    for dataset in ONE_TO_ONE_DATASETS:
        for model in MODELS:
            feataug = next(r for r in results if r.dataset == dataset and r.method == "FeatAug" and r.model == model)
            baseline = next(r for r in results if r.dataset == dataset and r.method == "FT" and r.model == model)
            assert feataug.metric >= baseline.metric - 0.15
