"""Experiment harness: the code behind every table and figure reproduction.

* :mod:`repro.experiments.runner` -- run one (dataset, method, model)
  scenario end to end and report the test metric.
* :mod:`repro.experiments.scaling` -- timing sweeps for the scalability
  figures (7, 8, 9).
* :mod:`repro.experiments.reporting` -- plain-text table formatting shared by
  the benchmark modules and EXPERIMENTS.md generation.
* :mod:`repro.experiments.scenarios` -- the scenario grids and the paper's
  reference numbers used for shape comparison.
"""

from repro.experiments.runner import MethodResult, run_method, METHOD_NAMES
from repro.experiments.reporting import format_results_table, format_timing_table
from repro.experiments.scaling import ScalingPoint, run_scaling_columns, run_scaling_rows_relevant, run_scaling_rows_train
from repro.experiments.scenarios import PAPER_TABLE3, PAPER_TABLE6, PAPER_TABLE7, PAPER_TABLE8

__all__ = [
    "MethodResult",
    "run_method",
    "METHOD_NAMES",
    "format_results_table",
    "format_timing_table",
    "ScalingPoint",
    "run_scaling_columns",
    "run_scaling_rows_relevant",
    "run_scaling_rows_train",
    "PAPER_TABLE3",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
]
