"""Figure 7: FeatAug runtime vs the number of columns in the relevant table.

The Student relevant table is widened by horizontal duplication (the paper's
"Student-Wide" construction) and the three timing components -- QTI time,
warm-up time and generate time -- are reported per width.
"""

from __future__ import annotations

import pytest

from _bench_utils import write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import format_timing_table
from repro.experiments.scaling import run_scaling_columns

COPIES = (1, 2, 4, 8)


def _run_fig7():
    bundle = load_dataset("student", scale=0.15, seed=0)
    return run_scaling_columns(bundle, COPIES, model_name="LR")


@pytest.mark.benchmark(group="fig7")
def test_fig7_scaling_with_relevant_table_width(benchmark):
    points = benchmark.pedantic(_run_fig7, rounds=1, iterations=1)
    text = (
        "Figure 7 -- FeatAug running time vs number of columns in R (Student, LR model)\n\n"
        + format_timing_table(points, x_label="n_columns")
    )
    print("\n" + text)
    write_result("fig7_scaling_columns", text)

    assert [p.size for p in points] == sorted(p.size for p in points)
    # Shape checks from the paper: the warm-up and generate components stay
    # roughly stable as the table widens (they depend on the iteration budget
    # and the training-table size, not on the width of R).
    warmups = [p.warmup_seconds for p in points]
    generates = [p.generate_seconds for p in points]
    assert max(warmups) <= 10 * max(min(warmups), 1e-3)
    assert max(generates) <= 10 * max(min(generates), 1e-3)
