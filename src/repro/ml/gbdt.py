"""Gradient boosted decision trees (the paper's "XGB" downstream model).

Implements second-order (Newton) boosting in the style of XGBoost: each round
fits a regression tree to the gradient/hessian statistics of the current
predictions, with the usual regularised leaf weight ``-G / (H + lambda)``.
Binary classification uses the logistic loss; regression uses squared error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator


@dataclass
class _BoostNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_BoostNode"] = None
    right: Optional["_BoostNode"] = None
    weight: float = 0.0
    is_leaf: bool = True


class _BoostTree:
    """A single regression tree fitted to gradient/hessian statistics."""

    def __init__(self, max_depth: int, min_child_weight: float, reg_lambda: float, gamma: float, max_thresholds: int):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.max_thresholds = max_thresholds
        self.gain_by_feature: dict = {}

    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "_BoostTree":
        self._root = self._grow(X, grad, hess, depth=0)
        return self

    def _leaf_weight(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(-grad.sum() / (hess.sum() + self.reg_lambda))

    def _grow(self, X, grad, hess, depth) -> _BoostNode:
        node = _BoostNode(weight=self._leaf_weight(grad, hess))
        if depth >= self.max_depth or X.shape[0] < 2:
            return node
        best = self._best_split(X, grad, hess)
        if best is None:
            return node
        feature, threshold, gain, mask = best
        node.is_leaf = False
        node.feature = feature
        node.threshold = threshold
        self.gain_by_feature[feature] = self.gain_by_feature.get(feature, 0.0) + gain
        node.left = self._grow(X[mask], grad[mask], hess[mask], depth + 1)
        node.right = self._grow(X[~mask], grad[~mask], hess[~mask], depth + 1)
        return node

    def _best_split(self, X, grad, hess):
        G, H = grad.sum(), hess.sum()
        parent_score = G * G / (H + self.reg_lambda)
        best_gain = self.gamma
        best = None
        for feature in range(X.shape[1]):
            column = X[:, feature]
            distinct = np.unique(column)
            if distinct.size < 2:
                continue
            if distinct.size - 1 > self.max_thresholds:
                thresholds = np.unique(
                    np.quantile(column, np.linspace(0, 1, self.max_thresholds + 2)[1:-1])
                )
            else:
                thresholds = (distinct[:-1] + distinct[1:]) / 2.0
            for threshold in thresholds:
                mask = column <= threshold
                h_left = hess[mask].sum()
                h_right = H - h_left
                if h_left < self.min_child_weight or h_right < self.min_child_weight:
                    continue
                g_left = grad[mask].sum()
                g_right = G - g_left
                gain = 0.5 * (
                    g_left**2 / (h_left + self.reg_lambda)
                    + g_right**2 / (h_right + self.reg_lambda)
                    - parent_score
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), float(gain), mask)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.float64)
        for i in range(X.shape[0]):
            node = self._root
            x = X[i]
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.weight
        return out


class _BaseGradientBoosting(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.3,
        max_depth: int = 3,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        max_thresholds: int = 16,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.subsample = subsample
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    def _gradients(self, y: np.ndarray, pred: np.ndarray):
        raise NotImplementedError

    def _base_score(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def fit(self, X, y) -> "_BaseGradientBoosting":
        X, y = self._validate_xy(X, y)
        rng = np.random.default_rng(self.random_state)
        self.base_score_ = self._base_score(y)
        pred = np.full(X.shape[0], self.base_score_, dtype=np.float64)
        self.trees_ = []
        gain_totals = np.zeros(X.shape[1], dtype=np.float64)
        for _ in range(self.n_estimators):
            grad, hess = self._gradients(y, pred)
            if self.subsample < 1.0:
                n_sub = max(2, int(self.subsample * X.shape[0]))
                idx = rng.choice(X.shape[0], size=n_sub, replace=False)
            else:
                idx = np.arange(X.shape[0])
            tree = _BoostTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                max_thresholds=self.max_thresholds,
            )
            tree.fit(X[idx], grad[idx], hess[idx])
            update = tree.predict(X)
            pred += self.learning_rate * update
            self.trees_.append(tree)
            for feature, gain in tree.gain_by_feature.items():
                gain_totals[feature] += gain
        total = gain_totals.sum()
        self.feature_importances_ = gain_totals / total if total > 0 else gain_totals
        return self

    def _raw_predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        pred = np.full(X.shape[0], self.base_score_, dtype=np.float64)
        for tree in self.trees_:
            pred += self.learning_rate * tree.predict(X)
        return pred


class GradientBoostingClassifier(_BaseGradientBoosting):
    """Binary classifier trained with the logistic loss (XGBoost-style)."""

    _estimator_type = "classifier"

    def _base_score(self, y: np.ndarray) -> float:
        p = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        return float(np.log(p / (1 - p)))

    def _gradients(self, y: np.ndarray, pred: np.ndarray):
        p = 1.0 / (1.0 + np.exp(-pred))
        grad = p - y
        hess = np.maximum(p * (1 - p), 1e-6)
        return grad, hess

    def fit(self, X, y) -> "GradientBoostingClassifier":
        y_arr = np.asarray(y, dtype=np.float64).ravel()
        self.classes_ = np.unique(y_arr)
        if self.classes_.shape[0] > 2:
            raise ValueError("GradientBoostingClassifier supports binary labels only")
        y_binary = (y_arr == self.classes_[-1]).astype(np.float64)
        self._positive_class = self.classes_[-1]
        self._negative_class = self.classes_[0]
        return super().fit(X, y_binary)

    def predict_proba(self, X) -> np.ndarray:
        p = 1.0 / (1.0 + np.exp(-self._raw_predict(X)))
        return np.column_stack([1 - p, p])

    def predict(self, X) -> np.ndarray:
        p = self.predict_proba(X)[:, 1]
        return np.where(p >= 0.5, self._positive_class, self._negative_class)


class GradientBoostingRegressor(_BaseGradientBoosting):
    """Regressor trained with squared-error loss."""

    _estimator_type = "regressor"

    def _base_score(self, y: np.ndarray) -> float:
        return float(y.mean())

    def _gradients(self, y: np.ndarray, pred: np.ndarray):
        grad = pred - y
        hess = np.ones_like(y)
        return grad, hess

    def predict(self, X) -> np.ndarray:
        return self._raw_predict(X)
