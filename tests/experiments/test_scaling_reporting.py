"""Unit tests for the scaling sweeps and the reporting helpers."""

import pytest

from repro.core.config import FeatAugConfig
from repro.experiments.reporting import format_results_table, format_timing_table, render_table
from repro.experiments.runner import MethodResult
from repro.experiments.scaling import (
    ScalingPoint,
    run_scaling_rows_relevant,
    subsample_relevant,
    subsample_train,
    widen_relevant_table,
)


@pytest.fixture(scope="module")
def tiny_config():
    return FeatAugConfig(
        n_templates=1,
        queries_per_template=1,
        warmup_iterations=4,
        warmup_top_k=2,
        search_iterations=2,
        template_proxy_iterations=3,
        max_template_depth=1,
        beam_width=1,
        tpe_startup_trials=2,
        seed=0,
    )


class TestDatasetTransforms:
    def test_widen_multiplies_columns(self, tiny_student):
        widened = widen_relevant_table(tiny_student, n_copies=3)
        base_cols = tiny_student.relevant.num_columns - len(tiny_student.keys)
        expected = len(tiny_student.keys) + 3 * base_cols
        assert widened.relevant.num_columns == expected

    def test_widen_preserves_rows(self, tiny_student):
        widened = widen_relevant_table(tiny_student, n_copies=2)
        assert widened.relevant.num_rows == tiny_student.relevant.num_rows

    def test_subsample_train_reduces_rows_and_filters_relevant(self, tiny_student):
        reduced = subsample_train(tiny_student, n_rows=30)
        assert reduced.train.num_rows == 30
        assert reduced.relevant.num_rows <= tiny_student.relevant.num_rows
        train_keys = set(reduced.train.column(reduced.keys[0]).values)
        relevant_keys = set(reduced.relevant.column(reduced.keys[0]).values)
        assert relevant_keys <= train_keys

    def test_subsample_relevant_keeps_train(self, tiny_student):
        reduced = subsample_relevant(tiny_student, n_rows=200)
        assert reduced.relevant.num_rows == 200
        assert reduced.train.num_rows == tiny_student.train.num_rows

    def test_subsample_never_exceeds_available(self, tiny_student):
        reduced = subsample_train(tiny_student, n_rows=10**6)
        assert reduced.train.num_rows == tiny_student.train.num_rows


class TestScalingSweep:
    def test_relevant_row_sweep_produces_points(self, tiny_student, tiny_config):
        sizes = [200, 400]
        points = run_scaling_rows_relevant(tiny_student, sizes, model_name="LR", config=tiny_config)
        assert [p.size for p in points] == sizes
        for point in points:
            assert point.total_seconds > 0
            assert point.qti_seconds >= 0
            assert point.generate_seconds > 0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.34567], ["x", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.3457" in text
        assert "-" in lines[-1]

    def test_format_results_with_paper_reference(self):
        results = [
            MethodResult("student", "FeatAug", "LR", 0.61, "auc", 1.0, 4),
            MethodResult("student", "FT", "LR", 0.55, "auc", 0.5, 4),
        ]
        reference = {("student", "FeatAug", "LR"): 0.5935}
        text = format_results_table(results, reference)
        assert "paper" in text
        assert "0.5935" in text
        assert "FeatAug" in text

    def test_format_timing_table(self):
        points = [ScalingPoint(size=100, qti_seconds=1.0, warmup_seconds=0.5, generate_seconds=0.25)]
        text = format_timing_table(points, x_label="rows")
        assert "rows" in text
        assert "1.7500" in text
