"""Executor-equivalence suite: the engine's fast paths vs the naive path.

``QueryEngine.execute`` / ``execute_batch`` must produce tables element-wise
**bit-for-bit identical** (same columns, dtypes and values, NaN included) to
``execute_query_naive`` for every query the search can generate: NaN keys,
empty filter results, categorical aggregation attributes and all 15 aggregate
functions -- in **both** aggregation kernel modes (the default vectorized
grouped kernels and the per-group ``kernels="python"`` loop).

Bit-identity across the vectorized path is possible because both it and the
Python reference honour the accumulation-order contract of
:mod:`repro.dataframe.aggregates` (strict left-to-right sums, the order
``np.bincount`` accumulates in), so no float tolerance is needed anywhere.
The engine is an optimisation layer only -- this suite is what locks that in.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe.aggregates import AGGREGATE_FUNCTIONS
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.engine import KERNEL_MODES, QueryEngine
from repro.query.executor import execute_query, execute_query_naive
from repro.query.query import PredicateAwareQuery

AGG_FUNCS = list(AGGREGATE_FUNCTIONS)
PREDICATE_DTYPES = {"cat": DType.CATEGORICAL, "num": DType.NUMERIC}

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def assert_tables_identical(actual: Table, expected: Table) -> None:
    """Same column names/order, same dtypes, element-wise equal (NaN == NaN)."""
    assert actual.column_names == expected.column_names
    for name in expected.column_names:
        left, right = actual.column(name), expected.column(name)
        assert left.dtype is right.dtype, f"{name}: {left.dtype} != {right.dtype}"
        assert left == right, f"column {name!r} differs"


@st.composite
def random_tables(draw):
    """Small tables with NaN-bearing numeric/categorical keys and attributes."""
    n = draw(st.integers(min_value=1, max_value=50))

    def rows(strategy):
        return draw(st.lists(strategy, min_size=n, max_size=n))

    return Table(
        [
            Column(
                "k_num",
                rows(st.one_of(st.none(), st.sampled_from([1.0, 2.0, 3.0, 4.0]))),
                dtype=DType.NUMERIC,
            ),
            Column(
                "k_cat",
                rows(st.sampled_from(["a", "b", "c", None])),
                dtype=DType.CATEGORICAL,
            ),
            Column("cat", rows(st.sampled_from(["x", "y", "z", None])), dtype=DType.CATEGORICAL),
            Column("num", rows(st.one_of(st.none(), finite_floats)), dtype=DType.NUMERIC),
            Column("val", rows(st.one_of(st.none(), finite_floats)), dtype=DType.NUMERIC),
        ]
    )


@st.composite
def random_queries(draw):
    keys = draw(st.sampled_from([("k_num",), ("k_cat",), ("k_num", "k_cat")]))
    agg_func = draw(st.sampled_from(AGG_FUNCS))
    # Include a categorical aggregation attribute: its integer coding depends
    # on the filter, which is exactly the subtle case the engine must honour.
    agg_attr = draw(st.sampled_from(["val", "num", "cat"]))
    predicates = {}
    if draw(st.booleans()):
        # "q" never occurs, so empty filter results are generated regularly.
        predicates["cat"] = draw(st.sampled_from(["x", "y", "q"]))
    if draw(st.booleans()):
        low = draw(st.one_of(st.none(), finite_floats))
        high = draw(st.one_of(st.none(), finite_floats))
        if low is not None and high is not None and low > high:
            low, high = high, low
        if low is not None or high is not None:
            predicates["num"] = (low, high)
    dtypes = {attr: PREDICATE_DTYPES[attr] for attr in predicates}
    return PredicateAwareQuery(agg_func, agg_attr, keys, predicates, dtypes)


@pytest.mark.parametrize("kernels", KERNEL_MODES)
class TestExecuteEquivalence:
    @given(table=random_tables(), query=random_queries())
    @settings(max_examples=60, deadline=None)
    def test_engine_matches_naive(self, kernels, table, query):
        engine = QueryEngine(table, kernels=kernels)
        expected = execute_query_naive(query, table)
        assert_tables_identical(engine.execute(query), expected)
        # Second run is served from the result cache and must be identical too.
        assert_tables_identical(engine.execute(query), expected)

    @given(table=random_tables(), queries=st.lists(random_queries(), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_naive(self, kernels, table, queries):
        engine = QueryEngine(table, kernels=kernels)
        results = engine.execute_batch(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert_tables_identical(result, execute_query_naive(query, table))


class TestCompatibilityWrapper:
    @given(table=random_tables(), query=random_queries())
    @settings(max_examples=30, deadline=None)
    def test_compatibility_wrapper_matches_naive(self, table, query):
        # execute_query goes through the shared (vectorized) engine.
        assert_tables_identical(
            execute_query(query, table), execute_query_naive(query, table)
        )


class TestKernelPathsAgree:
    """Both kernel modes produce bit-identical tables for the same queries."""

    @given(table=random_tables(), queries=st.lists(random_queries(), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_agrees_with_python_kernels(self, table, queries):
        vectorized = QueryEngine(table, kernels="vectorized")
        python = QueryEngine(table, kernels="python")
        for got, want in zip(
            vectorized.execute_batch(queries), python.execute_batch(queries)
        ):
            assert_tables_identical(got, want)
        assert python.stats.vectorized_aggregations == 0
        assert vectorized.stats.python_aggregations == 0

    def test_unknown_kernel_mode_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(Table([Column("k", [1.0])]), kernels="duckdb")


@pytest.mark.parametrize("kernels", KERNEL_MODES)
class TestAllAggregateFunctions:
    @pytest.fixture
    def table(self, rng):
        n = 120
        return Table(
            [
                Column(
                    "key",
                    [None if rng.random() < 0.15 else float(rng.integers(0, 6)) for _ in range(n)],
                    dtype=DType.NUMERIC,
                ),
                Column(
                    "cat",
                    [None if rng.random() < 0.15 else str(rng.choice(list("uvw"))) for _ in range(n)],
                    dtype=DType.CATEGORICAL,
                ),
                Column(
                    "val",
                    [float("nan") if rng.random() < 0.2 else float(rng.normal()) for _ in range(n)],
                    dtype=DType.NUMERIC,
                ),
            ]
        )

    @pytest.mark.parametrize("agg_func", AGG_FUNCS)
    def test_numeric_attribute(self, kernels, table, agg_func):
        engine = QueryEngine(table, kernels=kernels)
        query = PredicateAwareQuery(
            agg_func, "val", ("key",), {"cat": "u"}, {"cat": DType.CATEGORICAL}
        )
        assert_tables_identical(engine.execute(query), execute_query_naive(query, table))

    @pytest.mark.parametrize("agg_func", AGG_FUNCS)
    def test_categorical_attribute_under_filter(self, kernels, table, agg_func):
        """Filtered categorical coding (MODE returns codes!) must match."""
        engine = QueryEngine(table, kernels=kernels)
        query = PredicateAwareQuery(
            agg_func, "cat", ("key",), {"val": (-0.4, 2.0)}, {"val": DType.NUMERIC}
        )
        assert_tables_identical(engine.execute(query), execute_query_naive(query, table))

    @pytest.mark.parametrize("agg_func", AGG_FUNCS)
    def test_batch_of_all_functions_shares_one_plan(self, kernels, table, agg_func):
        engine = QueryEngine(table, kernels=kernels)
        queries = [
            PredicateAwareQuery(f, "val", ("key",), {"cat": "v"}, {"cat": DType.CATEGORICAL})
            for f in AGG_FUNCS
        ]
        results = engine.execute_batch(queries)
        target = AGG_FUNCS.index(agg_func)
        assert_tables_identical(
            results[target], execute_query_naive(queries[target], table)
        )


class TestEdgeCases:
    def test_nan_keys_form_their_own_group(self):
        table = Table(
            [
                Column("key", [1.0, float("nan"), 1.0, float("nan")], dtype=DType.NUMERIC),
                Column("val", [1.0, 2.0, 3.0, 4.0], dtype=DType.NUMERIC),
            ]
        )
        query = PredicateAwareQuery("SUM", "val", ("key",))
        result = QueryEngine(table).execute(query)
        assert_tables_identical(result, execute_query_naive(query, table))
        assert result.num_rows == 2
        assert np.isnan(result.column("key").values).sum() == 1

    @pytest.mark.parametrize("kernels", KERNEL_MODES)
    def test_empty_filter_result(self, kernels, logs_table):
        query = PredicateAwareQuery(
            "AVG",
            "pprice",
            ("cname",),
            {"department": "does-not-exist"},
            {"department": DType.CATEGORICAL},
        )
        engine = QueryEngine(logs_table, kernels=kernels)
        result = engine.execute(query)
        assert_tables_identical(result, execute_query_naive(query, logs_table))
        assert result.num_rows == 0
        assert result.column_names == ["cname", "feature"]
        assert engine.stats.empty_results == 1

    @pytest.mark.parametrize("kernels", KERNEL_MODES)
    def test_empty_table(self, kernels):
        table = Table(
            [
                Column("key", [], dtype=DType.NUMERIC),
                Column("val", [], dtype=DType.NUMERIC),
            ]
        )
        query = PredicateAwareQuery("COUNT", "val", ("key",))
        assert_tables_identical(
            QueryEngine(table, kernels=kernels).execute(query),
            execute_query_naive(query, table),
        )

    def test_datetime_and_multi_key(self, logs_table):
        from repro.dataframe.column import parse_datetime

        query = PredicateAwareQuery(
            "MAX",
            "pprice",
            ("cname", "pname"),
            {"timestamp": (parse_datetime("2023-05-01"), None)},
            {"timestamp": DType.DATETIME},
        )
        assert_tables_identical(
            QueryEngine(logs_table).execute(query), execute_query_naive(query, logs_table)
        )

    @pytest.mark.parametrize("kernels", KERNEL_MODES)
    def test_unknown_aggregate_raises(self, kernels, logs_table):
        query = PredicateAwareQuery("NOPE", "pprice", ("cname",))
        with pytest.raises(KeyError):
            QueryEngine(logs_table, kernels=kernels).execute(query)

    @pytest.mark.parametrize("kernels", KERNEL_MODES)
    def test_unknown_attribute_raises(self, kernels, logs_table):
        query = PredicateAwareQuery("SUM", "missing", ("cname",))
        with pytest.raises(KeyError):
            QueryEngine(logs_table, kernels=kernels).execute(query)

    def test_kernel_timing_lands_in_stats(self, logs_table):
        engine = QueryEngine(logs_table)
        engine.execute(PredicateAwareQuery("SUM", "pprice", ("cname",)))
        assert engine.stats.vectorized_aggregations == 1
        assert set(engine.stats.kernel_seconds) == {"SUM"}
        assert engine.stats.kernel_seconds["SUM"] >= 0.0
        delta = engine.stats.delta_since(engine.stats.as_dict())
        assert delta["kernel_seconds"]["SUM"] == 0.0
