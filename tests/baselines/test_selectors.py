"""Unit tests for the feature selectors used with the Featuretools baseline."""

import numpy as np
import pytest

from repro.baselines.selectors import (
    SELECTOR_NAMES,
    backward_selector,
    forward_selector,
    select_features,
)
from repro.core.evaluation import ModelEvaluator
from repro.dataframe.table import Table
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import train_valid_test_split


@pytest.fixture(scope="module")
def selection_problem():
    """Three features: two informative, one pure noise."""
    rng = np.random.default_rng(3)
    n = 300
    y = rng.integers(0, 2, size=n).astype(float)
    strong = y * 2 + rng.normal(0, 0.4, size=n)
    medium = y + rng.normal(0, 0.8, size=n)
    noise = rng.normal(size=n)
    X = np.column_stack([strong, medium, noise])
    names = ["strong", "medium", "noise"]

    # Put the candidate features into the table so the train/valid feature
    # matrices stay row-aligned with the evaluator after the shuffled split.
    table = Table.from_dict(
        {"base": rng.normal(size=n), "strong": strong, "medium": medium, "noise": noise, "label": y}
    )
    train, valid, _ = train_valid_test_split(table, (0.7, 0.3, 0.0), seed=0)
    evaluator = ModelEvaluator(
        train.select(["base", "label"]), valid.select(["base", "label"]),
        label="label", base_features=["base"],
        model=LogisticRegression(n_iter=100), task="binary",
    )
    X_train = np.column_stack([train.column(name).values for name in names])
    X_valid = np.column_stack([valid.column(name).values for name in names])
    return X, names, y, evaluator, X_train, X_valid


SCORE_SELECTORS = ["lr", "gbdt", "mi", "chi2", "gini"]


@pytest.mark.parametrize("selector", SCORE_SELECTORS)
class TestScoreSelectors:
    def test_selects_informative_over_noise(self, selector, selection_problem):
        X, names, y, *_ = selection_problem
        chosen = select_features(selector, names, k=2, task="binary", X_train=X, y_train=y)
        assert "noise" not in chosen

    def test_returns_k_features(self, selector, selection_problem):
        X, names, y, *_ = selection_problem
        assert len(select_features(selector, names, k=2, task="binary", X_train=X, y_train=y)) == 2


class TestSelectorDispatch:
    def test_unknown_selector_raises(self, selection_problem):
        X, names, y, *_ = selection_problem
        with pytest.raises(ValueError):
            select_features("magic", names, 1, "binary", X, y)

    def test_chi2_rejected_for_regression(self, selection_problem):
        X, names, y, *_ = selection_problem
        with pytest.raises(ValueError):
            select_features("chi2", names, 1, "regression", X, y)

    def test_gini_rejected_for_regression(self, selection_problem):
        X, names, y, *_ = selection_problem
        with pytest.raises(ValueError):
            select_features("gini", names, 1, "regression", X, y)

    def test_wrapper_selector_requires_evaluator(self, selection_problem):
        X, names, y, *_ = selection_problem
        with pytest.raises(ValueError):
            select_features("forward", names, 1, "binary", X, y)

    def test_selector_names_constant(self):
        assert set(SELECTOR_NAMES) == {"lr", "gbdt", "mi", "chi2", "gini", "forward", "backward"}

    def test_lr_selector_regression_task(self):
        rng = np.random.default_rng(5)
        y = rng.normal(size=200)
        X = np.column_stack([y * 3 + rng.normal(0, 0.1, 200), rng.normal(size=200)])
        chosen = select_features("lr", ["good", "bad"], 1, "regression", X, y)
        assert chosen == ["good"]

    def test_mi_selector_handles_nan(self):
        rng = np.random.default_rng(6)
        y = rng.integers(0, 2, size=100).astype(float)
        X = np.column_stack([y + rng.normal(0, 0.1, 100), rng.normal(size=100)])
        X[::5, 0] = np.nan
        chosen = select_features("mi", ["good", "bad"], 1, "binary", X, y)
        assert chosen == ["good"]


class TestWrapperSelectors:
    def test_forward_prefers_informative(self, selection_problem):
        _, names, _, evaluator, X_train, X_valid = selection_problem
        chosen = forward_selector(evaluator, X_train, X_valid, names, k=1)
        assert chosen and chosen[0] in ("strong", "medium")

    def test_forward_stops_when_no_improvement(self, selection_problem):
        _, names, _, evaluator, X_train, X_valid = selection_problem
        chosen = forward_selector(evaluator, X_train, X_valid, names, k=3)
        assert len(chosen) <= 3

    def test_backward_reduces_to_k(self, selection_problem):
        _, names, _, evaluator, X_train, X_valid = selection_problem
        chosen = backward_selector(evaluator, X_train, X_valid, names, k=2)
        assert len(chosen) == 2
