"""Random search optimiser (the paper's `Random` baseline search strategy)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.hpo.optimizer import Optimizer
from repro.hpo.space import SearchSpace


class RandomSearchOptimizer(Optimizer):
    """Uniform random sampling of the search space."""

    def __init__(self, space: SearchSpace, seed: int | None = None):
        super().__init__(space, seed)
        self._rng = np.random.default_rng(seed)

    def suggest(self) -> Dict[str, object]:
        return self.space.sample(self._rng)

    def suggest_batch(self, n: int) -> List[Dict[str, object]]:
        # Random search ignores the history, so a batch is just n independent
        # draws -- trivially identical to n sequential suggest() calls.
        if n < 1:
            raise ValueError(f"batch size must be >= 1, got {n}")
        return [self.space.sample(self._rng) for _ in range(n)]
