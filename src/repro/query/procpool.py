"""Process-pool sharded execution over shared-memory tables.

Thread sharding (:mod:`repro.query.sharding`) tops out near 1x on hosts where
the numpy kernels stay GIL-bound, so ``EngineConfig(executor="process")``
carries the same two shard strategies on a **process pool** instead:

* **Shared-memory tables** -- :class:`SharedTableStore` places each relevant
  table's columns into ``multiprocessing.shared_memory`` segments exactly
  once.  Numeric-like columns ship as their raw float64 buffers; categorical
  columns ship as int64 first-appearance codes (-1 = missing) plus a pickled
  label tuple.  Workers receive a picklable :class:`SharedTableHandle` and
  **map** the segments (zero copies), reconstructing an identical
  :class:`~repro.dataframe.table.Table` view per process.
* **Plan-level scheduling** (``shard_strategy="plan"``) -- the coordinator
  reuses the PR 4 unit splitter / LPT assigner and ships frozen
  :class:`~repro.query.plan.QueryPlan`\\ s to persistent workers.  Each worker
  owns a private single-worker :class:`~repro.query.engine.QueryEngine` over
  the shared table, so its mask / sort-order / group-index caches stay warm
  across batches.
* **Group-range sharding** (``shard_strategy="group"``) -- the coordinator
  computes the plan context (mask, group index, filtered grouping) exactly
  like thread mode, then fans contiguous group-code ranges out; every worker
  runs ``ExecutionBackend.range_context`` + ``run_plan_with_context`` on its
  range and the coordinator concatenates the per-range feature tables in
  code order.  Backends that own their storage (sqlite: ``plan_context`` is
  ``None``) degrade to coordinator-serial execution, matching thread mode.

Determinism contract: results are **bit-for-bit identical** to serial
execution for the in-process backends at any worker count (1e-9 for sqlite)
-- the shared-memory round-trip reproduces every column exactly, group
ranges never split a group, and categorical aggregation values are coded
over the *full* filtered row set (``agg_rows``) so MODE-style code-valued
kernels see serial's codes.  Coordinator-side statistics (result cache
accounting, batch / shard counters -- and for the group strategy the mask /
group-index counters too) book deterministically; counters bumped inside
worker processes (plan-strategy masking, worker-local sort misses) stay in
the workers by design and are invisible to the coordinator's
:class:`~repro.query.engine.EngineStats`.

Resource lifecycle: segments are created lazily on first dispatch, owned by
the coordinator's :class:`SharedTableStore`, and unlinked deterministically
by ``QueryEngine.close()`` / ``clear_caches()`` (scheduler ``release``), by
the engine's ``weakref.finalize`` when it is dropped without closing, and by
an ``atexit`` backstop -- no ``/dev/shm`` segment outlives the process even
on a crash-exit.  Worker attachment bypasses Python's resource tracker (the
coordinator owns the unlink), so no spurious double-unlink warnings.

The pool uses the ``forkserver`` start method when available (fork-safety:
engines are routinely driven from multi-threaded callers) with this module
preloaded, falling back to ``spawn``.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.plan import QueryPlan
from repro.query.sharding import ShardScheduler, resolve_auto_strategy, split_ranges

#: Every segment name starts with this prefix, so a leak check is one
#: ``ls /dev/shm | grep repro_shm`` away (wired into CI).
SHM_NAME_PREFIX = "repro_shm_"

_SEGMENT_COUNTER = itertools.count()


# ----------------------------------------------------------------------
# Shared-memory table transport
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedColumnSpec:
    """Picklable description of one column living in a shared segment."""

    name: str
    #: ``DType`` value string (picklable; reconstructed via ``DType(dtype)``).
    dtype: str
    #: True for float64-backed columns (numeric / datetime / boolean).
    numeric: bool
    shm_name: str
    length: int
    #: Categorical label per code, in first-appearance order (None for
    #: numeric-like columns; missing values are code -1, not a label).
    labels: Optional[Tuple[object, ...]] = None


@dataclass(frozen=True)
class SharedTableHandle:
    """Picklable handle workers map (never copy) into a Table view.

    ``token`` identifies the owning :class:`SharedTableStore`, so a worker
    process attaches and reconstructs each table at most once no matter how
    many tasks reference it.
    """

    token: str
    num_rows: int
    columns: Tuple[SharedColumnSpec, ...]


def _categorical_codes(values: np.ndarray) -> Tuple[np.ndarray, Tuple[object, ...]]:
    """First-appearance int64 codes (-1 = None) + labels for an object array."""
    labels: List[object] = []
    lookup: Dict[object, int] = {}
    codes = np.empty(len(values), dtype=np.int64)
    for i, value in enumerate(values):
        if value is None:
            codes[i] = -1
            continue
        code = lookup.get(value)
        if code is None:
            code = len(labels)
            lookup[value] = code
            labels.append(value)
        codes[i] = code
    return codes, tuple(labels)


class SharedTableStore:
    """Coordinator-owned shared-memory image of one table's columns.

    Creates one segment per column on construction and owns their lifetime:
    :meth:`close` (idempotent) closes and unlinks every segment.  Live stores
    are tracked in a module-level registry drained at interpreter exit, so
    segments cannot leak past the process even when no one closed the engine.
    """

    def __init__(self, table: Table):
        self._segments: List[shared_memory.SharedMemory] = []
        self._closed = False
        self._lock = threading.Lock()
        specs: List[SharedColumnSpec] = []
        try:
            for name in table.column_names:
                column = table.column(name)
                if column.is_numeric_like:
                    array = np.ascontiguousarray(column.values, dtype=np.float64)
                    labels = None
                else:
                    codes, labels = _categorical_codes(column.values)
                    array = codes
                segment = shared_memory.SharedMemory(
                    name=f"{SHM_NAME_PREFIX}{os.getpid()}_{next(_SEGMENT_COUNTER)}",
                    create=True,
                    size=max(1, array.nbytes),  # zero-length segments are illegal
                )
                if array.nbytes:
                    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                    view[:] = array
                self._segments.append(segment)
                specs.append(
                    SharedColumnSpec(
                        name=name,
                        dtype=column.dtype.value,
                        numeric=column.is_numeric_like,
                        shm_name=segment.name,
                        length=len(column),
                        labels=labels,
                    )
                )
        except BaseException:
            self.close()
            raise
        self.handle = SharedTableHandle(
            token=f"{os.getpid()}_{id(self)}",
            num_rows=table.num_rows,
            columns=tuple(specs),
        )
        _LIVE_STORES.add(self)

    @property
    def segment_names(self) -> List[str]:
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Close and unlink every segment; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        _LIVE_STORES.discard(self)


_LIVE_STORES: "weakref.WeakSet[SharedTableStore]" = weakref.WeakSet()


@atexit.register
def _close_live_stores() -> None:  # pragma: no cover - interpreter teardown
    for store in list(_LIVE_STORES):
        store.close()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a coordinator-owned segment without tracking it.

    The coordinator's store owns the unlink; letting the worker's resource
    tracker register the segment too would double-unlink at worker exit
    (noisy warnings on < 3.13).  ``track=False`` exists from 3.13; earlier
    interpreters suppress the tracker's ``register`` for the duration of the
    attach.  (Unregistering *after* the attach is wrong when the worker
    shares the coordinator's tracker process -- forkserver children do -- as
    it would strip the coordinator's own registration and make the eventual
    ``unlink`` trip a KeyError inside the tracker.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shm_register(name_, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                original_register(name_, rtype)

        resource_tracker.register = _skip_shm_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: token -> (Table view, attached segments).  Segments must stay referenced
#: for as long as the Table views their buffers.
_WORKER_TABLES: Dict[str, Tuple[Table, List[shared_memory.SharedMemory]]] = {}

#: (token, backend name) -> the worker's private engine (caches stay warm
#: across tasks and batches).
_WORKER_ENGINES: Dict[Tuple[str, str], object] = {}


def _table_from_handle(
    handle: SharedTableHandle,
) -> Tuple[Table, List[shared_memory.SharedMemory]]:
    """Reconstruct an exact Table view over the mapped segments (no copies
    for numeric-like columns; categorical labels are re-materialised from
    codes so values -- and therefore first-appearance coding -- are
    identical to the coordinator's column)."""
    segments: List[shared_memory.SharedMemory] = []
    columns: List[Column] = []
    for spec in handle.columns:
        segment = _attach_segment(spec.shm_name)
        segments.append(segment)
        if spec.numeric:
            values = np.ndarray((spec.length,), dtype=np.float64, buffer=segment.buf)
        else:
            codes = np.ndarray((spec.length,), dtype=np.int64, buffer=segment.buf)
            lookup = np.empty(len(spec.labels) + 1, dtype=object)
            lookup[: len(spec.labels)] = list(spec.labels)
            lookup[-1] = None  # code -1 indexes the trailing None
            values = lookup[codes]
        columns.append(Column(spec.name, values, dtype=DType(spec.dtype)))
    return Table(columns), segments


def _worker_engine(handle: SharedTableHandle, backend_name: str):
    """The worker's persistent engine for (shared table, backend)."""
    key = (handle.token, backend_name)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        entry = _WORKER_TABLES.get(handle.token)
        if entry is None:
            entry = _table_from_handle(handle)
            _WORKER_TABLES[handle.token] = entry
        # Imported lazily: engine.py imports this module for the scheduler,
        # and workers must not inherit the coordinator's env-driven executor
        # / worker-count defaults (a worker pool spawning worker pools).
        from repro.query.engine import EngineConfig, QueryEngine

        engine = QueryEngine(
            entry[0],
            config=EngineConfig(
                backend=backend_name, num_workers=1, executor="thread"
            ),
        )
        _WORKER_ENGINES[key] = engine
    return engine


def _run_plan_chunk(
    handle: SharedTableHandle,
    backend_name: str,
    plans: Sequence[QueryPlan],
    chunk: Sequence[Tuple[int, int, int, float]],
):
    """Plan-strategy worker task: run whole (spec ranges of) fused plans."""
    engine = _worker_engine(handle, backend_name)
    results = []
    start = time.perf_counter()
    for unit in chunk:
        i, lo, hi, _cost = unit
        plan = plans[i]
        if hi - lo != len(plan.aggregates):
            plan = plan.with_aggregates(plan.aggregates[lo:hi])
        results.append((unit, engine.backend.run_plan(plan)))
    return results, time.perf_counter() - start


def _run_group_range(
    handle: SharedTableHandle,
    backend_name: str,
    plan: QueryPlan,
    lo: int,
    hi: int,
):
    """Group-strategy worker task: one contiguous group-code range."""
    engine = _worker_engine(handle, backend_name)
    start = time.perf_counter()
    context = engine.backend.range_context(plan, lo, hi)
    tables = engine.backend.run_plan_with_context(plan, context)
    return tables, time.perf_counter() - start


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
_MP_CONTEXT = None
_MP_CONTEXT_LOCK = threading.Lock()


def _mp_context():
    """The start-method context shared by every process scheduler.

    ``forkserver`` when the platform offers it: plain ``fork`` from a
    multi-threaded coordinator (the engine's documented concurrency mode)
    can deadlock the child, and ``spawn`` pays a full interpreter + import
    per worker.  This module is preloaded into the fork server so each
    worker forks with numpy and the engine stack already imported.
    """
    global _MP_CONTEXT
    with _MP_CONTEXT_LOCK:
        if _MP_CONTEXT is None:
            if "forkserver" in get_all_start_methods():
                context = get_context("forkserver")
                try:
                    context.set_forkserver_preload(["repro.query.procpool"])
                except Exception:  # pragma: no cover - preload is an optimisation
                    pass
            else:  # pragma: no cover - non-POSIX fallback
                context = get_context("spawn")
            _MP_CONTEXT = context
    return _MP_CONTEXT


class ProcessShardScheduler(ShardScheduler):
    """:class:`ShardScheduler` whose shards run on a process pool.

    Reuses the thread scheduler's activation predicates, unit splitter and
    LPT assignment; overrides execution to ship plans (and, for the group
    strategy, group-code ranges) to persistent worker processes mapping the
    table from shared memory.  Holds its engine **weakly** so the engine's
    ``weakref.finalize`` can release the pool and segments without a
    liveness cycle.
    """

    def __init__(self, engine, num_workers: int, shard_strategy: str):
        super().__init__(engine, num_workers, shard_strategy)
        self._store: Optional[SharedTableStore] = None

    # The base class assigns ``self.engine = engine``; route it through a
    # weak reference (see class docstring).
    @property
    def engine(self):
        engine = self._engine_ref()
        if engine is None:
            raise ReferenceError("The engine of this scheduler has been collected")
        return engine

    @engine.setter
    def engine(self, value) -> None:
        self._engine_ref = weakref.ref(value)

    def group_range_active(self, n_groups: int) -> bool:
        """Never: group-range fan-out happens at the scheduler level (whole
        ranges per worker process), not inside the coordinator's backend."""
        return False

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def _pool_and_handle(self) -> Tuple[ProcessPoolExecutor, SharedTableHandle]:
        with self._lock:
            if self._store is None:
                self._store = SharedTableStore(self.engine.table)
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers, mp_context=_mp_context()
                )
            return self._pool, self._store.handle

    @property
    def store(self) -> Optional[SharedTableStore]:
        """The live shared-memory store (observability / leak tests)."""
        return self._store

    def release(self, wait: bool = True) -> None:
        """Shut the pool down and unlink the shared segments; idempotent.

        Never touches ``self.engine`` -- this is the engine finalizer's
        callback, at which point the engine is already gone.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            store, self._store = self._store, None
        if pool is not None:
            pool.shutdown(wait=wait)
        if store is not None:
            # POSIX keeps live worker mappings valid past the unlink, so
            # releasing with wait=False (finalizer path) is still safe.
            store.close()

    def clear(self) -> None:
        """Derived-state drop (``clear_caches``): same as :meth:`release`."""
        self.release(wait=True)

    def refresh(self, old_rows: int) -> None:
        """Re-publish the shared-memory image after a table append.

        Shared segments are fixed-size, so the appended rows cannot be
        written into the live store; instead the pool and store are released
        (old segments unlinked deterministically -- the PR 7 leak contract)
        and both are re-created lazily from the extended table on the next
        dispatch.  Worker processes restart with cold private engines, which
        is exactly the rebuild-from-scratch semantics the bit-identity bar
        requires of them.
        """
        if self.table_changed(old_rows):
            self.release(wait=True)

    def table_changed(self, old_rows: int) -> bool:
        """Whether the live store (if any) predates the append."""
        with self._lock:
            store = self._store
        if store is None:
            return False
        return store.handle.num_rows != self.engine.table.num_rows

    def close(self) -> None:
        self.release(wait=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_fused_plans(self, plans: Sequence[QueryPlan]) -> List[List[Table]]:
        plans = list(plans)
        if self.shard_strategy == "group":
            return [self._run_group_plan(plan) for plan in plans]
        if self.shard_strategy == "auto" and len(plans) == 1 and self.num_workers > 1:
            return [self._run_auto_plan(plans[0])]
        if not self.plan_parallel_active(len(plans)):
            return self._run_serial(plans)
        return self._run_plan_parallel(plans)

    def _run_auto_plan(self, plan: QueryPlan) -> List[Table]:
        """Auto strategy, single plan: cost it from the prefetched context.

        Wide fused batches never reach here (``run_fused_plans`` routes them
        to plan-level LPT scheduling); a lone plan is worth group-range
        fan-out only when its filtered-rows x aggregates cost clears
        ``AUTO_HEAVY_PLAN_COST``.  The context computed for the costing is
        reused by whichever path runs, so the choice adds no duplicate mask
        or group-index work.
        """
        engine = self.engine
        start = time.perf_counter()
        context = engine.backend.plan_context(plan)
        if resolve_auto_strategy(1, self._plan_cost(plan, context)) == "group":
            return self._finish_group_plan(plan, context, start)
        if context is None:
            result = engine.backend.run_plan(plan)
        else:
            result = engine.backend.run_plan_with_context(plan, context)
        engine.stats.add_split(
            "backend_seconds", engine.backend_name, time.perf_counter() - start
        )
        return result

    def _run_serial(self, plans: Sequence[QueryPlan]) -> List[List[Table]]:
        engine = self.engine
        results = []
        for plan in plans:
            start = time.perf_counter()
            results.append(engine.backend.run_plan(plan))
            engine.stats.add_split(
                "backend_seconds", engine.backend_name, time.perf_counter() - start
            )
        return results

    def _run_plan_parallel(self, plans: List[QueryPlan]) -> List[List[Table]]:
        """Plan strategy: LPT-assign spec units to persistent workers.

        Workers own the whole execution of their plans (masking, grouping,
        sorting included) against their private engines, so unlike thread
        mode no contexts are prefetched and the coordinator's mask / sort
        counters stay untouched; plan costs fall back to the full-table
        estimate, which keeps the unit split deterministic.
        """
        engine = self.engine
        stats = engine.stats
        units = self._split_units(plans, [None] * len(plans))
        assignments = self._assign_units(units)
        pool, handle = self._pool_and_handle()
        start = time.perf_counter()
        futures = [
            (slot, pool.submit(_run_plan_chunk, handle, engine.backend_name, plans, chunk))
            for slot, chunk in enumerate(assignments)
            if chunk
        ]
        chunk_results = [(slot, future.result()) for slot, future in futures]
        stats.bump(seconds_sharding=time.perf_counter() - start, sharded_batches=1)
        results: List[List[Optional[Table]]] = [
            [None] * len(plan.aggregates) for plan in plans
        ]
        for slot, (chunk, busy) in chunk_results:
            stats.add_split("backend_seconds", engine.backend_name, busy)
            stats.add_split("shard_seconds", f"w{slot}", busy)
            stats.bump(plan_shards=len(chunk))
            for (i, lo, _hi, _cost), tables in chunk:
                for offset, table in enumerate(tables):
                    results[i][lo + offset] = table
        return results  # type: ignore[return-value]

    def _run_group_plan(self, plan: QueryPlan) -> List[Table]:
        """Group strategy: coordinator-prepared context, ranges per worker.

        The context (mask, group index, filtered grouping) is computed on
        the coordinator exactly like thread mode -- booking the same mask /
        index / grouping statistics -- and workers re-derive only the
        range-restricted view via ``range_context``.  Backends without plan
        contexts (sqlite) run serially on the coordinator, like thread mode
        group sharding, which never engages for them either.
        """
        engine = self.engine
        start = time.perf_counter()
        context = engine.backend.plan_context(plan)
        return self._finish_group_plan(plan, context, start)

    def _finish_group_plan(self, plan: QueryPlan, context, start: float) -> List[Table]:
        """Fan *plan* out as group ranges from an already-computed context."""
        engine = self.engine
        stats = engine.stats
        backend = engine.backend
        if context is None:
            result = backend.run_plan(plan)
            stats.add_split(
                "backend_seconds", engine.backend_name, time.perf_counter() - start
            )
            return result
        n_groups = context["n_groups"]
        ranges = split_ranges(n_groups, self.num_workers)
        if n_groups <= 1 or self.num_workers <= 1 or len(ranges) <= 1:
            result = backend.run_plan_with_context(plan, context)
            stats.add_split(
                "backend_seconds", engine.backend_name, time.perf_counter() - start
            )
            return result
        pool, handle = self._pool_and_handle()
        fan_start = time.perf_counter()
        futures = [
            pool.submit(_run_group_range, handle, engine.backend_name, plan, lo, hi)
            for lo, hi in ranges
        ]
        parts = [future.result() for future in futures]
        stats.bump(
            seconds_sharding=time.perf_counter() - fan_start,
            group_shards=len(ranges),
        )
        for i, (_tables, busy) in enumerate(parts):
            stats.add_split("shard_seconds", f"g{i}", busy)
            stats.add_split("backend_seconds", engine.backend_name, busy)
        n_specs = len(plan.aggregates)
        return [
            _concat_feature_tables([tables[s] for tables, _busy in parts])
            for s in range(n_specs)
        ]


def _concat_feature_tables(pieces: Sequence[Table]) -> Table:
    """Row-concatenate per-range feature tables (identical schemas)."""
    if len(pieces) == 1:
        return pieces[0]
    first = pieces[0]
    columns = []
    for name in first.column_names:
        dtype = first.column(name).dtype
        arrays = [piece.column(name).values for piece in pieces]
        columns.append(Column(name, np.concatenate(arrays), dtype=dtype))
    return Table(columns)
