"""Configuration of the FeatAug framework.

Default values follow the paper's experimental setup (Section VII.A and
VII.D.1) but scaled down so the laptop-scale reproduction finishes quickly:
the paper warms up with 200 proxy-TPE iterations and transfers the top-50
queries before 40 real-model TPE iterations; the defaults here use 40 / 10 /
15.  Benchmarks that want the paper's numbers simply pass a different config.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FeatAugConfig:
    """All knobs of the FeatAug search, grouped by component."""

    # ------------------------------------------------------------------
    # Output size (Section VII.A.3: 8 templates x 5 queries = 40 features)
    # ------------------------------------------------------------------
    n_templates: int = 8
    queries_per_template: int = 5

    # ------------------------------------------------------------------
    # SQL Query Generation component (Section V)
    # ------------------------------------------------------------------
    #: number of TPE iterations on the low-cost proxy task (paper: 200).
    warmup_iterations: int = 40
    #: number of top proxy queries evaluated with the real model and used to
    #: warm-start the second TPE round (paper: 50).
    warmup_top_k: int = 10
    #: number of real-model TPE iterations after the warm start (paper: 40).
    search_iterations: int = 15
    #: drop the warm-up phase entirely ("NoWU" ablation).  The paper replaces
    #: the warm-up with an equivalent number of extra real iterations so the
    #: comparison is budget-fair; we do the same.
    use_warmup: bool = True
    #: search strategy inside a query pool: "tpe" (the paper's choice) or
    #: "random" (pure random search, the strategy behind the Random baseline).
    search_strategy: str = "tpe"
    #: TPE gamma (fraction of trials considered "good").
    tpe_gamma: float = 0.15
    #: random trials before TPE starts modelling.
    tpe_startup_trials: int = 8
    #: candidates scored per TPE suggestion.
    tpe_candidates: int = 24
    #: suggestions proposed (and evaluated through one fused engine batch)
    #: per ask/tell round of every pool search -- warm-up proxy round, real
    #: search round and the template-identification scoring runs.  1 keeps
    #: the classic sequential loop; larger batches let the engine share
    #: masks / sort orders across candidates and dedup repeated proposals
    #: before paying for execution.
    search_batch_size: int = 1

    # ------------------------------------------------------------------
    # Query Template Identification component (Section VI)
    # ------------------------------------------------------------------
    #: run the component at all ("NoQTI" ablation uses the user template).
    use_template_identification: bool = True
    #: beam width (top-beta nodes expanded per layer).
    beam_width: int = 2
    #: maximum WHERE-clause attribute-combination size explored.
    max_template_depth: int = 3
    #: Optimisation 1: score templates with the low-cost proxy instead of
    #: training the downstream model.
    use_low_cost_proxy: bool = True
    #: Optimisation 2: prune layer candidates with the performance predictor.
    use_template_predictor: bool = True
    #: proxy-TPE iterations used to score one template during identification.
    template_proxy_iterations: int = 12
    #: real-model TPE iterations used per template when Opt-1 is disabled.
    template_real_iterations: int = 6

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    #: execution backend of the shared query engine ("numpy", "python",
    #: "sqlite", or any name registered via
    #: :func:`repro.query.register_backend`); ``None`` uses the process
    #: default (``$REPRO_ENGINE_BACKEND`` or "numpy").
    engine_backend: str | None = None
    #: worker threads of the shared query engine (sharded parallel
    #: execution); ``None`` uses the process default
    #: (``$REPRO_ENGINE_WORKERS`` or 1 = serial).
    engine_workers: int | None = None
    #: shard strategy with ``engine_workers > 1``: "plan" partitions a
    #: batch's fused plans across workers, "group" splits one plan's
    #: group-code space into contiguous ranges, "auto" picks between the two
    #: per dispatch; ``None`` keeps the engine default
    #: (``$REPRO_ENGINE_SHARD_STRATEGY`` or "plan").
    engine_shard_strategy: str | None = None
    #: execution substrate of the sharded engine: "thread" runs shards on an
    #: in-process pool, "process" runs them on a process pool over
    #: shared-memory table columns (:mod:`repro.query.procpool`); ``None``
    #: uses the process default (``$REPRO_ENGINE_EXECUTOR`` or "thread").
    engine_executor: str | None = None
    #: global size-aware budget (bytes) shared by the engine's mask / result
    #: / sort-order caches; ``None`` = unbounded (entry-count limits only).
    engine_memory_budget: int | None = None
    #: delta-aware execution (:mod:`repro.query.delta`): on a relevant-table
    #: append the engine extends its cached masks / group indexes / additive
    #: results over the appended slice instead of flushing every cache;
    #: ``None`` uses the process default (``$REPRO_ENGINE_INCREMENTAL`` or
    #: off, which flushes on append -- always correct, never stale).
    engine_incremental: bool | None = None
    #: admission-control knobs of :class:`repro.query.QueryService` when the
    #: run serves concurrent callers: micro-batch coalescing window (ms),
    #: per-round query bound, admission-queue bound and default per-request
    #: deadline (ms).  ``None`` uses the process defaults
    #: (``$REPRO_SERVICE_WINDOW_MS`` / ``$REPRO_SERVICE_MAX_BATCH`` /
    #: ``$REPRO_SERVICE_QUEUE_DEPTH`` / ``$REPRO_SERVICE_TIMEOUT_MS``).
    service_window_ms: float | None = None
    service_max_batch: int | None = None
    service_queue_depth: int | None = None
    service_timeout_ms: float | None = None

    # ------------------------------------------------------------------
    # Proxy and evaluation
    # ------------------------------------------------------------------
    #: low-cost proxy: "mi", "spearman" or "lr" (Table VIII).
    proxy: str = "mi"
    #: fraction of the provided training table held out as the validation
    #: split used by the search (the paper's D_valid).
    validation_fraction: float = 0.25
    #: random seed for every stochastic component.
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.n_templates < 1:
            raise ValueError("n_templates must be >= 1")
        if self.queries_per_template < 1:
            raise ValueError("queries_per_template must be >= 1")
        if not 0 < self.validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        if self.beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if self.max_template_depth < 1:
            raise ValueError("max_template_depth must be >= 1")
        if self.proxy not in ("mi", "spearman", "lr"):
            raise ValueError(f"Unknown proxy {self.proxy!r}")
        if self.search_strategy not in ("tpe", "random"):
            raise ValueError(f"Unknown search strategy {self.search_strategy!r}")
        if self.search_batch_size < 1:
            raise ValueError("search_batch_size must be >= 1")
        # Delegate to the engine-config validation so the backend / worker /
        # strategy checks (and their error messages) have exactly one
        # implementation.  Always run it: even with every engine field left
        # ``None``, the resolved defaults read $REPRO_ENGINE_BACKEND /
        # $REPRO_ENGINE_WORKERS, and a garbage environment value should fail
        # here -- where the run is configured -- rather than at the first
        # query's engine lookup deep inside the search.
        self.engine_config().validate()
        # Same eager-failure rationale for the service knobs: resolution
        # reads $REPRO_SERVICE_*, so garbage values surface here.
        self.service_config().validate()

    def engine_config(self):
        """The :class:`repro.query.engine.EngineConfig` the run's shared
        query engine is built with.

        Every component that resolves the run's engine (the FeatAug facade,
        the scaling sweeps' cold-engine resets) must go through this, or a
        partially-mirrored config would target a different engine in the
        per-(table, config) registry.
        """
        from repro.query.engine import EngineConfig

        kwargs: dict = {
            "backend": self.engine_backend,
            "num_workers": self.engine_workers,
        }
        if self.engine_shard_strategy is not None:
            kwargs["shard_strategy"] = self.engine_shard_strategy
        kwargs["executor"] = self.engine_executor
        kwargs["memory_budget_bytes"] = self.engine_memory_budget
        kwargs["incremental"] = self.engine_incremental
        return EngineConfig(**kwargs)

    def service_config(self):
        """The :class:`repro.query.service.ServiceConfig` a
        :class:`~repro.query.service.QueryService` over the run's engine is
        built with (admission queue, coalescing window, deadlines)."""
        from repro.query.service import ServiceConfig

        return ServiceConfig(
            coalesce_window_ms=self.service_window_ms,
            max_batch=self.service_max_batch,
            max_queue=self.service_queue_depth,
            request_timeout_ms=self.service_timeout_ms,
        )

    def with_overrides(self, **kwargs) -> "FeatAugConfig":
        """Copy of this config with specific fields replaced."""
        data = {**self.__dict__, **kwargs}
        config = FeatAugConfig(**data)
        config.validate()
        return config
