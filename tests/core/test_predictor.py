"""Unit tests for the template performance predictor."""

import numpy as np
import pytest

from repro.core.predictor import TemplatePerformancePredictor
from repro.query.template import QueryTemplate

UNIVERSE = ["a", "b", "c", "d"]


def make_template(attrs):
    return QueryTemplate(["SUM"], ["x"], attrs, ["k"])


class TestTemplatePerformancePredictor:
    def test_predict_without_observations_is_zero(self):
        predictor = TemplatePerformancePredictor(UNIVERSE)
        assert predictor.predict(make_template(["a"])) == 0.0

    def test_predict_with_one_observation_returns_mean(self):
        predictor = TemplatePerformancePredictor(UNIVERSE)
        predictor.observe(make_template(["a"]), 0.7)
        assert predictor.predict(make_template(["b"])) == pytest.approx(0.7)

    def test_learns_additive_attribute_value(self):
        """Scores driven by attribute 'a' should rank templates containing 'a' higher."""
        predictor = TemplatePerformancePredictor(UNIVERSE, alpha=0.1)
        scores = {"a": 0.9, "b": 0.2, "c": 0.1, "d": 0.15}
        for attr, score in scores.items():
            predictor.observe(make_template([attr]), score)
        with_a = predictor.predict(make_template(["a", "b"]))
        without_a = predictor.predict(make_template(["c", "d"]))
        assert with_a > without_a

    def test_rank_orders_best_first(self):
        predictor = TemplatePerformancePredictor(UNIVERSE, alpha=0.1)
        for attr, score in [("a", 0.9), ("b", 0.5), ("c", 0.1)]:
            predictor.observe(make_template([attr]), score)
        candidates = [make_template(["a", "d"]), make_template(["c", "d"]), make_template(["b", "d"])]
        ranked = predictor.rank(candidates)
        assert ranked[0][0].predicate_attrs == ("a", "d")
        assert ranked[-1][0].predicate_attrs == ("c", "d")

    def test_n_observations_counter(self):
        predictor = TemplatePerformancePredictor(UNIVERSE)
        predictor.observe(make_template(["a"]), 0.5)
        predictor.observe(make_template(["b"]), 0.6)
        assert predictor.n_observations == 2

    def test_prediction_finite_for_unseen_combination(self):
        predictor = TemplatePerformancePredictor(UNIVERSE)
        for attr in UNIVERSE:
            predictor.observe(make_template([attr]), np.random.default_rng(0).random())
        assert np.isfinite(predictor.predict(make_template(UNIVERSE)))
