"""The FeatAug facade: the end-to-end workflow of Figure 2.

``FeatAug.augment`` takes the training table, the relevant table and either an
explicit query template (the WHERE-clause attributes) or a set of candidate
attributes.  It then:

1. splits the training table into a fit/validation pair used to score
   candidate features,
2. (optionally) runs Query Template Identification to pick the ``n_templates``
   most promising WHERE-clause attribute combinations,
3. runs the SQL Query Generation component on every selected template to
   produce ``queries_per_template`` queries each,
4. materialises every generated feature onto the *full* training table and
   returns a :class:`FeatAugResult` that can also re-apply the same queries to
   held-out tables (validation / test).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.config import FeatAugConfig
from repro.core.evaluation import ModelEvaluator
from repro.core.proxies import make_proxy
from repro.core.sql_generation import GeneratedQuery, SQLQueryGenerator
from repro.core.template_identification import QueryTemplateIdentifier, TemplateScore
from repro.dataframe.table import Table
from repro.ml.base import BaseEstimator
from repro.ml.model_zoo import make_model
from repro.ml.preprocessing import train_valid_test_split
from repro.query.augment import apply_queries, generated_feature_names
from repro.query.engine import engine_for
from repro.query.query import PredicateAwareQuery
from repro.query.template import QueryTemplate


@dataclass
class FeatAugResult:
    """Everything produced by one :meth:`FeatAug.augment` call."""

    queries: List[GeneratedQuery]
    templates: List[TemplateScore]
    augmented_table: Table
    feature_names: List[str]
    relevant_table: Table
    feature_prefix: str = "feataug"
    qti_seconds: float = 0.0
    warmup_seconds: float = 0.0
    generate_seconds: float = 0.0
    #: Cache/timing counters of the shared query engine at the end of the run,
    #: including the execution backend's name (``engine_stats["backend"]``)
    #: and the per-backend wall-clock split (``"backend_seconds"``).
    engine_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.qti_seconds + self.warmup_seconds + self.generate_seconds

    def apply(self, table: Table) -> Table:
        """Materialise the selected queries as features on another table.

        Execution resolves the query engine from ``self.relevant_table``:
        engines are bound to one table by identity, so applying against a
        different (held-out) relevant table can never reuse stale masks from
        the training-time search.
        """
        return apply_queries(
            table, self.relevant_table, [g.query for g in self.queries], prefix=self.feature_prefix
        )

    def sql(self) -> List[str]:
        """SQL text of every selected query (for inspection / logging)."""
        return [g.query.to_sql() for g in self.queries]


class FeatAug:
    """Predicate-aware automatic feature augmentation (the paper's framework)."""

    def __init__(
        self,
        label: str,
        keys: Sequence[str],
        task: str = "binary",
        model: BaseEstimator | str = "LR",
        config: FeatAugConfig | None = None,
    ):
        self.label = label
        self.keys = list(keys)
        self.task = task
        self.config = config or FeatAugConfig()
        self.config.validate()
        if isinstance(model, str):
            self.model = make_model(model, task)
        else:
            self.model = model

    # ------------------------------------------------------------------
    def _build_evaluator(
        self, train_table: Table, relevant_table: Table, engine=None
    ) -> ModelEvaluator:
        fit_fraction = 1.0 - self.config.validation_fraction
        fit_table, valid_table, _ = train_valid_test_split(
            train_table, ratios=(fit_fraction, self.config.validation_fraction, 0.0), seed=self.config.seed
        )
        base_features = [
            name for name in train_table.column_names if name != self.label and name not in self.keys
        ]
        return ModelEvaluator(
            fit_table,
            valid_table,
            label=self.label,
            base_features=base_features,
            model=self.model,
            task=self.task,
            relevant_table=relevant_table,
            engine=engine,
        )

    # ------------------------------------------------------------------
    def augment(
        self,
        train_table: Table,
        relevant_table: Table,
        candidate_attrs: Sequence[str] | None = None,
        predicate_attrs: Sequence[str] | None = None,
        agg_attrs: Sequence[str] | None = None,
        agg_funcs: Sequence[str] | None = None,
        n_features: int | None = None,
        feature_prefix: str = "feataug",
    ) -> FeatAugResult:
        """Run the full FeatAug workflow and return the augmented training table.

        Parameters
        ----------
        candidate_attrs:
            Attributes of the relevant table that *may* be useful in the WHERE
            clause; the Query Template Identification component picks the
            promising combinations.  Required unless ``predicate_attrs`` is
            given or template identification is disabled.
        predicate_attrs:
            An explicit WHERE-clause attribute combination.  When provided the
            template identification step is skipped (the user knows ``P``).
        agg_attrs:
            Attributes available for aggregation (defaults to every numeric
            column of the relevant table that is not a key).
        agg_funcs:
            Aggregation functions (defaults to the paper's 15-function set).
        n_features:
            Total number of features to generate; defaults to
            ``n_templates * queries_per_template``.
        """
        proxy = make_proxy(self.config.proxy)
        # One shared execution engine for the whole run: template search, SQL
        # generation and final materialisation all hit the same group index
        # and predicate-mask cache.  ``config.engine_backend`` selects the
        # execution backend, ``config.engine_workers`` /
        # ``config.engine_shard_strategy`` the sharded parallel execution
        # (None = process defaults).
        engine = engine_for(relevant_table, config=self.config.engine_config())
        # Engines are shared per table across runs; report this run's traffic
        # only, not the engine's lifetime counters.
        stats_baseline = engine.stats.as_dict()
        evaluator = self._build_evaluator(train_table, relevant_table, engine=engine)
        agg_attrs = list(agg_attrs) if agg_attrs else self._default_agg_attrs(relevant_table)

        templates: List[TemplateScore] = []
        qti_seconds = 0.0
        if predicate_attrs is not None or not self.config.use_template_identification:
            attrs = list(predicate_attrs) if predicate_attrs is not None else list(candidate_attrs or [])
            if not attrs:
                raise ValueError("Provide predicate_attrs or candidate_attrs")
            template = QueryTemplate(agg_funcs, agg_attrs, attrs, self.keys)
            templates = [TemplateScore(template=template, score=float("nan"), layer=len(attrs))]
        else:
            if not candidate_attrs:
                raise ValueError("candidate_attrs is required when template identification is enabled")
            identifier = QueryTemplateIdentifier(
                relevant_table,
                evaluator,
                agg_attrs=agg_attrs,
                keys=self.keys,
                agg_funcs=agg_funcs,
                config=self.config,
                proxy=proxy,
                engine=engine,
            )
            start = time.perf_counter()
            templates = identifier.identify(candidate_attrs, n_templates=self.config.n_templates)
            qti_seconds = time.perf_counter() - start

        n_features = n_features or self.config.n_templates * self.config.queries_per_template
        queries_per_template = max(1, n_features // max(len(templates), 1))

        generated: List[GeneratedQuery] = []
        warmup_seconds = 0.0
        generate_seconds = 0.0
        for i, record in enumerate(templates):
            generator = SQLQueryGenerator(
                record.template,
                relevant_table,
                evaluator,
                config=self.config,
                proxy=proxy,
                seed=self.config.seed + 101 * (i + 1),
                engine=engine,
            )
            generated.extend(generator.generate(n_queries=queries_per_template))
            warmup_seconds += generator.report.warmup_seconds
            generate_seconds += generator.report.generate_seconds

        generated = self._dedupe(generated)
        # Keep only queries that beat the no-augmentation baseline on the
        # search validation split (always keeping at least one); adding
        # features that the search itself scored below the baseline only
        # injects noise into the downstream model.
        baseline_loss = evaluator.evaluate_baseline().loss
        helpful = [g for g in generated if g.loss <= baseline_loss + 1e-9]
        if not helpful and generated:
            helpful = generated[:1]
        generated = helpful[:n_features]
        queries = [g.query for g in generated]
        augmented = apply_queries(
            train_table, relevant_table, queries, prefix=feature_prefix, engine=engine
        )
        return FeatAugResult(
            queries=generated,
            templates=templates,
            augmented_table=augmented,
            feature_names=generated_feature_names(queries, prefix=feature_prefix),
            relevant_table=relevant_table,
            feature_prefix=feature_prefix,
            qti_seconds=qti_seconds,
            warmup_seconds=warmup_seconds,
            generate_seconds=generate_seconds,
            engine_stats=engine.stats.delta_since(stats_baseline),
        )

    # ------------------------------------------------------------------
    def _default_agg_attrs(self, relevant_table: Table) -> List[str]:
        attrs = [
            name
            for name in relevant_table.column_names
            if name not in self.keys and relevant_table.column(name).is_numeric_like
        ]
        if not attrs:
            raise ValueError("No numeric attributes available for aggregation; pass agg_attrs explicitly")
        return attrs

    @staticmethod
    def _dedupe(generated: Sequence[GeneratedQuery]) -> List[GeneratedQuery]:
        seen = set()
        unique: List[GeneratedQuery] = []
        for g in sorted(generated, key=lambda g: g.loss):
            signature = g.query.signature()
            if signature in seen:
                continue
            seen.add(signature)
            unique.append(g)
        return unique
