"""Query pools: the search space of one query template (Definition 2, §V.A).

A :class:`QueryPool` inspects the relevant table once to collect the domain of
every predicate attribute (distinct values for categoricals, min/max for
numeric and datetime attributes) and builds the corresponding
:class:`~repro.hpo.space.SearchSpace`:

* one categorical dimension for the aggregation function,
* one categorical dimension for the aggregation attribute,
* per categorical predicate attribute: one categorical dimension over the
  attribute's values plus ``None`` ("no predicate"),
* per numeric/datetime predicate attribute: two optional real dimensions for
  the lower and upper bound,
* one categorical dimension selecting the (non-empty) subset of the foreign
  key used for GROUP BY.

The pool also converts HPO parameter dictionaries back into executable
:class:`~repro.query.query.PredicateAwareQuery` objects.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dataframe.column import DType
from repro.dataframe.table import Table
from repro.hpo.space import CategoricalDimension, RealDimension, SearchSpace
from repro.query.query import PredicateAwareQuery
from repro.query.template import QueryTemplate

#: Maximum number of distinct values kept per categorical predicate attribute;
#: rarer values are dropped from the search space to keep it tractable.
MAX_CATEGORICAL_VALUES = 30


def _non_empty_key_subsets(keys: Sequence[str]) -> List[Tuple[str, ...]]:
    subsets: List[Tuple[str, ...]] = []
    keys = list(keys)
    n = len(keys)
    for mask in range(1, 2**n):
        subsets.append(tuple(keys[i] for i in range(n) if mask & (1 << i)))
    # Prefer the full key first so the default grouping matches the paper.
    subsets.sort(key=lambda s: -len(s))
    return subsets


class QueryPool:
    """The pool of candidate predicate-aware queries for one template."""

    def __init__(self, template: QueryTemplate, relevant_table: Table, relation_name: str = "R"):
        template.validate_against(relevant_table)
        self.template = template
        self.relation_name = relation_name
        self._categorical_domains: Dict[str, List] = {}
        self._numeric_domains: Dict[str, Tuple[float, float]] = {}
        self._predicate_dtypes: Dict[str, DType] = {}
        self._collect_domains(relevant_table)
        self.space = self._build_space()

    # ------------------------------------------------------------------
    # Domain collection and space construction
    # ------------------------------------------------------------------
    def _collect_domains(self, table: Table) -> None:
        for attr in self.template.predicate_attrs:
            column = table.column(attr)
            self._predicate_dtypes[attr] = column.dtype
            if column.dtype is DType.CATEGORICAL:
                values = column.unique()
                if len(values) > MAX_CATEGORICAL_VALUES:
                    counts: Dict[object, int] = {}
                    for v in column.values:
                        if v is None:
                            continue
                        counts[v] = counts.get(v, 0) + 1
                    values = sorted(counts, key=lambda v: -counts[v])[:MAX_CATEGORICAL_VALUES]
                self._categorical_domains[attr] = values
            else:
                low, high = column.min(), column.max()
                if np.isnan(low) or np.isnan(high):
                    low, high = 0.0, 1.0
                if low == high:
                    high = low + 1.0
                self._numeric_domains[attr] = (float(low), float(high))

    def _build_space(self) -> SearchSpace:
        dimensions = [
            CategoricalDimension("agg_func", list(self.template.agg_funcs)),
            CategoricalDimension("agg_attr", list(self.template.agg_attrs)),
        ]
        for attr in self.template.predicate_attrs:
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                choices = [None] + list(self._categorical_domains[attr])
                dimensions.append(CategoricalDimension(f"pred::{attr}", choices))
            else:
                low, high = self._numeric_domains[attr]
                dimensions.append(
                    RealDimension(f"pred_low::{attr}", low, high, optional=True)
                )
                dimensions.append(
                    RealDimension(f"pred_high::{attr}", low, high, optional=True)
                )
        dimensions.append(
            CategoricalDimension("group_keys", _non_empty_key_subsets(self.template.keys))
        )
        return SearchSpace(dimensions)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def decode(self, params: Dict[str, object]) -> PredicateAwareQuery:
        """Convert an HPO parameter dictionary into an executable query.

        Numeric bounds are swapped when sampled in the wrong order so every
        decoded query is well-formed (``low <= high``).
        """
        predicates: Dict[str, object] = {}
        for attr in self.template.predicate_attrs:
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                predicates[attr] = params.get(f"pred::{attr}")
            else:
                low = params.get(f"pred_low::{attr}")
                high = params.get(f"pred_high::{attr}")
                if low is not None and high is not None and low > high:
                    low, high = high, low
                predicates[attr] = (low, high)
        group_keys = params.get("group_keys") or tuple(self.template.keys)
        return PredicateAwareQuery(
            agg_func=params["agg_func"],
            agg_attr=params["agg_attr"],
            keys=tuple(group_keys),
            predicates=predicates,
            predicate_dtypes=dict(self._predicate_dtypes),
            relation_name=self.relation_name,
        )

    def encode(self, query: PredicateAwareQuery) -> Dict[str, object]:
        """Convert a query back into an HPO parameter dictionary."""
        params: Dict[str, object] = {
            "agg_func": query.agg_func,
            "agg_attr": query.agg_attr,
            "group_keys": tuple(query.keys),
        }
        for attr in self.template.predicate_attrs:
            constraint = query.predicates.get(attr)
            if self._predicate_dtypes[attr] is DType.CATEGORICAL:
                params[f"pred::{attr}"] = constraint
            else:
                low, high = constraint if constraint is not None else (None, None)
                params[f"pred_low::{attr}"] = low
                params[f"pred_high::{attr}"] = high
        return params

    def sample_random(self, seed: int | None = None, n: int = 1) -> List[PredicateAwareQuery]:
        """Draw *n* random queries from the pool."""
        rng = np.random.default_rng(seed)
        return [self.decode(self.space.sample(rng)) for _ in range(n)]

    def domain_of(self, attr: str):
        """Domain of one predicate attribute (list of values or (low, high))."""
        if attr in self._categorical_domains:
            return list(self._categorical_domains[attr])
        if attr in self._numeric_domains:
            return self._numeric_domains[attr]
        raise KeyError(f"{attr!r} is not a predicate attribute of this pool")

    @property
    def predicate_dtypes(self) -> Dict[str, DType]:
        return dict(self._predicate_dtypes)
