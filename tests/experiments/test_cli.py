"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dataframe.io import read_csv, write_csv
from repro.datasets import load_dataset


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "student"])
        assert args.method == "FeatAug"
        assert args.model == "LR"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_engine_backend_threads_into_config(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(
            ["run", "--dataset", "student", "--engine-backend", "sqlite"]
        )
        assert _config_from_args(args).engine_backend == "sqlite"
        # Default: follow the process default (env var / numpy).
        args = build_parser().parse_args(["run", "--dataset", "student"])
        assert _config_from_args(args).engine_backend is None

    def test_unknown_engine_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "student", "--engine-backend", "duckdb"]
            )


class TestCommands:
    def test_datasets_command(self, capsys):
        exit_code = main(["datasets", "--scale", "0.08"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "tmall" in captured.out
        assert "one-to-many" in captured.out

    def test_run_command_base_method(self, capsys):
        exit_code = main(
            ["run", "--dataset", "student", "--method", "Base", "--model", "LR", "--scale", "0.1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "auc" in captured.out

    def test_augment_command_roundtrip(self, tmp_path, capsys):
        bundle = load_dataset("student", scale=0.1, seed=0)
        train_path = tmp_path / "train.csv"
        relevant_path = tmp_path / "logs.csv"
        output_path = tmp_path / "augmented.csv"
        write_csv(bundle.train, train_path)
        write_csv(bundle.relevant, relevant_path)

        exit_code = main(
            [
                "augment",
                "--train", str(train_path),
                "--relevant", str(relevant_path),
                "--label", "label",
                "--keys", "session_id",
                "--candidate-attrs", "event_type,level",
                "--agg-attrs", "hover_duration",
                "--n-features", "2",
                "--n-templates", "1",
                "--queries-per-template", "2",
                "--warmup-iterations", "5",
                "--search-iterations", "3",
                "--output", str(output_path),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "GROUP BY" in captured.out
        augmented = read_csv(output_path)
        assert augmented.num_rows == bundle.train.num_rows
        assert any(name.startswith("feataug_") for name in augmented.column_names)
