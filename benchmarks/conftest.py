"""Mark every benchmark module as ``slow``.

The full suite still runs them by default (tier-1 parity), but the fast
development loop deselects them with ``pytest -m "not slow"`` and the
benchmark smoke invocation runs them alone with ``pytest benchmarks -m slow``.
"""

from pathlib import Path

import pytest

_BENCH_DIR = str(Path(__file__).parent.resolve())


def pytest_collection_modifyitems(items):
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)
