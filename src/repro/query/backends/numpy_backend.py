"""The vectorized grouped-kernel backend (the default execution path).

This is the former ``kernels="vectorized"`` branch of the engine moved behind
the :class:`~repro.query.backends.base.ExecutionBackend` seam: every
aggregate is computed for all groups at once from the factorized group codes
(:mod:`repro.dataframe.grouped_kernels` -- ``np.bincount`` for the
accumulation family, one sort + segment boundaries for the order-statistics
and distribution families).  Results are **bit-for-bit identical** to the
per-group Python reference thanks to the accumulation-order contract in
:mod:`repro.dataframe.aggregates`.

All aggregate specs of a fused plan run in **one pass per value column**:
the plan scaffolding (shared with the python backend via
:class:`~repro.query.backends.base.GroupIndexBackend`) iterates the plan's
``specs_by_attr`` grouping, so every spec of one attribute aggregates off a
single :class:`GroupedAggregator` whose intermediates -- above all the
(code, value) lexsort order the order-statistics family shares -- are built
once.  The order itself is resolved through the engine's LRU **sort-order
cache** (:meth:`QueryEngine.sort_order`, keyed by ``QueryPlan.sort_key``),
so queries of one template reuse it *across* plans and batches; the plan
context carries the resolved orders so the scheduler's aggregate-spec-split
units of one heavy plan consult the engine cache exactly once per value
column regardless of the worker count.

Under ``EngineConfig(shard_strategy="group", num_workers=N)`` a single heavy
plan is split into contiguous group-code ranges
(:class:`~repro.query.sharding.GroupRangeShards`) and the kernels run once
per range on the engine's worker pool -- still bit-identical, because groups
never straddle a range boundary (see :mod:`repro.query.sharding`).  A
prefetched full order is sliced into per-range local orders instead of each
range re-sorting.  The per-plan row selections are memoised in the shared
plan context so all aggregates of one fused plan reuse them.
"""

from __future__ import annotations

import threading

from repro.dataframe.grouped_kernels import SORT_BASED_KERNELS, GroupedAggregator
from repro.query.backends.base import GroupIndexBackend, register_backend
from repro.query.plan import QueryPlan
from repro.query.sharding import GroupRangeShards, ShardedGroupedAggregator


@register_backend("numpy")
class NumpyBackend(GroupIndexBackend):
    """Vectorized grouped-aggregation kernels over the engine's group index."""

    def plan_context(self, plan: QueryPlan) -> dict:
        context = super().plan_context(plan)
        # The plan's resolved sort orders, memoised under one lock *per value
        # column* so the spec-split units sharing this context consult the
        # engine's sort-order cache exactly once per column (deterministic
        # sort_hits / sort_misses at any worker count) while lexsorts for
        # distinct columns still run concurrently.  MAD's deviation orders
        # get their own memo slot and engine key -- (sort key, "MEDIAN") --
        # but share the per-column lock (both orders belong to one column's
        # prepared state and are never resolved concurrently with profit).
        context["sort_orders"] = {}
        context["mad_orders"] = {}
        context["mad_sort_keys"] = {
            attr: plan.mad_sort_key(attr) for attr in context["sort_keys"]
        }
        context["sort_locks"] = {attr: threading.Lock() for attr in context["sort_keys"]}
        return context

    def range_context(self, plan: QueryPlan, lo: int, hi: int) -> dict:
        restricted = super().range_context(plan, lo, hi)
        # Fresh sort state: the per-range filtered rows have no engine-level
        # cache identity (every key in sort_keys is already None), so orders
        # are computed locally per range.
        restricted["sort_orders"] = {}
        restricted["mad_orders"] = {}
        restricted["mad_sort_keys"] = {attr: None for attr in restricted["sort_keys"]}
        restricted["sort_locks"] = {
            attr: threading.Lock() for attr in restricted["sort_keys"]
        }
        return restricted

    def prepare_attr(self, attr: str, context: dict):
        row_idx = context["row_idx"]
        # ``agg_rows`` (present in range-restricted contexts) keeps
        # categorical first-appearance coding over the *full* filtered row
        # set while the gather below restricts to this range's rows.
        values = self.engine.agg_values(attr, context.get("agg_rows", row_idx))
        if row_idx is not None:
            values = values[row_idx]
        order_cache = self._order_cache(attr, context, "sort_orders", "sort_keys")
        mad_order_cache = self._order_cache(attr, context, "mad_orders", "mad_sort_keys")
        sharder = self.engine.sharder
        if sharder.group_range_active(context["n_groups"]):
            shards = context.get("group_shards")
            if shards is None:
                shards = GroupRangeShards(
                    context["codes"], context["n_groups"], sharder.num_workers
                )
                context["group_shards"] = shards
            return ShardedGroupedAggregator(
                shards,
                values,
                sharder,
                order_cache=order_cache,
                mad_order_cache=mad_order_cache,
            )
        aggregator = GroupedAggregator(context["codes"], values, context["n_groups"])
        aggregator.order_cache = order_cache
        aggregator.mad_order_cache = mad_order_cache
        return aggregator

    def _order_cache(self, attr: str, context: dict, memo_slot: str, key_slot: str):
        """A memoising accessor onto the engine's shared sort-order cache.

        Returns ``order_cache(compute) -> order``: the plan-context memo
        (*memo_slot*) is checked first (idempotent across the plan's
        scheduling units), then the engine cache under the plan's *key_slot*
        key (reuse across plans and batches), and only then does *compute*
        -- the aggregator's own lexsort thunk -- run, timed into
        ``seconds_sorting`` by the engine.  The same accessor serves the
        main (value, code) order and MAD's deviation order; only the memo
        slot and cache key differ.
        """
        engine = self.engine
        sort_key = context[key_slot].get(attr)
        orders, lock = context[memo_slot], context["sort_locks"][attr]

        def order_cache(compute):
            with lock:
                order = orders.get(attr)
                if order is None:
                    order = engine.sort_order(sort_key, compute)
                    orders[attr] = order
                return order

        return order_cache

    def before_aggregate(self, spec, prepared) -> None:
        # Resolve the shared order outside the kernel timer, so
        # kernel_seconds / seconds_aggregating measure the kernel's own work
        # and the lexsort books exactly once, into seconds_sorting.  MAD also
        # resolves its second order (over |x - group median| deviations) so
        # both of its sorts book to the sorting phase, not the kernel.
        if spec.func in SORT_BASED_KERNELS:
            prepared.resolve_sort_order()
        if spec.func == "MAD":
            prepared.resolve_mad_order()

    def aggregate(self, spec, prepared):
        return prepared.compute(spec.func, spec.param)
