"""The versioned append path of :class:`Table` (delta-aware engine, PR 8).

``append_rows`` is the only sanctioned way to grow a relevant table in
place.  The pins here are the foundation the delta-refresh layer of
:mod:`repro.query.delta` rests on:

* every append bumps ``table.version`` (even an empty one -- the engine's
  cheap staleness probe must never miss a mutation),
* dtypes are preserved and enforced (a dtype flip would silently change
  aggregation semantics mid-stream),
* the old rows are prefix-stable: columns are **replaced**, never mutated,
  so previously shared Column objects (``select`` shares them) keep their
  pre-append data and cached views over the old arrays stay valid.
"""

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table


@pytest.fixture
def table() -> Table:
    return Table(
        [
            Column("user", ["a", "a", "b", None], dtype=DType.CATEGORICAL),
            Column("x", [1.0, float("nan"), 3.0, 4.0], dtype=DType.NUMERIC),
        ]
    )


class TestVersioning:
    def test_fresh_table_is_version_zero(self, table):
        assert table.version == 0

    def test_each_append_bumps_version(self, table):
        assert table.append_rows({"user": ["c"], "x": [5.0]}) == 1
        assert table.append_rows({"user": ["d"], "x": [6.0]}) == 2
        assert table.version == 2

    def test_empty_append_still_bumps_version(self, table):
        """An empty delta is a mutation event: version probes must see it
        (the refresh layer then no-ops on the zero-row delta)."""
        before = table.num_rows
        assert table.append_rows({"user": [], "x": []}) == 1
        assert table.num_rows == before
        assert table.version == 1


class TestAppendSemantics:
    def test_mapping_append_extends_rows_in_order(self, table):
        table.append_rows({"user": ["c", None], "x": [5.0, float("nan")]})
        assert table.num_rows == 6
        assert list(table.column("user").values) == ["a", "a", "b", None, "c", None]
        x = table.column("x").values
        assert x[4] == 5.0 and np.isnan(x[5])

    def test_row_dicts_append(self, table):
        table.append_rows([{"user": "c", "x": 5.0}, {"user": "d", "x": None}])
        assert table.num_rows == 6
        assert list(table.column("user").values)[-2:] == ["c", "d"]
        assert np.isnan(table.column("x").values[-1])

    def test_table_append_preserves_dtypes(self, table):
        delta = Table(
            [
                Column("user", ["z"], dtype=DType.CATEGORICAL),
                Column("x", [9.0], dtype=DType.NUMERIC),
            ]
        )
        table.append_rows(delta)
        assert table.schema() == {"user": DType.CATEGORICAL, "x": DType.NUMERIC}

    def test_new_categorical_labels_extend_first_appearance_coding(self, table):
        """New labels appear strictly after the old ones in unique()'s
        first-appearance order -- the prefix-stability the incremental
        group-index extension relies on."""
        before = table.column("user").unique()
        table.append_rows({"user": ["zz", "a", "yy"], "x": [1.0, 2.0, 3.0]})
        assert table.column("user").unique() == before + ["zz", "yy"]

    def test_append_equals_rebuild(self, table):
        appended = Table(
            [
                Column("user", ["a", "a", "b", None, "c"], dtype=DType.CATEGORICAL),
                Column("x", [1.0, float("nan"), 3.0, 4.0, 5.0], dtype=DType.NUMERIC),
            ]
        )
        table.append_rows({"user": ["c"], "x": [5.0]})
        assert list(table.column("user").values) == list(appended.column("user").values)
        assert np.array_equal(
            table.column("x").values, appended.column("x").values, equal_nan=True
        )


class TestPrefixStability:
    def test_append_replaces_columns_never_mutates_arrays(self, table):
        old_column = table.column("x")
        old_values = old_column.values
        table.append_rows({"user": ["c"], "x": [5.0]})
        assert table.column("x") is not old_column
        assert len(old_values) == 4  # the shared pre-append array is untouched

    def test_prior_selection_keeps_pre_append_data(self, table):
        view = table.select(["x"])
        table.append_rows({"user": ["c"], "x": [5.0]})
        assert view.num_rows == 4
        assert table.num_rows == 5


class TestValidation:
    def test_missing_column_rejected(self, table):
        with pytest.raises(ValueError, match="missing columns"):
            table.append_rows({"user": ["c"]})

    def test_unknown_column_rejected(self, table):
        with pytest.raises(ValueError, match="unknown columns"):
            table.append_rows({"user": ["c"], "x": [1.0], "bogus": [0]})

    def test_dtype_mismatch_rejected(self, table):
        delta = Table(
            [
                Column("user", ["z"], dtype=DType.CATEGORICAL),
                Column("x", ["not-numeric"], dtype=DType.CATEGORICAL),
            ]
        )
        with pytest.raises(ValueError, match="dtype mismatch"):
            table.append_rows(delta)

    def test_failed_append_changes_nothing(self, table):
        with pytest.raises(ValueError):
            table.append_rows({"user": ["c"]})
        assert table.version == 0
        assert table.num_rows == 4

    def test_append_to_empty_table_rejected(self):
        with pytest.raises(ValueError, match="no columns"):
            Table([]).append_rows({"x": [1.0]})

    def test_non_mapping_rows_rejected(self, table):
        with pytest.raises(TypeError):
            table.append_rows([("c", 5.0)])
