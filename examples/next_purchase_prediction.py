"""Next-purchase prediction on the synthetic Tmall dataset.

This is the scenario that motivates the paper's introduction: predict whether
a customer will make a repeat purchase using the customer profile plus a
behaviour log.  The script compares four augmentation strategies end to end --
no augmentation, Featuretools, Random and FeatAug -- with the same number of
generated features, and prints the SQL of the best FeatAug queries.

Run with:  python examples/next_purchase_prediction.py
"""

from __future__ import annotations

from repro.core.config import FeatAugConfig
from repro.datasets import load_dataset
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_method


def main() -> None:
    bundle = load_dataset("tmall", scale=0.3, seed=0)
    print(f"Dataset: {bundle.description}")
    print(f"  training table : {bundle.train.num_rows} rows")
    print(f"  behaviour log  : {bundle.relevant.num_rows} rows")
    print(f"  foreign key    : {bundle.keys}")

    config = FeatAugConfig(
        n_templates=3,
        queries_per_template=3,
        warmup_iterations=20,
        warmup_top_k=5,
        search_iterations=10,
        max_template_depth=2,
        seed=0,
    )

    rows = []
    for method in ("Base", "FT", "Random", "FeatAug"):
        result = run_method(bundle, method, "LR", n_features=9, config=config, seed=0)
        rows.append([method, result.metric_name, result.metric, result.n_features, result.seconds])

    print("\nNext-purchase prediction (LR downstream model, held-out test split):")
    print(render_table(["method", "metric", "score", "n_features", "seconds"], rows))

    # Show what FeatAug actually generated.
    from repro.core.feataug import FeatAug

    feataug = FeatAug(label=bundle.label_col, keys=bundle.keys, task=bundle.task, model="LR", config=config)
    result = feataug.augment(
        bundle.train, bundle.relevant,
        candidate_attrs=bundle.candidate_attrs, agg_attrs=bundle.agg_attrs, n_features=5,
    )
    print("\nTop predicate-aware queries selected by FeatAug:")
    for generated in result.queries[:3]:
        print(f"\n-- validation AUC {generated.metric:.3f}")
        print(generated.query.to_sql())


if __name__ == "__main__":
    main()
