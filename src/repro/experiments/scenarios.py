"""Scenario grids and the paper's reference numbers.

The reference dictionaries below hold the values reported in the paper's
tables so the benchmark harness can print paper-vs-measured side by side.
Absolute values are not expected to match (the datasets are synthetic and the
models are reimplementations); the *shape* -- FeatAug beating Featuretools and
Random in most scenarios -- is what the reproduction checks.
"""

from __future__ import annotations

#: Datasets with one-to-many relevant tables (Table III).
ONE_TO_MANY_DATASETS = ("tmall", "instacart", "student", "merchant")
#: Datasets with single-table / one-to-one relevant tables (Table VI).
ONE_TO_ONE_DATASETS = ("covtype", "household")
#: Downstream models used throughout the evaluation.
MODELS = ("LR", "XGB", "RF", "DeepFM")

#: Table III (subset): paper values for (dataset, method, model).
#: Metric is AUC for tmall/instacart/student and RMSE for merchant.
PAPER_TABLE3 = {
    ("tmall", "FT", "LR"): 0.5610,
    ("tmall", "Random", "LR"): 0.5630,
    ("tmall", "FeatAug", "LR"): 0.5749,
    ("tmall", "FT", "XGB"): 0.5568,
    ("tmall", "Random", "XGB"): 0.5848,
    ("tmall", "FeatAug", "XGB"): 0.5898,
    ("tmall", "FT", "RF"): 0.5000,
    ("tmall", "Random", "RF"): 0.5572,
    ("tmall", "FeatAug", "RF"): 0.5573,
    ("tmall", "FT", "DeepFM"): 0.5818,
    ("tmall", "Random", "DeepFM"): 0.5976,
    ("tmall", "FeatAug", "DeepFM"): 0.6226,
    ("instacart", "FT", "LR"): 0.5679,
    ("instacart", "Random", "LR"): 0.6021,
    ("instacart", "FeatAug", "LR"): 0.6369,
    ("instacart", "FT", "XGB"): 0.6349,
    ("instacart", "Random", "XGB"): 0.5830,
    ("instacart", "FeatAug", "XGB"): 0.6844,
    ("instacart", "FT", "RF"): 0.5601,
    ("instacart", "Random", "RF"): 0.6057,
    ("instacart", "FeatAug", "RF"): 0.6248,
    ("instacart", "FT", "DeepFM"): 0.7001,
    ("instacart", "Random", "DeepFM"): 0.6449,
    ("instacart", "FeatAug", "DeepFM"): 0.7364,
    ("student", "FT", "LR"): 0.5269,
    ("student", "Random", "LR"): 0.5620,
    ("student", "FeatAug", "LR"): 0.5935,
    ("student", "FT", "XGB"): 0.5730,
    ("student", "Random", "XGB"): 0.5575,
    ("student", "FeatAug", "XGB"): 0.5782,
    ("student", "FT", "RF"): 0.5205,
    ("student", "Random", "RF"): 0.5432,
    ("student", "FeatAug", "RF"): 0.5636,
    ("student", "FT", "DeepFM"): 0.5685,
    ("student", "Random", "DeepFM"): 0.6115,
    ("student", "FeatAug", "DeepFM"): 0.6438,
    ("merchant", "FT", "LR"): 3.9677,
    ("merchant", "Random", "LR"): 3.9804,
    ("merchant", "FeatAug", "LR"): 3.9538,
    ("merchant", "FT", "XGB"): 4.0752,
    ("merchant", "Random", "XGB"): 4.0161,
    ("merchant", "FeatAug", "XGB"): 4.0012,
    ("merchant", "FT", "RF"): 4.0160,
    ("merchant", "Random", "RF"): 4.0246,
    ("merchant", "FeatAug", "RF"): 4.0313,
    ("merchant", "FT", "DeepFM"): 3.9840,
    ("merchant", "Random", "DeepFM"): 3.9277,
    ("merchant", "FeatAug", "DeepFM"): 3.9277,
}

#: Table VI (subset): single-table / one-to-one datasets, F1 scores.
PAPER_TABLE6 = {
    ("covtype", "FT", "LR"): 0.1681,
    ("covtype", "ARDA", "LR"): 0.2275,
    ("covtype", "AutoFeat-MAB", "LR"): 0.2688,
    ("covtype", "AutoFeat-DQN", "LR"): 0.1930,
    ("covtype", "Random", "LR"): 0.2942,
    ("covtype", "FeatAug", "LR"): 0.3084,
    ("covtype", "FT", "XGB"): 0.7582,
    ("covtype", "ARDA", "XGB"): 0.6422,
    ("covtype", "Random", "XGB"): 0.7800,
    ("covtype", "FeatAug", "XGB"): 0.7769,
    ("covtype", "FT", "RF"): 0.6289,
    ("covtype", "ARDA", "RF"): 0.6573,
    ("covtype", "Random", "RF"): 0.7964,
    ("covtype", "FeatAug", "RF"): 0.8074,
    ("household", "FT", "LR"): 0.2378,
    ("household", "ARDA", "LR"): 0.2020,
    ("household", "Random", "LR"): 0.2112,
    ("household", "FeatAug", "LR"): 0.2159,
    ("household", "FT", "XGB"): 0.2718,
    ("household", "ARDA", "XGB"): 0.2735,
    ("household", "Random", "XGB"): 0.2666,
    ("household", "FeatAug", "XGB"): 0.3024,
    ("household", "FT", "RF"): 0.2444,
    ("household", "ARDA", "RF"): 0.2639,
    ("household", "Random", "RF"): 0.2616,
    ("household", "FeatAug", "RF"): 0.3003,
}

#: Table VII (ablation): FeatAug full vs NoWU vs NoQTI, LR model only (subset).
PAPER_TABLE7 = {
    ("tmall", "FeatAug-NoQTI", "LR"): 0.5257,
    ("tmall", "FeatAug-NoWU", "LR"): 0.5650,
    ("tmall", "FeatAug", "LR"): 0.5749,
    ("instacart", "FeatAug-NoQTI", "LR"): 0.5000,
    ("instacart", "FeatAug-NoWU", "LR"): 0.6354,
    ("instacart", "FeatAug", "LR"): 0.6369,
    ("student", "FeatAug-NoQTI", "LR"): 0.5000,
    ("student", "FeatAug-NoWU", "LR"): 0.5935,
    ("student", "FeatAug", "LR"): 0.5935,
    ("merchant", "FeatAug-NoQTI", "LR"): 3.9855,
    ("merchant", "FeatAug-NoWU", "LR"): 3.9549,
    ("merchant", "FeatAug", "LR"): 3.9538,
}

#: Table VIII (proxy ablation): values for the LR downstream model.
PAPER_TABLE8 = {
    ("tmall", "SC", "LR"): 0.5629,
    ("tmall", "MI", "LR"): 0.5749,
    ("tmall", "LRproxy", "LR"): 0.5537,
    ("instacart", "SC", "LR"): 0.6168,
    ("instacart", "MI", "LR"): 0.6369,
    ("instacart", "LRproxy", "LR"): 0.6476,
    ("student", "SC", "LR"): 0.5935,
    ("student", "MI", "LR"): 0.5935,
    ("student", "LRproxy", "LR"): 0.5846,
    ("merchant", "SC", "LR"): 3.9623,
    ("merchant", "MI", "LR"): 3.9538,
    ("merchant", "LRproxy", "LR"): 3.9756,
}
