"""Determinism contract of the batched ask/tell protocol.

Three guarantees back the batched search loop in ``core.sql_generation``:

* ``suggest_batch(1)`` driven sequentially is bit-identical to the classic
  ``suggest()``/``observe()`` loop for every optimiser;
* any batch size is deterministic under a fixed seed;
* Hyperband's ``batch_objective`` path reproduces the sequential rung
  trajectory exactly for deterministic objectives.
"""

import numpy as np
import pytest

from repro.hpo.hyperband import HyperbandOptimizer, successive_halving
from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.space import (
    CategoricalDimension,
    IntegerDimension,
    RealDimension,
    SearchSpace,
)
from repro.hpo.tpe import TPEOptimizer
from repro.hpo.trial import TrialHistory


@pytest.fixture
def space():
    return SearchSpace(
        [
            RealDimension("x", -10, 10),
            IntegerDimension("n", 0, 7),
            CategoricalDimension("c", ["a", "b", "target"]),
        ]
    )


def objective(params):
    bonus = -2.0 if params["c"] == "target" else 0.0
    return (params["x"] - 3) ** 2 + abs(params["n"] - 4) + bonus


def run_sequential(optimizer, n_iter):
    trajectory = []
    for _ in range(n_iter):
        params = optimizer.suggest()
        value = objective(params)
        optimizer.observe(params, value)
        trajectory.append((params, value))
    return trajectory


def run_batched(optimizer, n_iter, batch_size):
    trajectory = []
    done = 0
    while done < n_iter:
        n = min(batch_size, n_iter - done)
        batch = optimizer.suggest_batch(n)
        values = [objective(p) for p in batch]
        optimizer.observe_batch(batch, values)
        trajectory.extend(zip(batch, values))
        done += n
    return trajectory


class TestBatchOfOneBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_tpe_suggest_batch_one_replays_sequential(self, space, seed):
        sequential = TPEOptimizer(space, seed=seed, n_startup_trials=4, n_candidates=8)
        batched = TPEOptimizer(space, seed=seed, n_startup_trials=4, n_candidates=8)
        # Long enough to cross the startup boundary and exercise the
        # density-based proposals (plus exploration restarts).
        assert run_sequential(sequential, 30) == run_batched(batched, 30, batch_size=1)

    @pytest.mark.parametrize("seed", [0, 42])
    def test_random_search_suggest_batch_one_replays_sequential(self, space, seed):
        sequential = RandomSearchOptimizer(space, seed=seed)
        batched = RandomSearchOptimizer(space, seed=seed)
        assert run_sequential(sequential, 20) == run_batched(batched, 20, batch_size=1)


class TestBatchDeterminism:
    @pytest.mark.parametrize("batch_size", [2, 5, 16])
    def test_tpe_fixed_seed_is_reproducible(self, space, batch_size):
        first = run_batched(
            TPEOptimizer(space, seed=11, n_startup_trials=4, n_candidates=8), 24, batch_size
        )
        second = run_batched(
            TPEOptimizer(space, seed=11, n_startup_trials=4, n_candidates=8), 24, batch_size
        )
        assert first == second

    def test_random_search_fixed_seed_is_reproducible(self, space):
        first = run_batched(RandomSearchOptimizer(space, seed=5), 24, batch_size=6)
        second = run_batched(RandomSearchOptimizer(space, seed=5), 24, batch_size=6)
        assert first == second

    def test_batch_densities_fit_once(self, space):
        """A TPE batch past startup fits the good/bad split once, not per slot."""
        optimizer = TPEOptimizer(space, seed=3, n_startup_trials=2, n_candidates=4)
        run_batched(optimizer, 10, batch_size=5)
        calls = []
        original = optimizer._split_trials

        def counting_split():
            calls.append(1)
            return original()

        optimizer._split_trials = counting_split
        optimizer.suggest_batch(6)
        assert len(calls) == 1

    def test_suggest_batch_validates_size(self, space):
        optimizer = TPEOptimizer(space, seed=0)
        with pytest.raises(ValueError):
            optimizer.suggest_batch(0)
        with pytest.raises(ValueError):
            RandomSearchOptimizer(space, seed=0).suggest_batch(-1)

    def test_observe_batch_validates_lengths(self, space):
        optimizer = TPEOptimizer(space, seed=0)
        batch = optimizer.suggest_batch(3)
        with pytest.raises(ValueError):
            optimizer.observe_batch(batch, [1.0, 2.0])


class TestHyperbandBatchedRungs:
    @staticmethod
    def budgeted(params, budget):
        noise = (1.0 - budget) * 2.0
        return (params["x"] - 3) ** 2 + abs(params["n"] - 4) + noise

    def test_batched_rungs_match_sequential(self, space):
        def batch_objective(configs, budget):
            return [self.budgeted(p, budget) for p in configs]

        seq_history, batch_history = TrialHistory(), TrialHistory()
        seq = successive_halving(
            self.budgeted, space, n_configs=9, min_budget=0.1, eta=3, seed=0,
            history=seq_history,
        )
        bat = successive_halving(
            None, space, n_configs=9, min_budget=0.1, eta=3, seed=0,
            history=batch_history, batch_objective=batch_objective,
        )
        assert bat.best_params == seq.best_params
        assert bat.best_value == seq.best_value
        assert bat.rounds == seq.rounds
        assert [(t.params, t.value, t.metadata) for t in batch_history] == [
            (t.params, t.value, t.metadata) for t in seq_history
        ]

    def test_hyperband_batched_matches_sequential(self, space):
        def batch_objective(configs, budget):
            return [self.budgeted(p, budget) for p in configs]

        seq = HyperbandOptimizer(space, min_budget=0.2, eta=3, seed=0)
        seq_best = seq.minimize(self.budgeted, n_configs=6)
        bat = HyperbandOptimizer(space, min_budget=0.2, eta=3, seed=0)
        bat_best = bat.minimize(None, n_configs=6, batch_objective=batch_objective)
        assert (bat_best.params, bat_best.value) == (seq_best.params, seq_best.value)
        assert [(t.params, t.value) for t in bat.history] == [
            (t.params, t.value) for t in seq.history
        ]

    def test_batch_objective_length_mismatch_raises(self, space):
        with pytest.raises(ValueError, match="values"):
            successive_halving(
                None, space, n_configs=4, seed=0,
                batch_objective=lambda configs, budget: [0.0],
            )

    def test_non_finite_rung_values_never_promoted(self, space):
        """A rung batch returning NaN for some configs ranks them last."""
        def batch_objective(configs, budget):
            values = []
            for params in configs:
                if params["c"] == "target":
                    values.append(float("nan"))
                else:
                    values.append(self.budgeted(params, budget))
            return values

        history = TrialHistory()
        result = successive_halving(
            None, space, n_configs=9, min_budget=0.1, eta=3, seed=2,
            history=history, batch_objective=batch_objective,
        )
        assert np.isfinite(result.best_value) or all(
            not np.isfinite(t.value) for t in history
        )
