"""Figure 9: FeatAug runtime vs the number of rows in the relevant table R.

Sweeps the relevant-table size on Student and Merchant while keeping the
training table fixed, reporting the QTI / warm-up / generate time split.
"""

from __future__ import annotations

import pytest

from _bench_utils import write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import format_timing_table
from repro.experiments.scaling import run_scaling_rows_relevant

DATASETS = ("student", "merchant")
FRACTIONS = (0.25, 0.5, 1.0)


def _run_fig9():
    tables = {}
    for dataset_name in DATASETS:
        bundle = load_dataset(dataset_name, scale=0.25, seed=0)
        row_counts = [max(100, int(bundle.relevant.num_rows * f)) for f in FRACTIONS]
        tables[dataset_name] = run_scaling_rows_relevant(bundle, row_counts, model_name="LR")
    return tables


@pytest.mark.benchmark(group="fig9")
def test_fig9_scaling_with_relevant_rows(benchmark):
    tables = benchmark.pedantic(_run_fig9, rounds=1, iterations=1)
    sections = []
    for dataset_name, points in tables.items():
        sections.append(
            f"Figure 9 ({dataset_name}) -- running time vs rows in R (LR model)\n\n"
            + format_timing_table(points, x_label="n_relevant_rows")
        )
    text = "\n\n".join(sections)
    print("\n" + text)
    write_result("fig9_scaling_rows_relevant", text)

    for dataset_name, points in tables.items():
        sizes = [p.size for p in points]
        assert sizes == sorted(sizes)
        # The warm-up / QTI components execute queries against R, so total
        # time should grow (or at least not shrink drastically) with |R|.
        assert points[-1].total_seconds >= 0.3 * points[0].total_seconds
