"""AutoFeature: reinforcement-learning feature augmentation (Liu et al., ICDE 2022).

The paper compares against two AutoFeature variants on one-to-one datasets:

* **AutoFeature-MAB** -- a multi-armed bandit (UCB1) where each candidate
  feature is an arm; pulling an arm adds the feature, retrains the downstream
  model and uses the validation improvement as the reward.
* **AutoFeature-DQN** -- Q-learning with a linear function approximator over
  the (selected-feature-set, candidate) state encoding; at each step the
  highest-Q candidate is added with epsilon-greedy exploration and the
  observed improvement updates the weights.

Both variants stop after selecting ``k`` features and return the selected
feature names.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.evaluation import ModelEvaluator


class AutoFeatureMAB:
    """UCB1 bandit over candidate features, rewarded by validation improvement."""

    def __init__(self, n_iterations: int = 30, exploration: float = 0.5, seed: int = 0):
        self.n_iterations = n_iterations
        self.exploration = exploration
        self.seed = seed

    def select(
        self,
        evaluator: ModelEvaluator,
        feature_train: np.ndarray,
        feature_valid: np.ndarray,
        names: Sequence[str],
        k: int,
    ) -> List[str]:
        names = list(names)
        n_arms = len(names)
        if n_arms == 0:
            return []
        counts = np.zeros(n_arms)
        rewards = np.zeros(n_arms)
        selected: List[int] = []
        baseline_loss = evaluator.evaluate_matrix(None, None).loss
        current_loss = baseline_loss
        rng = np.random.default_rng(self.seed)

        n_iterations = max(self.n_iterations, n_arms)
        for t in range(1, n_iterations + 1):
            remaining = [i for i in range(n_arms) if i not in selected]
            if not remaining or len(selected) >= k:
                break
            ucb = np.full(n_arms, -np.inf)
            for i in remaining:
                if counts[i] == 0:
                    ucb[i] = np.inf + rng.random()  # force exploration of untried arms
                else:
                    ucb[i] = rewards[i] / counts[i] + self.exploration * np.sqrt(
                        np.log(t) / counts[i]
                    )
            arm = int(np.argmax(ucb))
            columns = selected + [arm]
            loss = evaluator.evaluate_matrix(
                feature_train[:, columns], feature_valid[:, columns]
            ).loss
            reward = current_loss - loss
            counts[arm] += 1
            rewards[arm] += reward
            if reward > 0:
                selected.append(arm)
                current_loss = loss
        if len(selected) < k:
            # Fill up with the best-estimated remaining arms.
            estimates = np.where(counts > 0, rewards / np.maximum(counts, 1), -np.inf)
            for i in np.argsort(-estimates):
                if i not in selected:
                    selected.append(int(i))
                if len(selected) >= k:
                    break
        return [names[i] for i in selected[:k]]


class AutoFeatureDQN:
    """Linear Q-learning over feature-addition actions."""

    def __init__(
        self,
        n_episodes: int = 3,
        epsilon: float = 0.2,
        learning_rate: float = 0.1,
        discount: float = 0.9,
        seed: int = 0,
    ):
        self.n_episodes = n_episodes
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self.discount = discount
        self.seed = seed

    def _state_action(self, selected: Sequence[int], action: int, n: int) -> np.ndarray:
        """Concatenate the one-hot selected-set encoding and the action one-hot."""
        vec = np.zeros(2 * n, dtype=np.float64)
        for i in selected:
            vec[i] = 1.0
        vec[n + action] = 1.0
        return vec

    def select(
        self,
        evaluator: ModelEvaluator,
        feature_train: np.ndarray,
        feature_valid: np.ndarray,
        names: Sequence[str],
        k: int,
    ) -> List[str]:
        names = list(names)
        n = len(names)
        if n == 0:
            return []
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(2 * n, dtype=np.float64)
        best_selection: List[int] = []
        best_loss = np.inf

        for _ in range(self.n_episodes):
            selected: List[int] = []
            current_loss = evaluator.evaluate_matrix(None, None).loss
            while len(selected) < k:
                remaining = [i for i in range(n) if i not in selected]
                if not remaining:
                    break
                if rng.random() < self.epsilon:
                    action = int(rng.choice(remaining))
                else:
                    q_values = [
                        float(weights @ self._state_action(selected, a, n)) for a in remaining
                    ]
                    action = remaining[int(np.argmax(q_values))]
                columns = selected + [action]
                loss = evaluator.evaluate_matrix(
                    feature_train[:, columns], feature_valid[:, columns]
                ).loss
                reward = current_loss - loss
                features = self._state_action(selected, action, n)
                next_q = 0.0
                next_remaining = [i for i in remaining if i != action]
                if next_remaining and len(columns) < k:
                    next_q = max(
                        float(weights @ self._state_action(columns, a, n)) for a in next_remaining
                    )
                target = reward + self.discount * next_q
                td_error = target - float(weights @ features)
                weights += self.learning_rate * td_error * features
                selected = columns
                current_loss = loss
            if current_loss < best_loss:
                best_loss = current_loss
                best_selection = list(selected)
        return [names[i] for i in best_selection[:k]]
