"""The admission-controlled query service (:mod:`repro.query.service`).

Covers the full service contract:

* **Config resolution** -- ``ServiceConfig(None)`` fields fall back to the
  ``$REPRO_SERVICE_*`` environment (empty = default, garbage fails eagerly
  at ``validate``), mirroring the ``$REPRO_ENGINE_*`` conventions, and
  ``FeatAugConfig`` / the CLI thread the knobs through.
* **Admission** -- bounded queue with deterministic
  ``ServiceOverloadedError`` backpressure (nothing enqueued on reject),
  ``ServiceClosedError`` after close, empty submissions resolving
  immediately.
* **Coalescing + dedup** -- concurrent requests fuse into one engine round
  and identical plans execute once, proven by the ``service_*`` counters,
  with results **bit-identical** to serial per-caller execution.
* **Failure paths** -- deadline expiry mid-queue, engine errors fanned out
  to every waiting future (never a hang), cancelled futures skipped,
  draining and non-draining ``close()`` with requests in flight.
* **Acceptance hammer** -- N threads through one service across both shard
  strategies x both executors x every backend, bit-identical to serial
  (1e-9 for sqlite) with counters proving cross-request fusion fired.

Manual mode (``auto_start=False`` + ``run_pending_round``) makes the
round-formation tests deterministic: requests queue until the test says
"dispatch", so window timing never decides what lands in a round.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import FeatAugConfig
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends import backend_names
from repro.query.engine import EngineConfig, QueryEngine
from repro.query.query import PredicateAwareQuery
from repro.query.service import (
    MAX_BATCH_ENV_VAR,
    QUEUE_ENV_VAR,
    TIMEOUT_ENV_VAR,
    WINDOW_ENV_VAR,
    DeadlineExpiredError,
    QueryService,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    default_max_batch,
    default_queue_depth,
    default_timeout_ms,
    default_window_ms,
)
from repro.query.sharding import EXECUTORS, SHARD_STRATEGIES

BACKENDS = tuple(backend_names())
EXACT_BACKENDS = ("numpy", "python")


def make_relevant(seed: int, n: int = 80) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        [
            Column("key", rng.integers(0, 7, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [str(v) for v in rng.choice(list("abcd"), size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


def make_batch():
    """Eight queries over three fused plans (shared atoms across plans)."""
    queries = []
    for value in "ab":
        for func in ("SUM", "AVG", "MEDIAN"):
            queries.append(
                PredicateAwareQuery(
                    func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
                )
            )
    queries.append(PredicateAwareQuery("COUNT", "val", ("key",)))
    queries.append(PredicateAwareQuery("MODE", "val", ("key",)))
    return queries


def assert_batch_equal(actual, expected, exact: bool):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.column_names == want.column_names
        for name in want.column_names:
            left, right = got.column(name), want.column(name)
            if exact or not left.is_numeric_like:
                assert left == right
            else:
                assert np.allclose(
                    left.values, right.values, rtol=0.0, atol=1e-9, equal_nan=True
                )


def make_engine(seed=0, **config_kwargs) -> QueryEngine:
    config_kwargs.setdefault("backend", "numpy")
    config_kwargs.setdefault("num_workers", 1)
    return QueryEngine(make_relevant(seed), config=EngineConfig(**config_kwargs))


def manual_service(engine, **config_kwargs) -> QueryService:
    return QueryService(engine, ServiceConfig(**config_kwargs), auto_start=False)


def service_delta(stats, baseline):
    return {
        k: v for k, v in stats.delta_since(baseline).items() if k.startswith("service")
    }


# ----------------------------------------------------------------------
# Config resolution
# ----------------------------------------------------------------------
class TestServiceConfig:
    def test_defaults(self, monkeypatch):
        for var in (WINDOW_ENV_VAR, MAX_BATCH_ENV_VAR, QUEUE_ENV_VAR, TIMEOUT_ENV_VAR):
            monkeypatch.delenv(var, raising=False)
        config = ServiceConfig()
        config.validate()
        assert config.window_ms == 2.0 == default_window_ms()
        assert config.batch_limit == 64 == default_max_batch()
        assert config.queue_limit == 1024 == default_queue_depth()
        assert config.timeout_ms is None and default_timeout_ms() is None

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(WINDOW_ENV_VAR, "7.5")
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "16")
        monkeypatch.setenv(QUEUE_ENV_VAR, "32")
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "250")
        config = ServiceConfig()
        config.validate()
        assert config.window_ms == 7.5
        assert config.batch_limit == 16
        assert config.queue_limit == 32
        assert config.timeout_ms == 250.0

    def test_explicit_values_beat_environment(self, monkeypatch):
        monkeypatch.setenv(WINDOW_ENV_VAR, "7.5")
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "16")
        config = ServiceConfig(coalesce_window_ms=0, max_batch=4)
        assert config.window_ms == 0.0
        assert config.batch_limit == 4

    def test_blank_environment_means_default(self, monkeypatch):
        monkeypatch.setenv(WINDOW_ENV_VAR, "   ")
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "")
        assert default_window_ms() == 2.0
        assert default_timeout_ms() is None

    @pytest.mark.parametrize(
        "var, value",
        [
            (WINDOW_ENV_VAR, "soon"),
            (WINDOW_ENV_VAR, "-1"),
            (MAX_BATCH_ENV_VAR, "many"),
            (MAX_BATCH_ENV_VAR, "0"),
            (QUEUE_ENV_VAR, "-3"),
            (TIMEOUT_ENV_VAR, "0"),
            (TIMEOUT_ENV_VAR, "fast"),
        ],
    )
    def test_garbage_environment_raises_naming_the_variable(
        self, monkeypatch, var, value
    ):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=var):
            ServiceConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coalesce_window_ms": -1.0},
            {"max_batch": 0},
            {"max_queue": 0},
            {"request_timeout_ms": 0.0},
            {"request_timeout_ms": -5.0},
        ],
    )
    def test_explicit_garbage_raises(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs).validate()

    def test_feataug_config_threads_the_knobs(self):
        config = FeatAugConfig(
            service_window_ms=3.0,
            service_max_batch=8,
            service_queue_depth=40,
            service_timeout_ms=100.0,
        )
        config.validate()
        service_config = config.service_config()
        assert service_config.window_ms == 3.0
        assert service_config.batch_limit == 8
        assert service_config.queue_limit == 40
        assert service_config.timeout_ms == 100.0

    def test_feataug_validate_rejects_garbage_service_knobs(self):
        with pytest.raises(ValueError):
            FeatAugConfig(service_max_batch=0).validate()
        with pytest.raises(ValueError, match=MAX_BATCH_ENV_VAR):
            # Env garbage fails at config validation, not at first request.
            import os

            os.environ[MAX_BATCH_ENV_VAR] = "banana"
            try:
                FeatAugConfig().validate()
            finally:
                del os.environ[MAX_BATCH_ENV_VAR]

    def test_cli_flags_reach_the_config(self):
        from repro.cli import build_parser, _config_from_args

        args = build_parser().parse_args(
            [
                "run", "--dataset", "student",
                "--service-window-ms", "4.5",
                "--service-max-batch", "32",
                "--service-queue-depth", "64",
                "--service-timeout-ms", "200",
            ]
        )
        config = _config_from_args(args)
        assert config.service_window_ms == 4.5
        assert config.service_max_batch == 32
        assert config.service_queue_depth == 64
        assert config.service_timeout_ms == 200.0
        assert config.service_config().batch_limit == 32

    def test_service_validates_config_at_construction(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            QueryService(engine, ServiceConfig(max_batch=0), auto_start=False)


# ----------------------------------------------------------------------
# Admission: bounded queue, backpressure, closed service
# ----------------------------------------------------------------------
class TestAdmission:
    def test_empty_submission_resolves_immediately(self):
        engine = make_engine()
        service = manual_service(engine)
        future = service.submit([])
        assert future.done() and future.result() == []
        assert engine.stats.service_admitted == 0
        service.close()

    def test_queue_full_rejects_deterministically(self):
        engine = make_engine()
        service = manual_service(engine, max_queue=10, max_batch=64)
        queries = make_batch()  # 8 queries
        baseline = engine.stats.as_dict()
        admitted = service.submit(queries)
        with pytest.raises(ServiceOverloadedError):
            service.submit(queries)  # 8 + 8 > 10
        delta = service_delta(engine.stats, baseline)
        assert delta["service_admitted"] == 8
        assert delta["service_rejected"] == 8
        assert service.queue_depth == 8  # nothing from the reject enqueued
        # A smaller submission still fits: rejection is per-submission
        # backpressure, not a latch.
        fits = service.submit(queries[:2])
        service.run_pending_round()
        assert len(admitted.result(timeout=5)) == 8
        assert len(fits.result(timeout=5)) == 2
        service.close()

    def test_overload_error_is_a_service_error(self):
        assert issubclass(ServiceOverloadedError, ServiceError)
        assert issubclass(ServiceClosedError, ServiceError)
        assert issubclass(DeadlineExpiredError, ServiceError)

    def test_submit_after_close_raises(self):
        engine = make_engine()
        service = manual_service(engine)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit(make_batch())

    def test_nonpositive_timeout_rejected_at_submit(self):
        engine = make_engine()
        service = manual_service(engine)
        with pytest.raises(ValueError):
            service.submit(make_batch(), timeout_ms=0)
        service.close()

    def test_queue_depth_gauge_tracks_admission_and_dispatch(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=64)
        assert engine.stats.service_queue_depth == 0
        service.submit(make_batch())
        assert engine.stats.service_queue_depth == 8 == service.queue_depth
        service.run_pending_round()
        assert engine.stats.service_queue_depth == 0 == service.queue_depth
        service.close()


# ----------------------------------------------------------------------
# Coalescing, dedup and round formation (deterministic manual mode)
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_two_requests_fuse_into_one_round_with_dedup(self):
        engine = make_engine()
        queries = make_batch()
        serial = engine.execute_batch(queries)
        service = manual_service(engine, max_batch=64)
        baseline = engine.stats.as_dict()
        first = service.submit(queries)
        second = service.submit(queries)
        assert service.run_pending_round() == 2
        assert_batch_equal(first.result(timeout=5), serial, exact=True)
        assert_batch_equal(second.result(timeout=5), serial, exact=True)
        delta = service_delta(engine.stats, baseline)
        assert delta["service_rounds"] == 1
        assert delta["service_admitted"] == 16
        # Every query of the shared round counts as coalesced...
        assert delta["service_coalesced"] == 16
        # ...and the second request's 8 identical plans were served by
        # fan-out of the first's executions.
        assert delta["service_deduped"] == 8
        assert delta["service_batch_occupancy"] == pytest.approx(16 / 64)
        service.close()

    def test_single_request_round_is_not_coalesced(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=64)
        baseline = engine.stats.as_dict()
        future = service.submit(make_batch())
        service.run_pending_round()
        future.result(timeout=5)
        delta = service_delta(engine.stats, baseline)
        assert delta["service_rounds"] == 1
        assert delta["service_coalesced"] == 0

    def test_dedup_executes_each_distinct_plan_once(self):
        """The engine-side proof: result misses count distinct plans only."""
        engine = make_engine()
        queries = make_batch()
        service = manual_service(engine, max_batch=64)
        baseline = engine.stats.as_dict()
        futures = [service.submit(queries) for _ in range(3)]
        service.run_pending_round()
        for future in futures:
            future.result(timeout=5)
        delta = engine.stats.delta_since(baseline)
        # 24 admitted queries, but the engine executed (and missed the
        # result cache for) only the 8 distinct ones.
        assert delta["service_deduped"] == 16
        assert delta["result_misses"] == 8
        assert delta["queries"] == 8
        service.close()

    def test_rounds_respect_max_batch_and_never_split_requests(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=10)
        first = service.submit(make_batch())  # 8 queries
        second = service.submit(make_batch()[:4])  # would overflow the round
        third = service.submit(make_batch()[:2])
        assert service.run_pending_round() == 1  # 8; +4 would exceed 10
        assert first.done() and not second.done()
        assert service.run_pending_round() == 2  # 4 + 2 = 6 <= 10
        assert second.done() and third.done()
        service.close()

    def test_oversized_request_rides_a_round_alone(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=4)
        queries = make_batch()  # 8 > max_batch
        future = service.submit(queries)
        assert service.run_pending_round() == 1
        assert len(future.result(timeout=5)) == 8
        assert engine.stats.service_batch_occupancy == pytest.approx(2.0)
        service.close()

    def test_run_pending_round_on_idle_service_is_a_noop(self):
        engine = make_engine()
        service = manual_service(engine)
        baseline = engine.stats.as_dict()
        assert service.run_pending_round() == 0
        assert service_delta(engine.stats, baseline)["service_rounds"] == 0
        service.close()


# ----------------------------------------------------------------------
# Failure paths: deadlines, engine errors, cancellation, close
# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_deadline_expiry_mid_queue(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=64)
        baseline = engine.stats.as_dict()
        doomed = service.submit(make_batch(), timeout_ms=1)
        alive = service.submit(make_batch()[:2])
        time.sleep(0.02)  # let the doomed request's deadline pass in-queue
        service.run_pending_round()
        with pytest.raises(DeadlineExpiredError):
            doomed.result(timeout=5)
        assert len(alive.result(timeout=5)) == 2  # the live request still ran
        delta = service_delta(engine.stats, baseline)
        assert delta["service_timeouts"] == 8
        service.close()

    def test_config_default_timeout_applies_to_every_request(self):
        engine = make_engine()
        service = manual_service(engine, request_timeout_ms=1.0)
        future = service.submit(make_batch())
        time.sleep(0.02)
        service.run_pending_round()
        with pytest.raises(DeadlineExpiredError):
            future.result(timeout=5)
        service.close()

    def test_engine_error_fans_out_to_every_waiting_future(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=64)

        boom = RuntimeError("backend exploded")

        def explode(plans):
            raise boom

        engine.execute_plans_deduped = explode
        first = service.submit(make_batch())
        second = service.submit(make_batch()[:3])
        service.run_pending_round()
        assert first.exception(timeout=5) is boom
        assert second.exception(timeout=5) is boom
        # The service survives an engine error: restore and keep serving.
        del engine.execute_plans_deduped
        healthy = service.submit(make_batch()[:2])
        service.run_pending_round()
        assert len(healthy.result(timeout=5)) == 2
        service.close()

    def test_cancelled_future_is_skipped_not_executed(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=64)
        cancelled = service.submit(make_batch())
        assert cancelled.cancel()
        alive = service.submit(make_batch()[:2])
        baseline = engine.stats.as_dict()
        service.run_pending_round()
        assert len(alive.result(timeout=5)) == 2
        # The cancelled request's 8 queries never reached the engine.
        assert engine.stats.delta_since(baseline)["queries"] == 2
        service.close()

    def test_draining_close_resolves_in_flight_requests(self):
        engine = make_engine()
        queries = make_batch()
        serial = engine.execute_batch(queries)
        service = manual_service(engine, max_batch=4)
        futures = [service.submit(queries) for _ in range(3)]
        service.close()  # drain=True runs the queued rounds inline
        for future in futures:
            assert_batch_equal(future.result(timeout=5), serial, exact=True)
        assert service.closed
        service.close()  # idempotent

    def test_non_draining_close_fails_queued_futures_deterministically(self):
        engine = make_engine()
        service = manual_service(engine)
        futures = [service.submit(make_batch()) for _ in range(3)]
        service.close(drain=False)
        for future in futures:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=5)
        assert engine.stats.service_queue_depth == 0
        assert service.queue_depth == 0


# ----------------------------------------------------------------------
# Dispatcher thread: window coalescing, concurrent callers, close
# ----------------------------------------------------------------------
class TestDispatcherThread:
    def test_window_coalesces_concurrent_submissions(self):
        engine = make_engine()
        queries = make_batch()
        serial = engine.execute_batch(queries)
        baseline = engine.stats.as_dict()
        n_callers = 4
        with QueryService(
            engine, ServiceConfig(coalesce_window_ms=200, max_batch=64)
        ) as service:
            futures = [service.submit(queries) for _ in range(n_callers)]
            results = [future.result(timeout=30) for future in futures]
        for result in results:
            assert_batch_equal(result, serial, exact=True)
        delta = service_delta(engine.stats, baseline)
        # All four submissions landed inside one window: one fused round,
        # every query coalesced, three requests' worth deduped.
        assert delta["service_rounds"] == 1
        assert delta["service_admitted"] == n_callers * 8
        assert delta["service_coalesced"] == n_callers * 8
        assert delta["service_deduped"] == (n_callers - 1) * 8

    def test_zero_window_still_correct(self):
        engine = make_engine()
        queries = make_batch()
        serial = engine.execute_batch(queries)
        with QueryService(
            engine, ServiceConfig(coalesce_window_ms=0, max_batch=64)
        ) as service:
            assert_batch_equal(service.execute(queries), serial, exact=True)

    def test_full_batch_dispatches_before_window_expires(self):
        engine = make_engine()
        queries = make_batch()
        # A window long enough that waiting it out would fail the result
        # timeout: dispatch must be triggered by max_batch, not the clock.
        with QueryService(
            engine, ServiceConfig(coalesce_window_ms=60_000, max_batch=8)
        ) as service:
            future = service.submit(queries)
            assert len(future.result(timeout=30)) == 8
            service.close(drain=False)

    def test_close_with_dispatcher_drains_by_default(self):
        engine = make_engine()
        queries = make_batch()
        serial = engine.execute_batch(queries)
        service = QueryService(
            engine, ServiceConfig(coalesce_window_ms=60_000, max_batch=64)
        )
        future = service.submit(queries[:3])
        service.close()  # wakes the window wait; the round still runs
        assert_batch_equal(future.result(timeout=5), serial[:3], exact=True)

    def test_close_without_drain_rejects_queued_work(self):
        engine = make_engine()
        service = QueryService(
            engine, ServiceConfig(coalesce_window_ms=60_000, max_batch=64)
        )
        future = service.submit(make_batch())
        service.close(drain=False)
        with pytest.raises(ServiceClosedError):
            future.result(timeout=5)


# ----------------------------------------------------------------------
# Stats contract
# ----------------------------------------------------------------------
class TestServiceStats:
    def test_counters_flow_through_delta_since_and_reset(self):
        engine = make_engine()
        service = manual_service(engine, max_batch=64)
        futures = [service.submit(make_batch()) for _ in range(2)]
        service.run_pending_round()
        for future in futures:
            future.result(timeout=5)
        baseline = engine.stats.as_dict()
        assert baseline["service_rounds"] == 1
        # A window that saw no service traffic reports zero deltas while
        # the gauges pass through as current values.
        delta = engine.stats.delta_since(baseline)
        assert delta["service_rounds"] == 0
        assert delta["service_admitted"] == 0
        assert delta["service_batch_occupancy"] == pytest.approx(16 / 64)
        engine.stats.reset()
        assert engine.stats.service_admitted == 0
        assert engine.stats.service_rounds == 0
        # Gauges survive reset (they describe current state, not a window).
        assert engine.stats.service_batch_occupancy == pytest.approx(16 / 64)
        service.close()

    def test_service_gauges_are_settable_counters_are_not(self):
        engine = make_engine()
        engine.stats.set_gauges(service_queue_depth=3, service_batch_occupancy=0.5)
        assert engine.stats.service_queue_depth == 3
        with pytest.raises(ValueError):
            engine.stats.set_gauges(service_admitted=1)


# ----------------------------------------------------------------------
# Acceptance: N concurrent callers, bit-identical to serial, fusion proven
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shard_strategy", SHARD_STRATEGIES)
@pytest.mark.parametrize("executor", EXECUTORS)
class TestConcurrentCallersBitIdentity:
    N_CALLERS = 4

    def test_hammer_matches_serial(self, backend, shard_strategy, executor):
        table = make_relevant(5)
        queries = make_batch()
        serial = QueryEngine(
            table, config=EngineConfig(backend=backend, num_workers=1)
        ).execute_batch(queries)
        engine = QueryEngine(
            table,
            config=EngineConfig(
                backend=backend,
                num_workers=2,
                shard_strategy=shard_strategy,
                executor=executor,
            ),
        )
        exact = backend in EXACT_BACKENDS
        try:
            baseline = engine.stats.as_dict()
            service = manual_service(engine, max_batch=256, coalesce_window_ms=0)
            barrier = threading.Barrier(self.N_CALLERS)
            futures = [None] * self.N_CALLERS
            errors = []

            def caller(slot):
                try:
                    barrier.wait(timeout=10)
                    futures[slot] = service.submit(queries)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=caller, args=(slot,))
                for slot in range(self.N_CALLERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors[0]
            # Every caller admitted before any round ran: the single drain
            # round is guaranteed to coalesce all of them.
            assert service.queue_depth == self.N_CALLERS * len(queries)
            service.close()  # draining close runs the fused round(s)
            for future in futures:
                assert_batch_equal(future.result(timeout=30), serial, exact)
            delta = service_delta(engine.stats, baseline)
            total = self.N_CALLERS * len(queries)
            assert delta["service_admitted"] == total
            # Cross-request fusion fired: one shared round, every query
            # coalesced, all but one caller's plans served by fan-out.
            assert delta["service_rounds"] == 1
            assert delta["service_coalesced"] == total
            assert delta["service_deduped"] == (self.N_CALLERS - 1) * len(queries)
        finally:
            engine.close()

    def test_live_dispatcher_hammer_matches_serial(
        self, backend, shard_strategy, executor
    ):
        """Same combos through the real dispatcher thread: callers block on
        ``execute`` concurrently; whatever rounds the window forms, results
        stay bit-identical and every admitted query is accounted for."""
        table = make_relevant(6)
        queries = make_batch()
        serial = QueryEngine(
            table, config=EngineConfig(backend=backend, num_workers=1)
        ).execute_batch(queries)
        engine = QueryEngine(
            table,
            config=EngineConfig(
                backend=backend,
                num_workers=2,
                shard_strategy=shard_strategy,
                executor=executor,
            ),
        )
        exact = backend in EXACT_BACKENDS
        try:
            baseline = engine.stats.as_dict()
            errors = []
            with QueryService(
                engine, ServiceConfig(coalesce_window_ms=20, max_batch=256)
            ) as service:

                def caller():
                    try:
                        for _ in range(2):
                            assert_batch_equal(service.execute(queries), serial, exact)
                    except Exception as exc:  # noqa: BLE001 - surfaced below
                        errors.append(exc)

                threads = [
                    threading.Thread(target=caller) for _ in range(self.N_CALLERS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert not errors, errors[0]
            delta = service_delta(engine.stats, baseline)
            assert delta["service_admitted"] == self.N_CALLERS * 2 * len(queries)
            assert delta["service_rounds"] >= 1
            assert delta["service_timeouts"] == 0
            assert delta["service_rejected"] == 0
        finally:
            engine.close()
