"""Unit tests for trial bookkeeping and the random-search optimiser."""

import numpy as np
import pytest

from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.space import CategoricalDimension, RealDimension, SearchSpace
from repro.hpo.trial import Trial, TrialHistory


@pytest.fixture
def space():
    return SearchSpace([RealDimension("x", -5, 5), CategoricalDimension("c", ["a", "b"])])


class TestTrialHistory:
    def test_add_and_len(self):
        history = TrialHistory()
        history.add(Trial({"x": 1}, 0.5))
        assert len(history) == 1

    def test_best_minimize(self):
        history = TrialHistory()
        for v in [0.9, 0.1, 0.5]:
            history.add(Trial({"x": v}, v))
        assert history.best().value == 0.1

    def test_best_maximize(self):
        history = TrialHistory()
        for v in [0.9, 0.1, 0.5]:
            history.add(Trial({"x": v}, v))
        assert history.best(minimize=False).value == 0.9

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            TrialHistory().best()

    def test_top_k_sorted(self):
        history = TrialHistory()
        for v in [3.0, 1.0, 2.0]:
            history.add(Trial({"x": v}, v))
        assert [t.value for t in history.top_k(2)] == [1.0, 2.0]

    def test_values(self):
        history = TrialHistory()
        history.add(Trial({}, 1.0))
        history.add(Trial({}, 2.0))
        assert history.values() == [1.0, 2.0]

    def test_iteration_and_indexing(self):
        history = TrialHistory()
        history.add(Trial({"x": 0}, 0.0))
        assert list(history)[0] is history[0]


class TestRandomSearch:
    def test_suggestions_are_valid(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        for _ in range(20):
            space.validate(optimizer.suggest())

    def test_minimize_finds_decent_point(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        best = optimizer.minimize(lambda p: p["x"] ** 2, n_iter=60)
        assert best.value < 1.0

    def test_observe_validates(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        with pytest.raises(ValueError):
            optimizer.observe({"x": 100.0, "c": "a"}, 1.0)

    def test_deterministic_with_seed(self, space):
        a = RandomSearchOptimizer(space, seed=3).suggest()
        b = RandomSearchOptimizer(space, seed=3).suggest()
        assert a == b

    def test_history_recorded(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        optimizer.minimize(lambda p: 0.0, n_iter=5)
        assert len(optimizer.history) == 5

    def test_warm_start_appends_history(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        optimizer.warm_start([Trial({"x": 0.0, "c": "a"}, 0.1)])
        assert len(optimizer.history) == 1


class TestNonFiniteHistory:
    """TrialHistory accessors must be safe against NaN/inf objective values."""

    @staticmethod
    def _history(values):
        history = TrialHistory()
        for i, value in enumerate(values):
            history.add(Trial({"i": i}, value))
        return history

    def test_best_ignores_nan(self):
        history = self._history([float("nan"), 0.5, 0.3, float("nan")])
        assert history.best(minimize=True).value == 0.3

    def test_best_ignores_negative_infinity(self):
        """A -inf 'loss' from a failed candidate must not win the search."""
        history = self._history([0.4, float("-inf"), 0.2])
        assert history.best(minimize=True).value == 0.2
        assert history.best(minimize=False).value == 0.4

    def test_best_all_non_finite_returns_first_trial(self):
        history = self._history([float("nan"), float("inf")])
        assert history.best(minimize=True).params == {"i": 0}

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            TrialHistory().best()

    def test_top_k_ranks_non_finite_last(self):
        history = self._history([float("nan"), 0.5, float("-inf"), 0.1, 0.3])
        top = history.top_k(5, minimize=True)
        assert [t.value for t in top[:3]] == [0.1, 0.3, 0.5]
        assert all(not np.isfinite(t.value) for t in top[3:])

    def test_top_k_failures_keep_insertion_order(self):
        history = self._history([float("nan"), float("inf"), 0.9, float("-inf")])
        tail = history.top_k(4, minimize=True)[1:]
        assert [t.params["i"] for t in tail] == [0, 1, 3]
