"""Figure 6: downstream performance as the number of query templates grows.

Sweeps the number of identified templates (1..8) on two datasets with the LR
and XGB downstream models, holding the per-template query budget fixed --
the series the paper plots in Figure 6.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SCALE, bench_config, write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_method

DATASETS = ("student", "merchant")
MODELS = ("LR", "XGB")
TEMPLATE_COUNTS = (1, 2, 4, 6, 8)


def _run_fig6():
    rows = []
    for dataset_name in DATASETS:
        bundle = load_dataset(dataset_name, scale=BENCH_SCALE, seed=0)
        for model_name in MODELS:
            for n_templates in TEMPLATE_COUNTS:
                # The sweep drives the batched ask/tell search loop end to
                # end: every pool search proposes 8 candidates per round and
                # evaluates them through one fused engine batch.
                config = bench_config(
                    n_templates=n_templates, queries_per_template=2, search_batch_size=8
                )
                result = run_method(
                    bundle, "FeatAug", model_name,
                    n_features=n_templates * 2, config=config, seed=0,
                )
                rows.append([dataset_name, model_name, n_templates, result.metric_name, result.metric])
    return rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_varying_number_of_templates(benchmark):
    rows = benchmark.pedantic(_run_fig6, rounds=1, iterations=1)
    text = (
        "Figure 6 -- metric vs number of query templates (queries per template fixed at 2)\n\n"
        + render_table(["dataset", "model", "n_templates", "metric", "measured"], rows)
    )
    print("\n" + text)
    write_result("fig6_num_templates", text)

    # Shape check: using several templates should not be worse than using a
    # single template in the majority of (dataset, model) series -- the paper
    # observes improvement or stability in most scenarios.
    improvements = 0
    series = 0
    for dataset_name in DATASETS:
        for model_name in MODELS:
            values = [r[4] for r in rows if r[0] == dataset_name and r[1] == model_name]
            metric_name = next(r[3] for r in rows if r[0] == dataset_name and r[1] == model_name)
            series += 1
            if metric_name == "rmse":
                improvements += min(values[1:]) <= values[0] + 1e-9
            else:
                improvements += max(values[1:]) >= values[0] - 1e-9
    assert improvements >= series // 2
