"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper at laptop
scale: the synthetic datasets are smaller and the search budgets lower than
the paper's AWS setup, so absolute numbers differ, but each module prints the
same rows / series the paper reports (plus the paper's value where available)
and writes them to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import FeatAugConfig
from repro.query.engine import engine_for

#: Where the printed tables are persisted so EXPERIMENTS.md can reference them.
RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset scale used by the experiment benchmarks (fraction of the default
#: synthetic entity count).
BENCH_SCALE = 0.25

#: Number of features generated per method in the comparison benchmarks (the
#: paper uses 40; we use 9 = 3 templates x 3 queries to keep runtimes small).
BENCH_FEATURES = 9


def bench_config(**overrides) -> FeatAugConfig:
    """The FeatAug configuration used across the benchmark suite."""
    config = FeatAugConfig(
        n_templates=3,
        queries_per_template=3,
        warmup_iterations=15,
        warmup_top_k=5,
        search_iterations=8,
        template_proxy_iterations=8,
        max_template_depth=2,
        beam_width=2,
        tpe_startup_trials=4,
        seed=0,
    )
    return config.with_overrides(**overrides) if overrides else config


def cold_engine(table) -> None:
    """Reset the shared query engine bound to *table*.

    Timing comparisons between pipeline variants must each start from a cold
    engine; otherwise later variants replay the earlier variants' query
    traffic straight out of the shared mask/result caches.
    """
    engine_for(table).reset()


def write_result(name: str, text: str, append: bool = False) -> None:
    """Persist a printed result table under benchmarks/results/.

    ``append`` adds a section to an existing file instead of replacing it --
    used when several benchmarks in one module contribute to one report.
    A previously appended section with the same title line (the first line of
    *text*) is replaced, so re-running one benchmark alone never duplicates
    its section in the committed results file.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    if append and path.exists():
        # Sections are blank-line-separated blocks; drop only the block whose
        # first line matches this section's title, keeping every other block.
        title = text.splitlines()[0]
        blocks = [
            block
            for block in path.read_text().split("\n\n")
            if block.strip() and block.strip().splitlines()[0] != title
        ]
        blocks.append(text.rstrip("\n"))
        path.write_text("\n\n".join(block.rstrip("\n") for block in blocks) + "\n")
    else:
        path.write_text(text + "\n")
