"""Table III: FeatAug vs Featuretools (+selectors) and Random on one-to-many datasets.

The paper evaluates 4 datasets x 4 downstream models x 10 methods.  To keep
the laptop-scale run short this benchmark covers every dataset with the LR
and XGB models and the most informative method subset (FT, FT+MI, FT+GBDT,
Random, FeatAug); DeepFM is exercised on the Student dataset.  The printed
table includes the paper's reported value where available so the shape
(FeatAug winning most scenarios) can be compared directly.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_FEATURES, BENCH_SCALE, bench_config, write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import run_method
from repro.experiments.scenarios import ONE_TO_MANY_DATASETS, PAPER_TABLE3

METHODS = ("FT", "FT+MI", "FT+GBDT", "Random", "FeatAug")
MODELS = ("LR", "XGB")


def _run_table3():
    config = bench_config()
    results = []
    for dataset_name in ONE_TO_MANY_DATASETS:
        bundle = load_dataset(dataset_name, scale=BENCH_SCALE, seed=0)
        for model_name in MODELS:
            for method in METHODS:
                results.append(
                    run_method(
                        bundle, method, model_name,
                        n_features=BENCH_FEATURES, config=config, seed=0,
                    )
                )
    # DeepFM on the Student dataset only (binary task, representative subset).
    student = load_dataset("student", scale=BENCH_SCALE, seed=0)
    for method in ("FT", "Random", "FeatAug"):
        results.append(
            run_method(student, method, "DeepFM", n_features=BENCH_FEATURES, config=config, seed=0)
        )
    return results


@pytest.mark.benchmark(group="table3")
def test_table3_overall_performance(benchmark):
    results = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    text = (
        "Table III -- overall performance on one-to-many datasets\n"
        "(AUC higher is better for tmall/instacart/student; RMSE lower is better for merchant)\n\n"
        + format_results_table(results, PAPER_TABLE3)
    )
    print("\n" + text)
    write_result("table3_overall", text)

    # Shape check: FeatAug should beat Featuretools in the majority of the
    # classification scenarios, mirroring the paper's headline claim.
    wins, comparisons = 0, 0
    for dataset in ONE_TO_MANY_DATASETS:
        for model in MODELS:
            feataug = next(r for r in results if r.dataset == dataset and r.method == "FeatAug" and r.model == model)
            featuretools = next(r for r in results if r.dataset == dataset and r.method == "FT" and r.model == model)
            comparisons += 1
            if feataug.metric_name == "rmse":
                wins += feataug.metric <= featuretools.metric + 1e-9
            else:
                wins += feataug.metric >= featuretools.metric - 1e-9
    assert wins >= comparisons // 2
