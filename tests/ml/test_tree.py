"""Unit tests for decision trees."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score, rmse
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    return X, y


class TestDecisionTreeClassifier:
    def test_fits_xor(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_depth_one_cannot_fit_xor(self):
        X, y = xor_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert accuracy_score(y, stump.predict(X)) < 0.7

    def test_predict_proba_shape_and_range(self):
        X, y = xor_data(100)
        proba = DecisionTreeClassifier(max_depth=3).fit(X, y).predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.all((proba >= 0) & (proba <= 1))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_leaf_on_constant_labels(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.ones(20)
        model = DecisionTreeClassifier().fit(X, y)
        assert np.all(model.predict(X) == 1.0)

    def test_feature_importances_sum_to_one(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_min_samples_leaf_respected(self):
        X, y = xor_data(60)
        model = DecisionTreeClassifier(max_depth=8, min_samples_leaf=20).fit(X, y)

        def count_leaves(node):
            if node.is_leaf:
                return 1
            return count_leaves(node.left) + count_leaves(node.right)

        assert count_leaves(model._root) <= 3

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(float) + 2 * (X[:, 1] > 0).astype(float)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_max_features_subsampling_runs(self):
        X, y = xor_data(100)
        model = DecisionTreeClassifier(max_depth=3, max_features="sqrt", random_state=0).fit(X, y)
        assert model.predict(X).shape == (100,)


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10
        model = DecisionTreeRegressor(max_depth=3, max_thresholds=64).fit(X, y)
        assert rmse(y, model.predict(X)) < 0.5

    def test_deeper_tree_fits_better(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(300, 1))
        y = np.sin(6 * X[:, 0])
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert rmse(y, deep.predict(X)) < rmse(y, shallow.predict(X))

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.full(30, 3.5)
        model = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(model.predict(X), 3.5)

    def test_prediction_within_target_range(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = rng.uniform(5, 10, size=100)
        pred = DecisionTreeRegressor(max_depth=4).fit(X, y).predict(X)
        assert pred.min() >= 5.0 - 1e-9
        assert pred.max() <= 10.0 + 1e-9
