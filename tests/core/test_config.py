"""Unit tests for FeatAugConfig."""

import pytest

from repro.core.config import FeatAugConfig


class TestFeatAugConfig:
    def test_defaults_produce_40_features(self):
        config = FeatAugConfig()
        assert config.n_templates * config.queries_per_template == 40

    def test_defaults_validate(self):
        FeatAugConfig().validate()

    def test_invalid_n_templates(self):
        with pytest.raises(ValueError):
            FeatAugConfig(n_templates=0).validate()

    def test_invalid_queries_per_template(self):
        with pytest.raises(ValueError):
            FeatAugConfig(queries_per_template=0).validate()

    def test_invalid_validation_fraction(self):
        with pytest.raises(ValueError):
            FeatAugConfig(validation_fraction=1.5).validate()

    def test_invalid_beam_width(self):
        with pytest.raises(ValueError):
            FeatAugConfig(beam_width=0).validate()

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FeatAugConfig(max_template_depth=0).validate()

    def test_invalid_proxy(self):
        with pytest.raises(ValueError):
            FeatAugConfig(proxy="magic").validate()

    def test_with_overrides_returns_copy(self):
        base = FeatAugConfig()
        changed = base.with_overrides(use_warmup=False, n_templates=3)
        assert changed.use_warmup is False
        assert changed.n_templates == 3
        assert base.use_warmup is True

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            FeatAugConfig().with_overrides(proxy="nope")

    def test_ablation_flags_default_on(self):
        config = FeatAugConfig()
        assert config.use_warmup
        assert config.use_template_identification
        assert config.use_low_cost_proxy
        assert config.use_template_predictor
