"""A concrete predicate-aware SQL query and its SQL rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dataframe.column import DType, format_datetime
from repro.dataframe.predicates import And, Equals, Predicate, Range


@dataclass
class PredicateAwareQuery:
    """One query from a query pool (Definition 2).

    ``predicates`` maps a predicate attribute to its concrete constraint:

    * categorical attribute -> the equality value (or ``None`` for no
      predicate on that attribute),
    * numeric / datetime attribute -> a ``(low, high)`` tuple where either
      bound may be ``None`` (one-sided range) or both may be ``None`` (no
      predicate).
    """

    agg_func: str
    agg_attr: str
    keys: Tuple[str, ...]
    predicates: Dict[str, object] = field(default_factory=dict)
    predicate_dtypes: Dict[str, DType] = field(default_factory=dict)
    relation_name: str = "R"
    feature_name: str = "feature"

    # ------------------------------------------------------------------
    def build_predicate(self) -> Predicate:
        """Combine the per-attribute constraints into one WHERE predicate."""
        parts: List[Predicate] = []
        for attr, constraint in self.predicates.items():
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if dtype is DType.CATEGORICAL:
                parts.append(Equals(attr, constraint))
            else:
                low, high = constraint
                if low is None and high is None:
                    continue
                parts.append(Range(attr, low=low, high=high, dtype=dtype))
        return And(parts)

    def has_predicates(self) -> bool:
        """True when at least one attribute carries an actual constraint."""
        for attr, constraint in self.predicates.items():
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if dtype is DType.CATEGORICAL:
                return True
            low, high = constraint
            if low is not None or high is not None:
                return True
        return False

    def to_sql(self) -> str:
        """Render the query as SQL text (for logs, examples and reports)."""
        keys = ", ".join(self.keys)
        where = self.build_predicate().to_sql()
        sql = (
            f"SELECT {keys}, {self.agg_func}({self.agg_attr}) AS {self.feature_name}\n"
            f"FROM {self.relation_name}\n"
        )
        if where != "TRUE":
            sql += f"WHERE {where}\n"
        sql += f"GROUP BY {keys}"
        return sql

    def signature(self) -> tuple:
        """Hashable identity of the query (used to deduplicate results)."""
        rendered: List[tuple] = []
        for attr in sorted(self.predicates):
            constraint = self.predicates[attr]
            if isinstance(constraint, tuple):
                rendered.append((attr, tuple(constraint)))
            else:
                rendered.append((attr, constraint))
        return (self.agg_func, self.agg_attr, self.keys, tuple(rendered))

    def describe(self) -> str:
        """Short human-readable description used in result summaries."""
        clauses = []
        for attr, constraint in self.predicates.items():
            dtype = self.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if dtype is DType.CATEGORICAL:
                clauses.append(f"{attr}={constraint}")
            else:
                low, high = constraint
                if low is None and high is None:
                    continue
                if dtype is DType.DATETIME:
                    low_text = format_datetime(low) if low is not None else "-inf"
                    high_text = format_datetime(high) if high is not None else "+inf"
                else:
                    low_text = f"{low:.4g}" if low is not None else "-inf"
                    high_text = f"{high:.4g}" if high is not None else "+inf"
                clauses.append(f"{attr} in [{low_text}, {high_text}]")
        where = " AND ".join(clauses) if clauses else "no predicate"
        return f"{self.agg_func}({self.agg_attr}) | {where}"
