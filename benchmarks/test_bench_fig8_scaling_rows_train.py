"""Figure 8: FeatAug runtime vs the number of rows in the training table D.

Sweeps the training-table size on two datasets (Student and Merchant, one
classification and one regression) and reports the QTI / warm-up / generate
time split per size.
"""

from __future__ import annotations

import pytest

from _bench_utils import write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import format_timing_table
from repro.experiments.scaling import run_scaling_rows_train

ROW_COUNTS = (60, 120, 240)
DATASETS = ("student", "merchant")


def _run_fig8():
    tables = {}
    for dataset_name in DATASETS:
        bundle = load_dataset(dataset_name, scale=0.25, seed=0)
        tables[dataset_name] = run_scaling_rows_train(bundle, ROW_COUNTS, model_name="LR")
    return tables


@pytest.mark.benchmark(group="fig8")
def test_fig8_scaling_with_training_rows(benchmark):
    tables = benchmark.pedantic(_run_fig8, rounds=1, iterations=1)
    sections = []
    for dataset_name, points in tables.items():
        sections.append(
            f"Figure 8 ({dataset_name}) -- running time vs rows in D (LR model)\n\n"
            + format_timing_table(points, x_label="n_train_rows")
        )
    text = "\n\n".join(sections)
    print("\n" + text)
    write_result("fig8_scaling_rows_train", text)

    for dataset_name, points in tables.items():
        sizes = [p.size for p in points]
        assert sizes == sorted(sizes)
        # Total runtime should not shrink as the training table grows
        # (allowing generous noise at these tiny scales).
        assert points[-1].total_seconds >= 0.3 * points[0].total_seconds
