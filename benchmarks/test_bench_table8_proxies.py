"""Table VIII: sensitivity to the low-cost proxy (Spearman vs MI vs LR).

Runs the full FeatAug pipeline with each of the three proxies on the four
one-to-many datasets (LR downstream model, matching the subset of the paper's
table included in the reference dictionary).
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_FEATURES, BENCH_SCALE, bench_config, write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_method
from repro.experiments.scenarios import ONE_TO_MANY_DATASETS, PAPER_TABLE8

PROXIES = (("SC", "spearman"), ("MI", "mi"), ("LRproxy", "lr"))


def _run_table8():
    rows = []
    for dataset_name in ONE_TO_MANY_DATASETS:
        bundle = load_dataset(dataset_name, scale=BENCH_SCALE, seed=0)
        for label, proxy in PROXIES:
            config = bench_config(proxy=proxy)
            result = run_method(
                bundle, "FeatAug", "LR", n_features=BENCH_FEATURES, config=config, seed=0
            )
            rows.append(
                [
                    dataset_name,
                    label,
                    result.metric_name,
                    result.metric,
                    PAPER_TABLE8.get((dataset_name, label, "LR")),
                ]
            )
    return rows


@pytest.mark.benchmark(group="table8")
def test_table8_proxy_sensitivity(benchmark):
    rows = benchmark.pedantic(_run_table8, rounds=1, iterations=1)
    text = (
        "Table VIII -- FeatAug with different low-cost proxies (LR downstream model)\n"
        "(SC = Spearman correlation, MI = mutual information, LRproxy = logistic-regression proxy)\n\n"
        + render_table(["dataset", "proxy", "metric", "measured", "paper"], rows)
    )
    print("\n" + text)
    write_result("table8_proxies", text)

    # Shape check: every proxy produces a usable search (finite results), and
    # MI -- the paper's recommended default -- is never catastrophically worse
    # than the best proxy on classification datasets.
    by_dataset = {}
    for dataset, label, metric_name, measured, _ in rows:
        by_dataset.setdefault(dataset, {})[label] = (metric_name, measured)
    for dataset, scores in by_dataset.items():
        metric_name, mi_score = scores["MI"]
        best = max(v for (m, v) in scores.values()) if metric_name != "rmse" else min(
            v for (m, v) in scores.values()
        )
        if metric_name == "rmse":
            assert mi_score <= best * 1.15
        else:
            assert mi_score >= best - 0.1
