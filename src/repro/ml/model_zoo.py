"""Factory for the downstream models used across the experiments.

The paper's evaluation uses four models: Logistic Regression (LR), XGBoost
(XGB), Random Forest (RF) and DeepFM.  For regression tasks the LR / XGB / RF
slots map onto the corresponding regressors; DeepFM is classification-only.
"""

from __future__ import annotations

from repro.ml.base import BaseEstimator
from repro.ml.deepfm import DeepFMClassifier
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.linear import LinearRegression, LogisticRegression

#: Model identifiers accepted by :func:`make_model`, matching the paper.
MODEL_NAMES = ("LR", "XGB", "RF", "DeepFM")


def make_model(name: str, task: str, fast: bool = True) -> BaseEstimator:
    """Instantiate a downstream model by its paper name.

    Parameters
    ----------
    name:
        One of ``LR``, ``XGB``, ``RF``, ``DeepFM`` (case insensitive).
    task:
        ``"binary"``, ``"multiclass"`` or ``"regression"``.
    fast:
        Use the smaller hyperparameters meant for the laptop-scale
        reproduction (fewer trees / epochs).  Setting it to ``False`` roughly
        matches library defaults and is noticeably slower.
    """
    key = name.strip().upper()
    if key not in {n.upper() for n in MODEL_NAMES}:
        raise ValueError(f"Unknown model {name!r}; expected one of {MODEL_NAMES}")
    if task not in ("binary", "multiclass", "regression"):
        raise ValueError(f"Unknown task {task!r}")

    if key == "LR":
        if task == "regression":
            return LinearRegression()
        return LogisticRegression(n_iter=200 if fast else 500)
    if key == "XGB":
        if task == "regression":
            return GradientBoostingRegressor(
                n_estimators=20 if fast else 100, max_depth=3, learning_rate=0.3
            )
        if task == "multiclass":
            # One-vs-rest boosting is expensive; fall back to a forest, which
            # handles multi-class natively, as the tree-ensemble stand-in.
            return RandomForestClassifier(n_estimators=15 if fast else 100, max_depth=6)
        return GradientBoostingClassifier(
            n_estimators=20 if fast else 100, max_depth=3, learning_rate=0.3
        )
    if key == "RF":
        if task == "regression":
            return RandomForestRegressor(n_estimators=15 if fast else 100, max_depth=6)
        return RandomForestClassifier(n_estimators=15 if fast else 100, max_depth=6)
    # DeepFM
    if task != "binary":
        raise ValueError("DeepFM only supports binary classification tasks")
    return DeepFMClassifier(n_epochs=8 if fast else 30, embedding_dim=8)
