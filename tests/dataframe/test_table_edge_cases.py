"""Edge-case tests for the table engine (empty tables, degenerate inputs)."""

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.groupby import group_by_aggregate
from repro.dataframe.predicates import Equals, Range
from repro.dataframe.table import Table


class TestEmptyTables:
    def test_empty_table_shape(self):
        table = Table([])
        assert table.shape == (0, 0)
        assert table.column_names == []

    def test_filter_to_empty_preserves_schema(self):
        table = Table.from_dict({"k": ["a", "b"], "v": [1.0, 2.0]})
        empty = table.filter([False, False])
        assert empty.num_rows == 0
        assert empty.column_names == ["k", "v"]

    def test_groupby_on_empty_table(self):
        table = Table.from_dict({"k": ["a"], "v": [1.0]}).filter([False])
        out = group_by_aggregate(table, ["k"], "v", "SUM")
        assert out.num_rows == 0

    def test_join_with_empty_right(self):
        left = Table.from_dict({"k": ["a", "b"], "x": [1.0, 2.0]})
        right = Table.from_dict({"k": ["a"], "f": [5.0]}).filter([False])
        joined = left.left_join(right, on="k")
        assert joined.num_rows == 2
        assert np.isnan(joined.column("f").values).all()

    def test_predicates_on_empty_table(self):
        table = Table.from_dict({"c": ["x"], "n": [1.0]}).filter([False])
        assert Equals("c", "x").mask(table).shape == (0,)
        assert Range("n", low=0).mask(table).shape == (0,)


class TestSingleRowTables:
    def test_single_row_aggregation(self):
        table = Table.from_dict({"k": ["a"], "v": [3.0]})
        out = group_by_aggregate(table, ["k"], "v", "AVG")
        assert out.num_rows == 1
        assert out.column("feature").values[0] == 3.0

    def test_single_row_sample(self):
        table = Table.from_dict({"x": [1.0]})
        assert table.sample(5, seed=0).num_rows == 1

    def test_head_larger_than_table(self):
        table = Table.from_dict({"x": [1.0, 2.0]})
        assert table.head(100).num_rows == 2


class TestDegenerateColumns:
    def test_all_missing_numeric_column(self):
        column = Column("x", [None, None], dtype=DType.NUMERIC)
        assert column.null_count() == 2
        assert np.isnan(column.min())

    def test_all_missing_categorical_column(self):
        column = Column("x", [None, None], dtype=DType.CATEGORICAL)
        assert column.unique() == []

    def test_groupby_on_all_missing_aggregation_attr(self):
        table = Table.from_dict(
            {"k": ["a", "a", "b"], "v": [None, None, None]}, dtypes={"v": DType.NUMERIC}
        )
        out = group_by_aggregate(table, ["k"], "v", "AVG")
        assert np.isnan(out.column("feature").values).all()

    def test_groupby_missing_key_forms_its_own_group(self):
        table = Table.from_dict({"k": ["a", None, None], "v": [1.0, 2.0, 3.0]})
        out = group_by_aggregate(table, ["k"], "v", "SUM")
        assert out.num_rows == 2
        totals = dict(zip(out.column("k").values, out.column("feature").values))
        assert totals[None] == 5.0
