"""Unit tests for the experiment runner."""

import pytest

from repro.core.config import FeatAugConfig
from repro.experiments.runner import METHOD_NAMES, MethodResult, run_method


@pytest.fixture(scope="module")
def runner_config():
    return FeatAugConfig(
        n_templates=2,
        queries_per_template=2,
        warmup_iterations=6,
        warmup_top_k=3,
        search_iterations=4,
        template_proxy_iterations=4,
        max_template_depth=2,
        beam_width=1,
        tpe_startup_trials=3,
        seed=0,
    )


class TestRunMethod:
    def test_unknown_method_raises(self, tiny_student):
        with pytest.raises(ValueError):
            run_method(tiny_student, "Magic", "LR")

    def test_base_method(self, tiny_student):
        result = run_method(tiny_student, "Base", "LR", n_features=4)
        assert isinstance(result, MethodResult)
        assert result.n_features == 0
        assert result.metric_name == "auc"

    @pytest.mark.parametrize("method", ["FT", "FT+MI", "FT+LR", "Random"])
    def test_one_to_many_baselines(self, tiny_student, runner_config, method):
        result = run_method(tiny_student, method, "LR", n_features=4, config=runner_config)
        assert 0.0 <= result.metric <= 1.0
        assert result.n_features > 0

    def test_feataug_full(self, tiny_student, runner_config):
        result = run_method(tiny_student, "FeatAug", "LR", n_features=4, config=runner_config)
        assert 0.0 <= result.metric <= 1.0
        assert "qti_seconds" in result.details

    def test_feataug_ablations_flagged(self, tiny_student, runner_config):
        nowu = run_method(tiny_student, "FeatAug-NoWU", "LR", n_features=4, config=runner_config)
        noqti = run_method(tiny_student, "FeatAug-NoQTI", "LR", n_features=4, config=runner_config)
        assert nowu.method == "FeatAug-NoWU"
        assert noqti.details["qti_seconds"] == 0.0

    @pytest.mark.parametrize("method", ["ARDA", "AutoFeat-MAB", "AutoFeat-DQN"])
    def test_one_to_one_methods(self, tiny_household, runner_config, method):
        result = run_method(tiny_household, method, "LR", n_features=5, config=runner_config)
        assert result.metric_name == "f1"
        assert 0.0 <= result.metric <= 1.0

    def test_regression_dataset_reports_rmse(self, tiny_merchant, runner_config):
        result = run_method(tiny_merchant, "FT", "LR", n_features=4, config=runner_config)
        assert result.metric_name == "rmse"
        assert result.metric > 0

    def test_seconds_recorded(self, tiny_student, runner_config):
        result = run_method(tiny_student, "FT", "LR", n_features=3, config=runner_config)
        assert result.seconds > 0

    def test_method_names_cover_paper_baselines(self):
        for name in ("FT", "FT+LR", "FT+GBDT", "FT+MI", "FT+Chi2", "FT+Gini",
                     "FT+Forward", "FT+Backward", "Random", "ARDA",
                     "AutoFeat-MAB", "AutoFeat-DQN", "FeatAug"):
            assert name in METHOD_NAMES
