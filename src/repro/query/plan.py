"""The logical query-plan IR consumed by execution backends.

A :class:`QueryPlan` is the frozen, backend-independent description of one
grouped-aggregation query (or of several queries fused into one plan): a
conjunction of WHERE :class:`PredicateAtom`\\ s, the group-by key columns and
one :class:`AggregateSpec` per output feature.  ``QueryEngine.plan(query)``
lowers a :class:`~repro.query.query.PredicateAwareQuery` into a plan, and
everything downstream of that point -- result caching, batching and the
:class:`~repro.query.backends.ExecutionBackend` implementations -- consumes
only plans, never queries.

The plan's canonical signatures subsume the ad-hoc tuples the engine used to
build inline:

* :meth:`QueryPlan.predicate_signature` -- hashable identity of the WHERE
  clause (``None`` when an atom's constants are unhashable, i.e. the plan is
  uncacheable).  Atom signatures are bit-compatible with the historical
  predicate-mask cache keys, so mask reuse behaves exactly as before.
* :meth:`QueryPlan.group_key` -- the ``(predicate signature, keys)`` identity
  ``execute_batch`` fuses plans by.
* :meth:`QueryPlan.result_key` -- the per-aggregate result-cache key (the old
  ``_result_key`` tuple), dtype-aware so an ``Equals`` and a ``Range`` over
  the same constants can never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.dataframe.aggregates import (
    AGGREGATE_FUNCTIONS,
    PARAMETERIZED_AGGREGATES,
    parse_aggregate_name,
)
from repro.dataframe.column import DType
from repro.dataframe.predicates import And, Equals, IsIn, Predicate, Range, Window
from repro.query.query import (
    PredicateAwareQuery,
    WindowConstraint,
    canonical_members,
    is_membership_constraint,
)


def _normalise_constant(value):
    """Collapse numpy scalars to their Python equivalents.

    ``np.float64(3.0)`` and ``3.0`` (or ``np.str_("a")`` and ``"a"``) must
    produce the **same** atom signature: signatures are sorted by ``repr``
    and used as mask/result-cache keys, and numpy scalar reprs differ from
    the Python ones even though the values compare equal.
    """
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class PredicateAtom:
    """One conjunct of a plan's WHERE clause.

    ``kind`` is one of:

    * ``"eq"`` -- categorical equality, ``value`` holds the constant;
    * ``"in"`` -- categorical membership, ``value`` holds the allowed values
      (stored as a canonically-sorted duplicate-free tuple, so signature /
      mask-cache identity is order- and duplicate-insensitive);
    * ``"range"`` -- closed numeric / datetime interval, ``low`` / ``high``
      hold the bounds, either may be ``None`` for a one-sided range;
    * ``"window"`` -- half-open ``[low, high)`` time interval over a datetime
      event column, both bounds required.

    Constants are normalised on construction (numpy scalars collapse to
    Python scalars) so equal constants can never produce distinct cache keys.
    """

    kind: str
    attr: str
    value: object = None
    low: Optional[float] = None
    high: Optional[float] = None
    dtype: DType = DType.CATEGORICAL

    def __post_init__(self):
        object.__setattr__(self, "value", _normalise_constant(self.value))
        object.__setattr__(self, "low", _normalise_constant(self.low))
        object.__setattr__(self, "high", _normalise_constant(self.high))
        if self.kind == "in":
            members = self.value if self.value is not None else ()
            if not is_membership_constraint(members):
                members = (members,)
            object.__setattr__(
                self,
                "value",
                canonical_members([_normalise_constant(m) for m in members]),
            )

    def signature(self) -> Optional[tuple]:
        """Hashable identity of the atom (``None`` = uncacheable constants).

        The tuples are identical to the historical predicate-mask cache keys
        (``("eq", attr, value)`` / ``("range", attr, low, high)``), so masks
        cached before a plan was ever built keep hitting; the new kinds
        extend the scheme with ``("in", attr, members)`` and
        ``("window", attr, low, high)``.
        """
        if self.kind == "eq":
            sig: tuple = ("eq", self.attr, self.value)
        elif self.kind == "in":
            sig = ("in", self.attr, self.value)
        elif self.kind == "window":
            sig = ("window", self.attr, self.low, self.high)
        else:
            sig = ("range", self.attr, self.low, self.high)
        try:
            hash(sig)
        except TypeError:
            return None
        return sig

    def to_predicate(self) -> Predicate:
        """The executable numpy predicate for this atom."""
        if self.kind == "eq":
            return Equals(self.attr, self.value)
        if self.kind == "in":
            return IsIn(self.attr, list(self.value))
        if self.kind == "window":
            return Window(self.attr, self.low, self.high, dtype=self.dtype)
        return Range(self.attr, low=self.low, high=self.high, dtype=self.dtype)

    def to_sql(self) -> str:
        """SQL text of the atom (display / logging / SQL-generating backends)."""
        return self.to_predicate().to_sql()


@dataclass(frozen=True)
class AggregateSpec:
    """One ``(aggregation function, aggregation attribute)`` output column.

    ``func`` is always the canonical base name (``COUNT_DISTINCT``, not
    ``"count distinct"``; ``QUANTILE``, not ``"QUANTILE:0.25"``); for the
    parameterized families (``QUANTILE``, ``TOP_K_SHARE``) the parameter
    lives in ``param`` (``None`` for plain aggregates).  Construction
    through :func:`aggregate_spec` or :meth:`QueryPlan.from_query`
    normalises and validates both.
    """

    func: str
    attr: str
    feature_name: str = "feature"
    param: Optional[Union[float, int]] = None


def aggregate_spec(func: str, attr: str, feature_name: str = "feature") -> AggregateSpec:
    """Build an :class:`AggregateSpec`, normalising and validating ``func``.

    Accepts plain names (``"count distinct"``) and parameterized spellings
    (``"QUANTILE:0.25"``, ``"TOP_K_SHARE:3"``); raises ``KeyError`` for
    unknown functions and ``ValueError`` for a parameterized family without
    (or with an invalid) parameter.
    """
    canonical, param = parse_aggregate_name(func)
    if param is None:
        if canonical in PARAMETERIZED_AGGREGATES:
            raise ValueError(f"Aggregation function {func!r} requires a parameter")
        if canonical not in AGGREGATE_FUNCTIONS:
            raise KeyError(f"Unknown aggregation function {func!r}")
    return AggregateSpec(canonical, attr, feature_name, param)


def atoms_from_query(query: PredicateAwareQuery) -> Tuple[PredicateAtom, ...]:
    """Lower a query's WHERE constraints into predicate atoms.

    Mirrors :meth:`PredicateAwareQuery.build_predicate`: ``None`` constraints
    and both-``None`` ranges are dropped; atom order follows the query's
    predicate insertion order (signatures are order-independent, but mask
    composition order is preserved for stats stability).
    """
    atoms: List[PredicateAtom] = []
    for attr, constraint in query.predicates.items():
        dtype = query.predicate_dtypes.get(attr, DType.CATEGORICAL)
        if constraint is None:
            continue
        if isinstance(constraint, WindowConstraint):
            # The marker type is unambiguous: honour it even when the
            # attribute's dtype was never declared (the CATEGORICAL default
            # is a fallback, not evidence) -- mirrors build_predicate.
            if dtype is DType.CATEGORICAL:
                dtype = DType.NUMERIC
            atoms.append(
                PredicateAtom(
                    "window", attr, low=constraint.low, high=constraint.high, dtype=dtype
                )
            )
        elif dtype is DType.CATEGORICAL:
            if is_membership_constraint(constraint):
                if not constraint:
                    continue
                atoms.append(PredicateAtom("in", attr, value=tuple(constraint), dtype=dtype))
            else:
                atoms.append(PredicateAtom("eq", attr, value=constraint, dtype=dtype))
        else:
            low, high = constraint
            if low is None and high is None:
                continue
            atoms.append(PredicateAtom("range", attr, low=low, high=high, dtype=dtype))
    return tuple(atoms)


@dataclass(frozen=True)
class QueryPlan:
    """A frozen logical plan: WHERE atoms, group-by keys, aggregate outputs.

    Plans built by :meth:`from_query` carry exactly one aggregate;
    ``execute_batch`` fuses plans sharing a :meth:`group_key` into one
    multi-aggregate plan via :meth:`with_aggregates` so backends pay the
    filter and grouping once per plan.
    """

    atoms: Tuple[PredicateAtom, ...] = ()
    keys: Tuple[str, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_query(cls, query: PredicateAwareQuery) -> "QueryPlan":
        """Lower one :class:`PredicateAwareQuery` into a single-aggregate plan.

        Raises ``KeyError`` for an unknown aggregation function; unknown
        attributes are only detected at execution time (they depend on the
        bound table).
        """
        return cls(
            atoms=atoms_from_query(query),
            keys=tuple(query.keys),
            aggregates=(aggregate_spec(query.agg_func, query.agg_attr, query.feature_name),),
        )

    def with_aggregates(self, aggregates) -> "QueryPlan":
        """Copy of this plan with the aggregate list replaced (plan fusion)."""
        return replace(self, aggregates=tuple(aggregates))

    def specs_by_attr(self) -> Dict[str, List[Tuple[int, AggregateSpec]]]:
        """Aggregate specs grouped per value column, keeping spec positions.

        Returns ``{attr: [(position, spec), ...]}`` in first-appearance
        attribute order.  Backends iterate this to run **one shared
        aggregation pass per value column** of a fused plan: every spec of
        one attribute reuses the same prepared aggregator (and, for the
        order-statistics family, the same sort order), while result tables
        are still assembled in spec-position order.
        """
        grouped: Dict[str, List[Tuple[int, AggregateSpec]]] = {}
        for position, spec in enumerate(self.aggregates):
            grouped.setdefault(spec.attr, []).append((position, spec))
        return grouped

    # ------------------------------------------------------------------
    # Canonical signatures
    # ------------------------------------------------------------------
    def predicate_signature(self) -> Optional[tuple]:
        """Hashable identity of the WHERE clause (``None`` = uncacheable).

        An empty tuple means "no predicate" (every row qualifies).  Sorted by
        ``repr`` so atom order never affects identity.
        """
        signatures = []
        for atom in self.atoms:
            signature = atom.signature()
            if signature is None:
                return None
            signatures.append(signature)
        return tuple(sorted(signatures, key=repr))

    def group_key(self) -> Optional[tuple]:
        """The ``(predicate signature, keys)`` identity plans are fused by."""
        signature = self.predicate_signature()
        if signature is None:
            return None
        return (signature, self.keys)

    def sort_key(self, attr: str) -> Optional[tuple]:
        """Sort-order cache key of value column *attr*: ``(predicate
        signature, keys, attr)`` -- the triple that determines the
        (filter, grouping, value column) lexsort order the order-statistics
        kernels share.  ``None`` when the WHERE clause is uncacheable, like
        the other signatures.
        """
        signature = self.predicate_signature()
        if signature is None:
            return None
        return (signature, self.keys, attr)

    def mad_sort_key(self, attr: str) -> Optional[tuple]:
        """Sort-order cache key of MAD's deviation order over *attr*: the
        :meth:`sort_key` triple extended with ``"MEDIAN"`` -- MAD sorts
        ``|x - group median|``, a deterministic function of the same
        (filter, grouping, value column), so the deviation order is cached
        per (sort key, MEDIAN) pair right next to the main order.  The
        four-tuple can never collide with a three-tuple ``sort_key``.
        """
        key = self.sort_key(attr)
        if key is None:
            return None
        return key + ("MEDIAN",)

    def result_key(self, position: int = 0) -> Optional[tuple]:
        """Result-cache key of the aggregate at *position* (``None`` = uncacheable).

        Plain aggregates keep the historical 5-tuple; parameterized ones
        append ``spec.param`` as a sixth element, so a ``QUANTILE:0.25`` and
        a ``QUANTILE:0.75`` result can never collide (and the delta path's
        additive-upgrade check, which only recognises 5-tuples, evicts
        parameterized results via ``staleness_evictions`` by construction).
        """
        signature = self.predicate_signature()
        if signature is None:
            return None
        spec = self.aggregates[position]
        key = (spec.func, spec.attr, self.keys, signature, spec.feature_name)
        if spec.param is None:
            return key
        return key + (spec.param,)

    def signature(self) -> Optional[tuple]:
        """Canonical identity of the whole plan (predicate, keys, aggregates)."""
        signature = self.predicate_signature()
        if signature is None:
            return None
        return (signature, self.keys, self.aggregates)

    # ------------------------------------------------------------------
    # Renderings
    # ------------------------------------------------------------------
    def build_predicate(self) -> Predicate:
        """The combined WHERE predicate (an empty conjunction selects all rows)."""
        return And([atom.to_predicate() for atom in self.atoms])

    def to_sql(self, relation_name: str = "R") -> str:
        """Render the plan as SQL text, one select list entry per aggregate."""
        keys = ", ".join(self.keys)
        select = ", ".join(
            (
                f"{spec.func}({spec.attr}) AS {spec.feature_name}"
                if spec.param is None
                else f"{spec.func}({spec.attr}, {spec.param}) AS {spec.feature_name}"
            )
            for spec in self.aggregates
        )
        where = self.build_predicate().to_sql()
        sql = f"SELECT {keys}, {select}\nFROM {relation_name}\n"
        if where != "TRUE":
            sql += f"WHERE {where}\n"
        sql += f"GROUP BY {keys}"
        return sql
