"""The execution-backend API: registry, config plumbing, deprecation shims,
and the engine's state-reset contract."""

import warnings

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends import (
    BACKEND_REGISTRY,
    ExecutionBackend,
    backend_names,
    make_backend,
    register_backend,
)
from repro.query.engine import (
    BACKEND_ENV_VAR,
    EngineConfig,
    EngineStats,
    QueryEngine,
    default_backend_name,
    engine_for,
)
from repro.query.sharding import WORKERS_ENV_VAR, default_worker_count
from repro.query.executor import execute_query_naive
from repro.query.query import PredicateAwareQuery


def make_relevant(seed: int) -> Table:
    rng = np.random.default_rng(seed)
    n = 60
    return Table(
        [
            Column("key", rng.integers(0, 6, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [str(v) for v in rng.choice(list("abcdef"), size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


def query_with(value: str, agg_func: str = "SUM") -> PredicateAwareQuery:
    return PredicateAwareQuery(
        agg_func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
    )


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"numpy", "python", "sqlite"} <= set(backend_names())

    def test_make_backend_unknown_name(self):
        with pytest.raises(ValueError, match="Unknown execution backend"):
            make_backend("duckdb")

    def test_engine_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="Unknown execution backend"):
            QueryEngine(make_relevant(0), config=EngineConfig(backend="duckdb"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_backend("numpy")
            class Impostor(ExecutionBackend):
                def run_plan(self, plan):  # pragma: no cover - never runs
                    return []

    def test_third_party_backend_runs_through_the_engine(self):
        """A registered subclass is selectable by name like the built-ins."""

        @register_backend("_test_delegating")
        class Delegating(ExecutionBackend):
            """Delegates to the python reference path (registration demo)."""

            def run_plan(self, plan):
                inner = make_backend("python")
                inner.bind(self.table, engine=self.engine)
                return inner.run_plan(plan)

        try:
            table = make_relevant(0)
            engine = QueryEngine(table, config=EngineConfig(backend="_test_delegating"))
            query = query_with("a")
            assert engine.execute(query).column("feature") == execute_query_naive(
                query, table
            ).column("feature")
            assert engine.stats.backend == "_test_delegating"
        finally:
            BACKEND_REGISTRY.pop("_test_delegating", None)

    def test_backend_without_engine_refuses_shared_state(self):
        backend = make_backend("numpy")
        backend.bind(make_relevant(0))
        with pytest.raises(RuntimeError, match="owning QueryEngine"):
            backend.engine


class TestEngineConfig:
    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == "numpy"
        assert EngineConfig().backend_name == "numpy"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        assert default_backend_name() == "sqlite"
        assert QueryEngine(make_relevant(0)).backend_name == "sqlite"

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        engine = QueryEngine(make_relevant(0), config=EngineConfig(backend="numpy"))
        assert engine.backend_name == "numpy"

    def test_cache_sizes_flow_from_config(self):
        engine = QueryEngine(
            make_relevant(0), config=EngineConfig(mask_cache_size=4, result_cache_size=3)
        )
        for i in range(10):
            engine.execute(query_with(f"value-{i}"))
        assert engine.mask_cache_len <= 4
        assert engine.result_cache_len <= 3

    def test_cache_size_keywords_override_config(self):
        engine = QueryEngine(make_relevant(0), mask_cache_size=2)
        assert engine.config.mask_cache_size == 2

    def test_invalid_cache_sizes_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(make_relevant(0), config=EngineConfig(mask_cache_size=0))

    def test_negative_sort_cache_size_rejected(self):
        with pytest.raises(ValueError, match="sort_cache_size"):
            QueryEngine(make_relevant(0), config=EngineConfig(sort_cache_size=-1))

    def test_zero_sort_cache_size_disables_the_cache(self):
        engine = QueryEngine(make_relevant(0), config=EngineConfig(sort_cache_size=0))
        assert engine.sort_cache_len == 0

    def test_engine_for_is_keyed_by_sort_cache_size(self):
        table = make_relevant(0)
        assert engine_for(table) is not engine_for(table, EngineConfig(sort_cache_size=8))


class TestBackendValidationEagerness:
    """Unknown backend names fail at config resolution, naming the registered
    backends -- not at the first query deep inside the registry lookup
    (mirrors the $REPRO_ENGINE_WORKERS parsing tests below)."""

    def test_explicit_unknown_backend_fails_at_config_construction(self):
        with pytest.raises(ValueError, match=r"Unknown execution backend 'duckdb'.*numpy"):
            EngineConfig(backend="duckdb")

    @pytest.mark.parametrize("raw", ["garbage", "  garbage  ", "NUMPY", "numpy python"])
    def test_explicit_garbage_values_rejected(self, raw):
        with pytest.raises(ValueError, match="Unknown execution backend"):
            EngineConfig(backend=raw)

    def test_explicit_backend_whitespace_is_stripped(self):
        config = EngineConfig(backend="  sqlite  ")
        assert config.backend == "sqlite"
        assert config.backend_name == "sqlite"

    def test_blank_explicit_backend_falls_back_to_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        for raw in ("", "   "):
            config = EngineConfig(backend=raw)
            assert config.backend is None
            assert config.backend_name == "numpy"

    @pytest.mark.parametrize("raw", ["garbage", "  garbage  ", "duckdb"])
    def test_env_var_garbage_rejected_at_resolution(self, monkeypatch, raw):
        monkeypatch.setenv(BACKEND_ENV_VAR, raw)
        with pytest.raises(ValueError, match=f"REPRO_ENGINE_BACKEND.*{raw.strip()}"):
            default_backend_name()
        with pytest.raises(ValueError, match="REPRO_ENGINE_BACKEND"):
            EngineConfig().validate()
        with pytest.raises(ValueError, match="REPRO_ENGINE_BACKEND"):
            QueryEngine(make_relevant(0))

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_blank_env_value_means_the_numpy_default(self, monkeypatch, raw):
        monkeypatch.setenv(BACKEND_ENV_VAR, raw)
        assert default_backend_name() == "numpy"

    def test_whitespace_env_value_parses(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "  sqlite  ")
        assert default_backend_name() == "sqlite"

    def test_feataug_config_validates_env_backend_eagerly(self, monkeypatch):
        from repro.core.config import FeatAugConfig

        monkeypatch.setenv(BACKEND_ENV_VAR, "garbage")
        with pytest.raises(ValueError, match="REPRO_ENGINE_BACKEND"):
            FeatAugConfig().validate()
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="Unknown execution backend"):
            FeatAugConfig(engine_backend="garbage").validate()


class TestWorkerUtilisation:
    """The derived utilisation is computed per-delta and clamped: lifetime
    ``shard_seconds`` mixes plan-level (w*) and group-range (g*) keys across
    all batches, and timer skew could otherwise drift the ratio past 1.0 on
    long-lived engines."""

    def test_lifetime_ratio_clamps_at_one(self):
        stats = EngineStats(backend="numpy", workers=2)
        stats.bump(seconds_sharding=1.0)
        stats.add_split("shard_seconds", "w0", 1.5)
        stats.add_split("shard_seconds", "g0", 1.0)  # mixed keys accumulate
        assert stats.worker_utilisation == 1.0
        assert stats.as_dict()["worker_utilisation"] == 1.0

    def test_delta_reports_the_window_not_the_lifetime(self):
        stats = EngineStats(backend="numpy", workers=2)
        stats.bump(seconds_sharding=1.0)
        stats.add_split("shard_seconds", "w0", 2.5)  # drifted earlier traffic
        baseline = stats.as_dict()
        stats.bump(seconds_sharding=2.0)
        stats.add_split("shard_seconds", "w0", 1.0)
        delta = stats.delta_since(baseline)
        # 1.0 busy over 2 workers x 2.0s capacity -- the window alone.
        assert delta["worker_utilisation"] == 0.25
        # The lifetime ratio ((2.5 + 1.0) / (2 * 3.0)) blends the drifted
        # early traffic into every later reading -- which is exactly why
        # per-run reports go through delta_since.
        assert stats.worker_utilisation == pytest.approx(3.5 / 6.0)

    def test_delta_clamps_too(self):
        stats = EngineStats(backend="numpy", workers=1)
        baseline = stats.as_dict()
        stats.bump(seconds_sharding=1.0)
        stats.add_split("shard_seconds", "w0", 1.25)
        assert stats.delta_since(baseline)["worker_utilisation"] == 1.0

    def test_serial_engines_report_zero(self):
        stats = EngineStats(backend="numpy", workers=1)
        assert stats.worker_utilisation == 0.0
        assert stats.delta_since(stats.as_dict())["worker_utilisation"] == 0.0


class TestWorkerConfig:
    """EngineConfig(num_workers, shard_strategy) + $REPRO_ENGINE_WORKERS."""

    def test_default_worker_count_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert default_worker_count() == 1
        assert EngineConfig().worker_count == 1
        assert QueryEngine(make_relevant(0)).num_workers == 1

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert default_worker_count() == 3
        engine = QueryEngine(make_relevant(0))
        assert engine.num_workers == 3
        assert engine.stats.workers == 3

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        engine = QueryEngine(make_relevant(0), config=EngineConfig(num_workers=2))
        assert engine.num_workers == 2

    @pytest.mark.parametrize("workers", [0, -1, -7])
    def test_zero_and_negative_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="num_workers must be >= 1"):
            EngineConfig(num_workers=workers).validate()
        with pytest.raises(ValueError, match="num_workers must be >= 1"):
            QueryEngine(make_relevant(0), config=EngineConfig(num_workers=workers))

    @pytest.mark.parametrize("raw", ["four", "2.5", "", " 0 ", "-3"])
    def test_env_var_parsing_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        if not raw.strip():
            assert default_worker_count() == 1  # unset/blank means serial
        else:
            with pytest.raises(ValueError, match="REPRO_ENGINE_WORKERS"):
                default_worker_count()
            with pytest.raises(ValueError, match="REPRO_ENGINE_WORKERS"):
                EngineConfig().validate()

    def test_whitespace_env_value_parses(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "  4  ")
        assert default_worker_count() == 4

    def test_unknown_shard_strategy_rejected(self):
        with pytest.raises(ValueError, match="Unknown shard strategy"):
            EngineConfig(shard_strategy="rows").validate()

    def test_engine_for_is_keyed_by_workers_and_strategy(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        table = make_relevant(0)
        serial = engine_for(table)
        sharded = engine_for(table, EngineConfig(num_workers=2))
        grouped = engine_for(table, EngineConfig(num_workers=2, shard_strategy="group"))
        assert serial is not sharded
        assert sharded is not grouped
        assert engine_for(table, EngineConfig(num_workers=2)) is sharded

    def test_kernels_alias_still_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            QueryEngine(make_relevant(0), kernels="python")
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "kernels=" in str(deprecations[0].message)


class TestEngineForConfig:
    def test_shared_per_table_and_config(self):
        table = make_relevant(0)
        default = engine_for(table)
        assert engine_for(table) is default
        assert engine_for(table, EngineConfig()) is default
        # A backend other than the process default gets its own engine.
        other_name = next(n for n in ("sqlite", "numpy") if n != default_backend_name())
        other = engine_for(table, EngineConfig(backend=other_name))
        assert other is not default
        assert engine_for(table, EngineConfig(backend=other_name)) is other

    def test_registry_engines_never_cross_tables(self):
        a, b = make_relevant(0), make_relevant(1)
        assert engine_for(a, EngineConfig(backend="sqlite")) is not engine_for(
            b, EngineConfig(backend="sqlite")
        )


class TestDeprecationShims:
    """`kernels=` and `engine_for(..., kernels=)` map onto EngineConfig."""

    @pytest.mark.parametrize("kernels,backend", [("vectorized", "numpy"), ("python", "python")])
    def test_query_engine_kernels_alias(self, kernels, backend):
        table = make_relevant(0)
        with pytest.warns(DeprecationWarning, match="kernels="):
            legacy = QueryEngine(table, kernels=kernels)
        assert legacy.backend_name == backend
        assert legacy.config == EngineConfig(backend=backend)
        # Identical behaviour to the explicit config spelling.
        modern = QueryEngine(table, config=EngineConfig(backend=backend))
        query = query_with("a")
        assert legacy.execute(query).column("feature") == modern.execute(query).column("feature")

    def test_engine_for_kernels_alias(self):
        table = make_relevant(0)
        with pytest.warns(DeprecationWarning, match="kernels="):
            legacy = engine_for(table, kernels="python")
        assert legacy is engine_for(table, EngineConfig(backend="python"))

    def test_unknown_kernel_mode_rejected(self):
        with pytest.raises(ValueError, match="Unknown kernel mode"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                QueryEngine(make_relevant(0), kernels="duckdb")

    def test_kernels_and_config_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            QueryEngine(make_relevant(0), kernels="python", config=EngineConfig())

    def test_config_spelling_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            QueryEngine(make_relevant(0), config=EngineConfig(backend="numpy"))
            engine_for(make_relevant(1))


class TestStateResetContract:
    """clear_caches keeps counters; stats.reset keeps identity; reset = both."""

    def warmed_engine(self, backend: str) -> QueryEngine:
        # Thread executor pinned: this class inspects coordinator-side state
        # (worker backends, materialised connections) that the process
        # executor intentionally keeps in its worker processes.
        engine = QueryEngine(
            make_relevant(0), config=EngineConfig(backend=backend, executor="thread")
        )
        engine.execute_batch(
            [
                query_with("a"),
                query_with("a", "AVG"),
                query_with("a", "MEDIAN"),  # warms the sort-order cache (numpy)
                query_with("b"),
            ]
        )
        engine.execute(query_with("a"))  # result-cache hit
        return engine

    @pytest.mark.parametrize("backend", ["numpy", "sqlite"])
    def test_clear_caches_drops_state_but_keeps_counters(self, backend):
        engine = self.warmed_engine(backend)
        before = engine.stats.as_dict()
        engine.clear_caches()
        assert engine.mask_cache_len == 0
        assert engine.result_cache_len == 0
        assert engine.sort_cache_len == 0
        # Counters are lifetime counters; only the byte gauges drop to zero
        # with the now-empty caches they describe.
        gauges = set(EngineStats.GAUGE_FIELDS)
        after = engine.stats.as_dict()
        assert {k: v for k, v in after.items() if k not in gauges} == {
            k: v for k, v in before.items() if k not in gauges
        }
        assert after["bytes_cached"] == 0
        # Re-running the same query misses every cache again (cold derived state).
        hits = engine.stats.result_hits
        engine.execute(query_with("a"))
        assert engine.stats.result_hits == hits

    def test_clear_caches_resets_backend_materialisation(self):
        engine = self.warmed_engine("sqlite")
        # With num_workers > 1 the batch may have run on per-worker backend
        # instances instead of the engine's own; all of them are derived
        # state and must be dropped by clear_caches.
        backends = [engine.backend] + engine.sharder.worker_backends
        assert any(backend._conn is not None for backend in backends)
        engine.clear_caches()
        assert engine.backend._conn is None  # re-materialised on next plan
        assert engine.sharder.worker_backends == []  # workers dropped outright
        engine.execute(query_with("a"))  # single plan: runs on the engine's backend
        assert engine.backend._conn is not None

    @pytest.mark.parametrize("backend", ["numpy", "sqlite"])
    def test_stats_reset_zeroes_counters_but_keeps_identity(self, backend):
        engine = self.warmed_engine(backend)
        cached = engine.cached_bytes
        engine.stats.reset()
        fresh = QueryEngine(
            make_relevant(1), config=EngineConfig(backend=backend, executor="thread")
        )
        # Counters and identity replay a fresh engine's; the byte gauges
        # survive the reset -- they describe the still-warm caches, which a
        # counter reset does not touch (engine.reset() clears caches first).
        gauges = set(EngineStats.GAUGE_FIELDS)
        assert {k: v for k, v in engine.stats.as_dict().items() if k not in gauges} == {
            k: v for k, v in fresh.stats.as_dict().items() if k not in gauges
        }
        assert engine.stats.backend == backend
        assert engine.stats.bytes_cached == cached

    @pytest.mark.parametrize("backend", ["numpy", "python", "sqlite"])
    def test_reset_restores_a_fresh_engine_trajectory(self, backend):
        """After reset, the counter trajectory replays a fresh engine's."""
        queries = [query_with("a"), query_with("a", "AVG"), query_with("b")]
        engine = QueryEngine(make_relevant(0), config=EngineConfig(backend=backend))
        engine.execute_batch(queries)
        engine.reset()
        engine.execute_batch(queries)
        fresh = QueryEngine(make_relevant(0), config=EngineConfig(backend=backend))
        fresh.execute_batch(queries)
        reset_counts = {
            k: v for k, v in engine.stats.as_dict().items()
            if not isinstance(v, (dict, float)) or isinstance(v, int)
        }
        fresh_counts = {
            k: v for k, v in fresh.stats.as_dict().items()
            if not isinstance(v, (dict, float)) or isinstance(v, int)
        }
        assert reset_counts == fresh_counts


class TestStatsBackendSplit:
    @pytest.mark.parametrize("backend", ["numpy", "python", "sqlite"])
    def test_backend_name_and_seconds_exposed(self, backend):
        engine = QueryEngine(make_relevant(0), config=EngineConfig(backend=backend))
        engine.execute(query_with("a"))
        stats = engine.stats.as_dict()
        assert stats["backend"] == backend
        assert set(stats["backend_seconds"]) == {backend}
        assert stats["backend_seconds"][backend] >= 0.0
        assert stats["kernel_seconds"]["SUM"] >= 0.0

    def test_sqlite_timing_stays_out_of_the_aggregation_phase(self):
        """One SQL statement fuses filter+group+aggregate, so its time must
        not pollute the aggregation-phase counter the in-process kernels
        compare on (it lands in kernel_seconds / backend_seconds instead)."""
        engine = QueryEngine(make_relevant(0), config=EngineConfig(backend="sqlite"))
        engine.execute(query_with("a"))
        assert engine.stats.seconds_aggregating == 0.0
        assert engine.stats.kernel_seconds["SUM"] > 0.0
        assert engine.stats.backend_seconds["sqlite"] > 0.0

    def test_sqlite_owns_filtering_and_grouping(self):
        """The sqlite backend never touches the engine's mask cache or group
        index -- it runs generated SQL against its own storage."""
        engine = QueryEngine(make_relevant(0), config=EngineConfig(backend="sqlite"))
        engine.execute(query_with("a"))
        assert engine.stats.mask_hits == engine.stats.mask_misses == 0
        assert engine.stats.group_index_builds == 0
        assert engine.backend.last_sql  # the plan ran as generated SQL
        assert any("GROUP BY" in sql for sql in engine.backend.last_sql)

    def test_sqlite_native_aggregates_run_in_sql(self):
        engine = QueryEngine(make_relevant(0), config=EngineConfig(backend="sqlite"))
        engine.execute(PredicateAwareQuery("SUM", "val", ("key",)))
        assert any("SUM(" in sql for sql in engine.backend.last_sql)
        engine.execute(PredicateAwareQuery("COUNT_DISTINCT", "val", ("key",)))
        assert any("COUNT(DISTINCT" in sql for sql in engine.backend.last_sql)


class TestPlanConsumingAPI:
    def test_execute_plan_matches_execute(self):
        table = make_relevant(0)
        engine = QueryEngine(table)
        query = query_with("a")
        plan = engine.plan(query)
        assert engine.execute_plan(plan).column("feature") == engine.execute(query).column("feature")
        assert engine.stats.result_hits == 1  # second call hit the plan's cache key

    def test_execute_plans_matches_execute_batch(self):
        table = make_relevant(0)
        queries = [query_with("a"), query_with("b", "AVG"), query_with("a", "MEDIAN")]
        batch = QueryEngine(table).execute_batch(queries)
        engine = QueryEngine(table)
        plans = [engine.plan(q) for q in queries]
        for got, want in zip(engine.execute_plans(plans), batch):
            assert got.column("feature") == want.column("feature")

    def test_fused_plans_are_rejected_in_single_plan_api(self):
        engine = QueryEngine(make_relevant(0))
        plan = engine.plan(query_with("a"))
        fused = plan.with_aggregates(plan.aggregates * 2)
        with pytest.raises(ValueError, match="single-aggregate"):
            engine.execute_plan(fused)
        with pytest.raises(ValueError, match="single-aggregate"):
            engine.execute_plans([fused])
