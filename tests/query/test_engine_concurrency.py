"""Thread-safety of the engine's shared state under concurrent traffic.

The shard scheduler runs plans on pool threads, and nothing stops callers
from hitting one shared engine from several threads of their own, so the
LRU predicate-mask / result caches, the group-index map and every
``EngineStats`` counter must behave under concurrency:

* **no torn stats** -- counter updates are atomic (`EngineStats.bump` /
  ``add_split`` / ``record_kernel`` serialise on one lock), so hammering
  them from many threads loses no increments;
* **no cross-thread cache corruption** -- the LRU caches keep their bound
  and their entries stay internally consistent while readers and writers
  interleave;
* **deterministic results** -- every ``execute_batch`` call returns tables
  element-wise identical to serial execution no matter how many threads
  call concurrently, on every registered backend (the sqlite backend
  serialises its shared connection internally), with exact accounting
  invariants over the result-cache counters.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends import backend_names
from repro.query.engine import EngineConfig, EngineStats, QueryEngine, _LRUCache
from repro.query.query import PredicateAwareQuery
from repro.query.sharding import EXECUTORS

BACKENDS = tuple(backend_names())
EXACT_BACKENDS = ("numpy", "python")
N_THREADS = 4
N_ROUNDS = 3


def make_relevant(seed: int, n: int = 80) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        [
            Column("key", rng.integers(0, 7, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [str(v) for v in rng.choice(list("abcd"), size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


def make_batch():
    """Eight queries over three fused plans (shared atoms across plans)."""
    queries = []
    for value in "ab":
        for func in ("SUM", "AVG", "MEDIAN"):
            queries.append(
                PredicateAwareQuery(
                    func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
                )
            )
    queries.append(PredicateAwareQuery("COUNT", "val", ("key",)))
    queries.append(PredicateAwareQuery("MODE", "val", ("key",)))
    return queries


def assert_batch_equal(actual, expected, exact: bool):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.column_names == want.column_names
        for name in want.column_names:
            left, right = got.column(name), want.column(name)
            if exact or not left.is_numeric_like:
                assert left == right
            else:
                assert np.allclose(
                    left.values, right.values, rtol=0.0, atol=1e-9, equal_nan=True
                )


class TestStatsAtomicity:
    def test_bump_loses_no_increments(self):
        stats = EngineStats()
        per_thread, threads = 2000, 8

        def hammer():
            for _ in range(per_thread):
                stats.bump(queries=1, seconds_masking=1.0)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert stats.queries == per_thread * threads
        # 1.0-increments are exact in float64 far beyond this total.
        assert stats.seconds_masking == float(per_thread * threads)

    def test_add_split_and_record_kernel_lose_no_updates(self):
        stats = EngineStats()
        per_thread, threads = 1000, 6

        def hammer(i):
            for _ in range(per_thread):
                stats.add_split("shard_seconds", f"w{i % 2}", 1.0)
                stats.record_kernel("SUM", 1.0, backend="numpy")

        workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert sum(stats.shard_seconds.values()) == float(per_thread * threads)
        assert stats.kernel_seconds["SUM"] == float(per_thread * threads)
        assert stats.vectorized_aggregations == per_thread * threads

    def test_as_dict_snapshot_is_consistent_under_writes(self):
        """Paired counters bumped atomically never tear in a snapshot."""
        stats = EngineStats()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                stats.bump(mask_hits=1, mask_misses=1)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snapshot = stats.as_dict()
                assert snapshot["mask_hits"] == snapshot["mask_misses"]
        finally:
            stop.set()
            thread.join()


class TestLRUCacheConcurrency:
    def test_bound_holds_and_no_entries_corrupt(self):
        cache = _LRUCache(maxsize=16)
        threads = 8

        def hammer(tid):
            for i in range(500):
                key = (tid % 4, i % 24)
                value = cache.get(key)
                if value is not None:
                    # An entry must always be the value its key names.
                    assert value == key
                cache.put(key, key)
            assert len(cache) <= 16

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for future in [pool.submit(hammer, t) for t in range(threads)]:
                future.result()  # surfaces assertion errors / corruption
        assert len(cache) <= 16


@pytest.mark.parametrize("backend", BACKENDS)
class TestConcurrentExecuteBatch:
    def stress(self, engine: QueryEngine, expected, exact: bool):
        queries = make_batch()
        errors = []

        def caller():
            try:
                for _ in range(N_ROUNDS):
                    assert_batch_equal(engine.execute_batch(queries), expected, exact)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]

    def expected_for(self, table: Table, backend: str):
        return QueryEngine(
            table, config=EngineConfig(backend=backend, num_workers=1)
        ).execute_batch(make_batch())

    def test_concurrent_batches_are_deterministic(self, backend):
        table = make_relevant(0)
        expected = self.expected_for(table, backend)
        engine = QueryEngine(table, config=EngineConfig(backend=backend, num_workers=1))
        self.stress(engine, expected, exact=True)  # same engine: bit-identical
        # Accounting invariant: every query of every batch was either a
        # result-cache hit or booked exactly one miss -- torn counters would
        # break this sum even when the interleaving varies run to run.
        stats = engine.stats
        total = N_THREADS * N_ROUNDS * len(make_batch())
        assert stats.result_hits + stats.result_misses == total
        assert stats.queries == stats.result_misses
        assert stats.batches == N_THREADS * N_ROUNDS

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_concurrent_batches_with_plan_sharding(self, backend, executor):
        table = make_relevant(1)
        expected = self.expected_for(table, backend)
        engine = QueryEngine(
            table,
            config=EngineConfig(
                backend=backend, num_workers=3, shard_strategy="plan", executor=executor
            ),
        )
        try:
            self.stress(engine, expected, exact=backend in EXACT_BACKENDS)
            # Result accounting is coordinator-side in *every* executor mode,
            # so the exactness invariant holds for process pools too.
            stats = engine.stats
            total = N_THREADS * N_ROUNDS * len(make_batch())
            assert stats.result_hits + stats.result_misses == total
            assert stats.queries == stats.result_misses
        finally:
            engine.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_concurrent_batches_with_group_sharding(self, backend, executor):
        table = make_relevant(2)
        expected = self.expected_for(table, backend)
        engine = QueryEngine(
            table,
            config=EngineConfig(
                backend=backend, num_workers=3, shard_strategy="group", executor=executor
            ),
        )
        try:
            self.stress(engine, expected, exact=backend in EXACT_BACKENDS)
        finally:
            engine.close()

    def test_mask_cache_stays_bounded_and_correct(self, backend):
        """Eviction churn from many threads never corrupts mask reuse."""
        if backend == "sqlite":
            pytest.skip("sqlite owns its filtering; the engine mask cache is idle")
        table = make_relevant(3)
        engine = QueryEngine(
            table,
            config=EngineConfig(backend=backend, num_workers=1, mask_cache_size=2),
        )
        expected = self.expected_for(table, backend)
        self.stress(engine, expected, exact=True)
        assert engine.mask_cache_len <= 2


class TestMemoryBudgetConcurrency:
    """The global byte budget holds under concurrent traffic: no interleaving
    of hits, puts and cross-cache evictions ever leaves the caches over
    budget or the byte accounting out of sync with the cache contents."""

    BUDGET = 8 * 1024

    def make_engine(self):
        return QueryEngine(
            make_relevant(4, n=2000),
            config=EngineConfig(
                backend="numpy",
                num_workers=1,
                executor="thread",
                memory_budget_bytes=self.BUDGET,
            ),
        )

    def budget_batch(self):
        return [
            PredicateAwareQuery(
                func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
            )
            for value in "abcd"
            for func in ("SUM", "MEDIAN", "MAD")
        ]

    def test_budget_never_exceeded_under_concurrent_traffic(self):
        engine = self.make_engine()
        queries = self.budget_batch()
        errors = []

        def caller():
            try:
                for _ in range(N_ROUNDS):
                    engine.execute_batch(queries)
                    # Sampled mid-flight from every caller: the budget is a
                    # hard ceiling, not an eventually-consistent target.
                    assert engine.budget.total_bytes <= self.BUDGET
                    assert engine.cached_bytes <= self.BUDGET
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        # The workload genuinely overflows the budget (sort orders alone are
        # ~4 KiB per predicate value), so evictions must have happened.
        assert engine.stats.budget_evictions > 0
        # Byte accounting stayed exact: the incremental `.bytes` totals match
        # a from-scratch recomputation over the surviving entries.
        with engine.budget.lock:
            for cache in engine.budget._caches:
                recomputed = sum(nbytes for _, nbytes in cache._data.values())
                assert cache.bytes == recomputed
        assert engine.cached_bytes == engine.budget.total_bytes

    def test_clear_caches_zeroes_gauges_keeps_eviction_counter(self):
        engine = self.make_engine()
        engine.execute_batch(self.budget_batch())
        evictions = engine.stats.budget_evictions
        assert evictions > 0
        engine.clear_caches()
        assert engine.cached_bytes == 0
        assert engine.stats.bytes_cached == 0
        assert engine.stats.budget_evictions == evictions  # lifetime counter
