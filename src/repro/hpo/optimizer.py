"""Optimiser interface: suggest / observe / minimize."""

from __future__ import annotations

from typing import Callable, Dict

from repro.hpo.space import SearchSpace
from repro.hpo.trial import Trial, TrialHistory


class Optimizer:
    """Base class for sequential model-based (and random) optimisers.

    The protocol is the classic ask/tell loop:

    >>> params = optimizer.suggest()
    >>> value = objective(params)
    >>> optimizer.observe(params, value)

    ``minimize`` drives the loop for a fixed number of iterations and returns
    the best trial.  Objective values are always *minimised*; callers that
    maximise a score (e.g. mutual information in the warm-up phase) negate it.
    """

    def __init__(self, space: SearchSpace, seed: int | None = None):
        self.space = space
        self.seed = seed
        self.history = TrialHistory()

    def suggest(self) -> Dict[str, object]:
        raise NotImplementedError

    def observe(self, params: Dict[str, object], value: float, **metadata) -> None:
        """Record an evaluated point."""
        self.space.validate(params)
        self.history.add(Trial(params=dict(params), value=float(value), metadata=metadata))

    def minimize(self, objective: Callable[[Dict[str, object]], float], n_iter: int) -> Trial:
        """Run the ask/tell loop for *n_iter* evaluations; return the best trial."""
        for _ in range(n_iter):
            params = self.suggest()
            value = objective(params)
            self.observe(params, value)
        return self.history.best(minimize=True)

    def warm_start(self, trials) -> None:
        """Seed the optimiser's history with externally evaluated trials."""
        for trial in trials:
            self.history.add(Trial(params=dict(trial.params), value=float(trial.value), metadata=dict(trial.metadata)))
