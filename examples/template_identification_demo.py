"""Inside the Query Template Identification component.

The paper's second contribution is identifying *which* attribute combination
should form the WHERE clause when the user cannot specify it.  This example
runs the beam search on the synthetic Student dataset, prints the explored
tree layer by layer, and shows the effect of the two optimisations (low-cost
proxy and performance-predictor pruning) on the number of evaluated templates.

Run with:  python examples/template_identification_demo.py
"""

from __future__ import annotations

import time

from repro.core.config import FeatAugConfig
from repro.core.evaluation import ModelEvaluator
from repro.core.template_identification import QueryTemplateIdentifier
from repro.datasets import load_dataset
from repro.experiments.reporting import render_table
from repro.ml.model_zoo import make_model
from repro.ml.preprocessing import train_valid_test_split


def run_identification(bundle, use_proxy: bool, use_predictor: bool):
    config = FeatAugConfig(
        beam_width=2,
        max_template_depth=3,
        template_proxy_iterations=10,
        template_real_iterations=4,
        use_low_cost_proxy=use_proxy,
        use_template_predictor=use_predictor,
        seed=0,
    )
    train, valid, _ = train_valid_test_split(bundle.train, (0.75, 0.25, 0.0), seed=0)
    evaluator = ModelEvaluator(
        train, valid, label=bundle.label_col,
        base_features=[c for c in bundle.train.column_names if c not in bundle.keys + [bundle.label_col]],
        model=make_model("LR", bundle.task), task=bundle.task, relevant_table=bundle.relevant,
    )
    identifier = QueryTemplateIdentifier(
        bundle.relevant, evaluator, agg_attrs=bundle.agg_attrs, keys=bundle.keys, config=config
    )
    start = time.perf_counter()
    top = identifier.identify(bundle.candidate_attrs, n_templates=5)
    elapsed = time.perf_counter() - start
    return top, identifier.report, elapsed


def main() -> None:
    bundle = load_dataset("student", scale=0.25, seed=0)
    print(f"Candidate attributes for the WHERE clause: {bundle.candidate_attrs}")
    print(f"Search space size (2^|attr|):             {2 ** len(bundle.candidate_attrs)} templates\n")

    top, report, elapsed = run_identification(bundle, use_proxy=True, use_predictor=True)

    print("Templates explored by the beam search (layer = WHERE-clause size):")
    rows = [
        [record.layer, " AND ".join(record.template.predicate_attrs), record.score]
        for record in sorted(report.evaluated, key=lambda r: (r.layer, -r.score))
    ]
    print(render_table(["layer", "attribute combination", "proxy score (MI)"], rows))

    print("\nTop identified templates:")
    for record in top:
        print(f"  score={record.score:.4f}  P={list(record.template.predicate_attrs)}")

    print("\nEffect of the two optimisations on identification cost:")
    comparison = []
    for label, use_proxy, use_predictor in (
        ("beam search, real model evaluation", False, False),
        ("+ Opt1: low-cost MI proxy", True, False),
        ("+ Opt2: performance predictor", True, True),
    ):
        _, variant_report, variant_elapsed = run_identification(bundle, use_proxy, use_predictor)
        comparison.append([label, variant_report.n_evaluated_templates, variant_elapsed])
    print(render_table(["variant", "templates evaluated", "seconds"], comparison))


if __name__ == "__main__":
    main()
