"""Synthetic Tmall: repeat-buyer prediction from user behaviour logs.

The real Tmall dataset (IJCAI-15) predicts whether a customer becomes a
repeat buyer of a merchant from a user-behaviour log (clicks, carts,
purchases) joined with a user-profile table.  The synthetic version keeps the
same shape: the training table has ``(user_id, merchant_id)`` pairs with age
and gender features and a binary label; the relevant table is a behaviour log
with action type, item category, brand, price and timestamp.

Planted signal: the number of *purchase* actions at the target merchant in
the last 30 days drives the repeat-buyer label, so a predicate on
``action = 'purchase'`` and a recent timestamp range is needed to expose it.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.column import DType
from repro.datasets.base import DatasetBundle
from repro.datasets.synthetic import (
    binary_label_from_signal,
    build_table,
    choice_column,
    grouped_sum,
    make_entity_ids,
    random_timestamps,
    recent_cutoff,
)

ACTIONS = ["click", "cart", "favourite", "purchase"]
CATEGORIES = ["electronics", "fashion", "home", "beauty", "sports", "grocery"]
BRANDS = [f"brand_{i}" for i in range(12)]


def make_tmall(n_users: int = 1200, events_per_user: int = 20, seed: int = 0) -> DatasetBundle:
    """Generate the synthetic Tmall repeat-buyer dataset."""
    rng = np.random.default_rng(seed)
    user_ids = make_entity_ids("user", n_users)
    merchant_ids = [f"merchant_{int(rng.integers(0, 50)):03d}" for _ in range(n_users)]

    age = rng.integers(18, 70, size=n_users).astype(np.float64)
    gender = choice_column(rng, n_users, ["female", "male"])

    n_events = n_users * events_per_user
    user_index = {u: i for i, u in enumerate(user_ids)}
    event_users = list(rng.choice(user_ids, size=n_events))
    event_merchants = [
        merchant_ids[user_index[u]]
        if rng.random() < 0.6
        else f"merchant_{int(rng.integers(0, 50)):03d}"
        for u in event_users
    ]
    action = choice_column(rng, n_events, ACTIONS, p=[0.55, 0.2, 0.1, 0.15])
    category = choice_column(rng, n_events, CATEGORIES)
    brand = choice_column(rng, n_events, BRANDS)
    price = np.round(rng.lognormal(3.0, 0.8, size=n_events), 2)
    timestamps = random_timestamps(rng, n_events)

    # Planted signal: purchases at the user's own merchant in the last 30 days.
    cutoff = recent_cutoff(30)
    own_merchant = np.asarray(
        [event_merchants[i] == merchant_ids[user_index[event_users[i]]] for i in range(n_events)]
    )
    purchase_mask = (np.asarray(action) == "purchase") & (timestamps >= cutoff) & own_merchant
    signal = grouped_sum(user_ids, np.asarray(event_users, dtype=object), np.ones(n_events), purchase_mask)

    label = binary_label_from_signal(rng, signal, base_contribution=age, positive_rate=0.35)

    train = build_table(
        {
            "user_id": (user_ids, DType.CATEGORICAL),
            "merchant_id": (merchant_ids, DType.CATEGORICAL),
            "age": (age, DType.NUMERIC),
            "gender": (gender, DType.CATEGORICAL),
            "label": (label, DType.NUMERIC),
        }
    )
    relevant = build_table(
        {
            "user_id": (event_users, DType.CATEGORICAL),
            "merchant_id": (event_merchants, DType.CATEGORICAL),
            "action": (action, DType.CATEGORICAL),
            "category": (category, DType.CATEGORICAL),
            "brand": (brand, DType.CATEGORICAL),
            "price": (price, DType.NUMERIC),
            "timestamp": (timestamps, DType.DATETIME),
        }
    )
    return DatasetBundle(
        name="tmall",
        train=train,
        relevant=relevant,
        keys=["user_id"],
        label_col="label",
        task="binary",
        metric_name="auc",
        candidate_attrs=["action", "category", "brand", "price", "timestamp"],
        agg_attrs=["price", "timestamp"],
        description="Repeat-buyer prediction from user behaviour logs (synthetic Tmall).",
    )
