"""Engine lifecycle under concurrency: registry races, empty batches,
close/re-open.

The three PR 9 engine satellites, pinned:

* **`engine_for` first-access race** -- two threads looking up the same
  (table, config) slot concurrently may both construct a candidate engine
  (construction happens outside the global registry lock so unrelated
  tables never serialise on it), but the slot is double-checked before
  insertion: every caller gets the **same** registered engine and the
  race's loser ``close()``s its candidate immediately, so no backend
  resource -- sqlite connection, worker pool, shm segment -- leaks.
* **Empty batches are free** -- ``execute_batch([])`` / ``execute_plans([])``
  return ``[]`` without touching the backend, syncing the table or bumping
  any counter (``batches`` counts rounds that carried queries), on every
  backend / executor / strategy combination.  A closed engine stays closed.
* **Close / lazy re-open** -- ``close()`` releases everything; the next
  execution transparently re-opens the engine with results identical to a
  never-closed one, across executors -- including the process executor's
  shared-memory re-publication -- and lifetime counters survive the cycle.
"""

import glob
import os
import threading

import numpy as np
import pytest

import repro.query.engine as engine_module
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends import backend_names
from repro.query.engine import EngineConfig, QueryEngine, engine_for
from repro.query.query import PredicateAwareQuery
from repro.query.sharding import EXECUTORS, SHARD_STRATEGIES

BACKENDS = tuple(backend_names())


def make_relevant(seed: int, n: int = 60) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        [
            Column("key", rng.integers(0, 5, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [str(v) for v in rng.choice(list("abc"), size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


def small_batch():
    return [
        PredicateAwareQuery(
            func, "val", ("key",), {"cat": "a"}, {"cat": DType.CATEGORICAL}
        )
        for func in ("SUM", "COUNT", "MEDIAN")
    ]


def multi_plan_batch():
    """Six queries over three fused plans -- enough distinct predicates that
    plan-level sharding genuinely dispatches to the worker pool."""
    return [
        PredicateAwareQuery(
            func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
        )
        for value in "abc"
        for func in ("SUM", "COUNT")
    ]


def assert_tables_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.column_names == want.column_names
        for name in want.column_names:
            assert got.column(name) == want.column(name)


class TestEngineForRace:
    def test_barrier_start_yields_one_engine_and_closes_the_loser(
        self, monkeypatch
    ):
        """Both threads are forced through construction concurrently (the
        barrier inside ``__init__`` only releases once both candidates
        exist), so exactly one insertion can win -- the regression this
        pins is two engines racing into one registry slot."""
        n_threads = 2
        construction_barrier = threading.Barrier(n_threads)
        instances = []

        class TrackedEngine(QueryEngine):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                instances.append(self)
                construction_barrier.wait(timeout=10)

        monkeypatch.setattr(engine_module, "QueryEngine", TrackedEngine)
        table = make_relevant(0)
        config = EngineConfig(backend="numpy", executor="thread")
        results = [None] * n_threads
        errors = []
        start_barrier = threading.Barrier(n_threads)

        def lookup(slot):
            try:
                start_barrier.wait(timeout=10)
                results[slot] = engine_for(table, config=config)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=lookup, args=(slot,)) for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        # Every caller got the same registered engine...
        assert results[0] is results[1]
        # ...although the race really constructed two candidates...
        assert len(instances) == n_threads
        winner = results[0]
        losers = [engine for engine in instances if engine is not winner]
        assert len(losers) == n_threads - 1
        # ...and the loser was closed so nothing it owns can leak.
        assert all(loser.closed for loser in losers)
        assert not winner.closed

    def test_losing_sqlite_candidate_releases_its_connection(self, monkeypatch):
        """Same race with a storage-owning backend: the loser's close must
        actually release the backend resource, not just mark a flag."""
        construction_barrier = threading.Barrier(2)
        instances = []

        class TrackedEngine(QueryEngine):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                # Materialise the connection so there is something to leak.
                self.backend._ensure_materialized()
                instances.append(self)
                construction_barrier.wait(timeout=10)

        monkeypatch.setattr(engine_module, "QueryEngine", TrackedEngine)
        table = make_relevant(1)
        config = EngineConfig(backend="sqlite", executor="thread")
        results = [None, None]
        errors = []

        def lookup(slot):
            try:
                results[slot] = engine_for(table, config=config)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=lookup, args=(slot,)) for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        assert results[0] is results[1]
        losers = [engine for engine in instances if engine is not results[0]]
        assert len(losers) == 1
        assert losers[0].backend._conn is None  # connection released
        assert results[0].backend._conn is not None  # winner untouched

    def test_sequential_lookups_construct_exactly_once(self, monkeypatch):
        constructed = []
        real_engine = QueryEngine

        class CountingEngine(real_engine):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                constructed.append(self)

        monkeypatch.setattr(engine_module, "QueryEngine", CountingEngine)
        table = make_relevant(2)
        config = EngineConfig(backend="numpy", executor="thread")
        first = engine_for(table, config=config)
        second = engine_for(table, config=config)
        assert first is second
        assert len(constructed) == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestEmptyBatch:
    def test_empty_batch_is_free_serial(self, backend):
        engine = QueryEngine(
            make_relevant(3), config=EngineConfig(backend=backend, num_workers=1)
        )
        before = engine.stats.as_dict()
        assert engine.execute_batch([]) == []
        assert engine.execute_plans([]) == []
        assert engine.execute_plans_deduped([]) == ([], 0)
        assert engine.stats.as_dict() == before  # no counter drift at all

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("shard_strategy", SHARD_STRATEGIES)
    def test_empty_batch_is_free_sharded(self, backend, executor, shard_strategy):
        engine = QueryEngine(
            make_relevant(3),
            config=EngineConfig(
                backend=backend,
                num_workers=2,
                shard_strategy=shard_strategy,
                executor=executor,
            ),
        )
        try:
            before = engine.stats.as_dict()
            assert engine.execute_batch([]) == []
            assert engine.stats.as_dict() == before
        finally:
            engine.close()

    def test_empty_batch_does_not_reopen_a_closed_engine(self, backend):
        """No backend touch also means no lazy re-open: a closed engine
        handed an empty batch stays closed (and pays nothing)."""
        engine = QueryEngine(
            make_relevant(3), config=EngineConfig(backend=backend, num_workers=1)
        )
        engine.execute_batch(small_batch())
        engine.close()
        assert engine.execute_batch([]) == []
        assert engine.closed

    def test_empty_batch_does_not_sync_a_stale_table(self, backend):
        """The empty path returns before ``sync_with_table``: version drift
        is observed by the next real execution, not by a no-op."""
        table = make_relevant(3)
        engine = QueryEngine(table, config=EngineConfig(backend=backend, num_workers=1))
        engine.execute_batch(small_batch())
        synced = engine._synced_version
        table.append_rows({"key": [1.0], "cat": ["a"], "val": [0.25]})
        engine.execute_batch([])
        assert engine._synced_version == synced  # untouched by the no-op
        engine.execute_batch(small_batch())
        assert engine._synced_version == table.version


@pytest.mark.parametrize("executor", EXECUTORS)
class TestClosedEngineReopen:
    def test_batch_on_closed_engine_reopens_transparently(self, executor):
        table = make_relevant(4)
        queries = multi_plan_batch()  # multi-plan: sharding really dispatches
        expected = QueryEngine(
            table, config=EngineConfig(backend="numpy", num_workers=1)
        ).execute_batch(queries)
        engine = QueryEngine(
            table,
            config=EngineConfig(backend="numpy", num_workers=2, executor=executor),
        )
        try:
            assert_tables_equal(engine.execute_batch(queries), expected)
            engine.close()
            assert engine.closed
            # The documented lazy re-creation path: the next batch re-opens
            # the engine -- worker pools and (process executor) the
            # shared-memory image are re-published on demand.
            assert_tables_equal(engine.execute_batch(queries), expected)
            assert not engine.closed
        finally:
            engine.close()

    def test_counters_survive_a_close_reopen_cycle(self, executor):
        engine = QueryEngine(
            make_relevant(4),
            config=EngineConfig(backend="numpy", num_workers=2, executor=executor),
        )
        try:
            engine.execute_batch(small_batch())
            queries_before = engine.stats.queries
            batches_before = engine.stats.batches
            assert queries_before > 0
            engine.close()
            engine.execute_batch(small_batch())
            # Lifetime counters accumulate across the cycle (the re-run
            # re-executes: close dropped the result cache).
            assert engine.stats.queries == 2 * queries_before
            assert engine.stats.batches == batches_before + 1
        finally:
            engine.close()

    def test_single_query_reopens_too(self, executor):
        engine = QueryEngine(
            make_relevant(4),
            config=EngineConfig(backend="numpy", num_workers=2, executor=executor),
        )
        try:
            query = small_batch()[0]
            first = engine.execute(query)
            engine.close()
            again = engine.execute(query)
            assert again.column_names == first.column_names
            for name in first.column_names:
                assert again.column(name) == first.column(name)
            assert not engine.closed
        finally:
            engine.close()


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not mounted"
)
class TestProcessExecutorShmRepublication:
    def shm_segments(self):
        return set(glob.glob(f"/dev/shm/repro_shm_{os.getpid()}_*"))

    def test_close_unlinks_and_reopen_republishes(self):
        before = self.shm_segments()
        table = make_relevant(5)
        queries = multi_plan_batch()
        expected = QueryEngine(
            table, config=EngineConfig(backend="numpy", num_workers=1)
        ).execute_batch(queries)
        engine = QueryEngine(
            table,
            config=EngineConfig(backend="numpy", num_workers=2, executor="process"),
        )
        try:
            assert_tables_equal(engine.execute_batch(queries), expected)
            assert self.shm_segments() - before  # image published
            engine.close()
            assert self.shm_segments() == before  # ...and unlinked on close
            # Re-open: a fresh image is published and results are identical.
            assert_tables_equal(engine.execute_batch(queries), expected)
            assert self.shm_segments() - before
        finally:
            engine.close()
        assert self.shm_segments() == before  # nothing leaked
