"""The vectorized grouped-kernel backend (the default execution path).

This is the former ``kernels="vectorized"`` branch of the engine moved behind
the :class:`~repro.query.backends.base.ExecutionBackend` seam: every
aggregate is computed for all groups at once from the factorized group codes
(:mod:`repro.dataframe.grouped_kernels` -- ``np.bincount`` for the
accumulation family, one sort + segment boundaries for the order-statistics
and distribution families).  Results are **bit-for-bit identical** to the
per-group Python reference thanks to the accumulation-order contract in
:mod:`repro.dataframe.aggregates`.

The plan scaffolding (group index, masks, filtered groups, output assembly)
is shared with the python backend via
:class:`~repro.query.backends.base.GroupIndexBackend`; shared derived state
(predicate-mask cache, factorized group index, per-attribute aggregable
arrays) lives on the owning engine so it is reused across plans and across
the in-process backends.

Under ``EngineConfig(shard_strategy="group", num_workers=N)`` a single heavy
plan is split into contiguous group-code ranges
(:class:`~repro.query.sharding.GroupRangeShards`) and the kernels run once
per range on the engine's worker pool -- still bit-identical, because groups
never straddle a range boundary (see :mod:`repro.query.sharding`).  The
per-plan row selections are memoised in the shared plan context so all
aggregates of one fused plan reuse them.
"""

from __future__ import annotations

from repro.dataframe.grouped_kernels import GroupedAggregator
from repro.query.backends.base import GroupIndexBackend, register_backend
from repro.query.sharding import GroupRangeShards, ShardedGroupedAggregator


@register_backend("numpy")
class NumpyBackend(GroupIndexBackend):
    """Vectorized grouped-aggregation kernels over the engine's group index."""

    def prepare_attr(self, attr: str, context: dict) -> GroupedAggregator:
        row_idx = context["row_idx"]
        values = self.engine.agg_values(attr, row_idx)
        if row_idx is not None:
            values = values[row_idx]
        sharder = self.engine.sharder
        if sharder.group_range_active(context["n_groups"]):
            shards = context.get("group_shards")
            if shards is None:
                shards = GroupRangeShards(
                    context["codes"], context["n_groups"], sharder.num_workers
                )
                context["group_shards"] = shards
            return ShardedGroupedAggregator(shards, values, sharder)
        return GroupedAggregator(context["codes"], values, context["n_groups"])

    def aggregate(self, func: str, prepared):
        return prepared.compute(func)
