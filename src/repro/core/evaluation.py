"""Downstream-model evaluation of candidate features (Problem 1's objective).

The evaluator is constructed once per search with the training/validation
split, the label and the base feature columns.  The base design matrices are
vectorised and cached; scoring a candidate query then only requires executing
the query, joining its feature onto both splits and retraining the (cloned)
downstream model with one extra column.  The returned *loss* is minimised by
the search:

* binary classification  -> ``1 - AUC``
* multi-class            -> ``1 - macro F1``
* regression             -> ``RMSE``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dataframe.table import Table
from repro.ml.base import BaseEstimator, is_classifier
from repro.ml.metrics import f1_score_macro, rmse, roc_auc_score
from repro.ml.preprocessing import LabelEncoder, TableVectorizer
from repro.query.augment import augment_training_table
from repro.query.engine import QueryEngine, resolve_engine
from repro.query.query import PredicateAwareQuery


@dataclass
class EvaluationResult:
    """Loss (minimised by the search) and the paper's reported metric."""

    loss: float
    metric: float
    metric_name: str


class ModelEvaluator:
    """Train/evaluate the downstream model with extra candidate features."""

    def __init__(
        self,
        train_table: Table,
        valid_table: Table,
        label: str,
        base_features: Sequence[str],
        model: BaseEstimator,
        task: str,
        relevant_table: Table | None = None,
        engine: QueryEngine | None = None,
    ):
        if task not in ("binary", "multiclass", "regression"):
            raise ValueError(f"Unknown task {task!r}")
        self.task = task
        self.label = label
        self.model = model
        if relevant_table is None and engine is not None:
            relevant_table = engine.table
        self.relevant_table = relevant_table
        self._engine = engine
        self._train_table = train_table
        self._valid_table = valid_table
        self.base_features = [f for f in base_features if f != label]

        self._vectorizer = TableVectorizer(self.base_features)
        if self.base_features:
            self._X_train_base = self._vectorizer.fit_transform(train_table)
            self._X_valid_base = self._vectorizer.transform(valid_table)
        else:
            self._X_train_base = np.zeros((train_table.num_rows, 0))
            self._X_valid_base = np.zeros((valid_table.num_rows, 0))

        self._label_encoder: LabelEncoder | None = None
        self.y_train = self._encode_label(train_table, fit=True)
        self.y_valid = self._encode_label(valid_table, fit=False)

    # ------------------------------------------------------------------
    # Label handling
    # ------------------------------------------------------------------
    def _encode_label(self, table: Table, fit: bool) -> np.ndarray:
        column = table.column(self.label)
        if column.is_numeric_like:
            return column.values.astype(np.float64)
        if fit:
            self._label_encoder = LabelEncoder().fit(column.values)
        return self._label_encoder.transform(column.values)

    # ------------------------------------------------------------------
    # Feature materialisation
    # ------------------------------------------------------------------
    def _resolve_engine(
        self, relevant_table: Table | None, engine: QueryEngine | None
    ) -> QueryEngine:
        """The query engine to execute against, shared per relevant table.

        Engines are keyed by table identity, so evaluating against a held-out
        relevant table never reuses masks or indexes computed on another one.
        """
        relevant = relevant_table if relevant_table is not None else self.relevant_table
        if relevant is None:
            if engine is not None:
                return engine
            raise ValueError("No relevant table available to execute the query against")
        if engine is None and self._engine is not None and self._engine.table is relevant:
            return self._engine
        return resolve_engine(relevant, engine)

    def feature_vectors_for_query(
        self,
        query: PredicateAwareQuery,
        relevant_table: Table | None = None,
        engine: QueryEngine | None = None,
    ):
        """Feature values for the query aligned to the train and valid rows."""
        train_vecs, valid_vecs = self.feature_vectors_for_queries(
            [query], relevant_table, engine=engine
        )
        return train_vecs[0], valid_vecs[0]

    def feature_vectors_for_queries(
        self,
        queries: Sequence[PredicateAwareQuery],
        relevant_table: Table | None = None,
        engine: QueryEngine | None = None,
    ):
        """Batched variant: one engine pass, then per-query train/valid joins.

        Queries execute through the engine's configured execution backend
        (the vectorized grouped kernels by default; see
        :mod:`repro.query.backends`), and the feature joins go through the
        vectorized ``Table.left_join`` key matching (factorized codes +
        first-occurrence index map), so neither phase loops over rows in
        Python.
        """
        resolved = self._resolve_engine(relevant_table, engine)
        feature_tables = resolved.execute_batch(list(queries))
        train_vecs: List[np.ndarray] = []
        valid_vecs: List[np.ndarray] = []
        for query, feature_table in zip(queries, feature_tables):
            train_aug = augment_training_table(
                self._train_table, feature_table, query.keys, query.feature_name, "__candidate__"
            )
            valid_aug = augment_training_table(
                self._valid_table, feature_table, query.keys, query.feature_name, "__candidate__"
            )
            train_vecs.append(train_aug.column("__candidate__").values)
            valid_vecs.append(valid_aug.column("__candidate__").values)
        return train_vecs, valid_vecs

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def evaluate_matrix(self, extra_train: np.ndarray | None, extra_valid: np.ndarray | None) -> EvaluationResult:
        """Train the model on base features plus the given extra columns."""
        X_train = self._stack(self._X_train_base, extra_train)
        X_valid = self._stack(self._X_valid_base, extra_valid)
        X_train, X_valid = _impute_pair(X_train, X_valid)
        model = self.model.clone()
        model.fit(X_train, self.y_train)
        return self._score(model, X_valid)

    def evaluate_queries(
        self,
        queries: Sequence[PredicateAwareQuery],
        relevant_table: Table | None = None,
        engine: QueryEngine | None = None,
    ) -> EvaluationResult:
        """Evaluate the model with every query's feature added at once."""
        extra_train_cols, extra_valid_cols = self.feature_vectors_for_queries(
            list(queries), relevant_table, engine=engine
        )
        extra_train = np.column_stack(extra_train_cols) if extra_train_cols else None
        extra_valid = np.column_stack(extra_valid_cols) if extra_valid_cols else None
        return self.evaluate_matrix(extra_train, extra_valid)

    def evaluate_query(
        self,
        query: PredicateAwareQuery,
        relevant_table: Table | None = None,
        engine: QueryEngine | None = None,
    ) -> EvaluationResult:
        """Evaluate the model with a single query's feature added."""
        return self.evaluate_queries([query], relevant_table, engine=engine)

    def evaluate_baseline(self) -> EvaluationResult:
        """Evaluate the model on the base features alone (no augmentation)."""
        return self.evaluate_matrix(None, None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _stack(base: np.ndarray, extra: np.ndarray | None) -> np.ndarray:
        if extra is None:
            return base.copy()
        extra = np.asarray(extra, dtype=np.float64)
        if extra.ndim == 1:
            extra = extra.reshape(-1, 1)
        return np.hstack([base, extra])

    def _score(self, model: BaseEstimator, X_valid: np.ndarray) -> EvaluationResult:
        if self.task == "regression":
            pred = model.predict(X_valid)
            value = rmse(self.y_valid, pred)
            return EvaluationResult(loss=value, metric=value, metric_name="rmse")
        if self.task == "binary":
            if hasattr(model, "predict_proba"):
                proba = model.predict_proba(X_valid)
                positive = proba[:, -1] if proba.ndim == 2 else proba
            else:  # pragma: no cover - every classifier has predict_proba
                positive = model.predict(X_valid)
            auc = roc_auc_score(self.y_valid, positive)
            return EvaluationResult(loss=1.0 - auc, metric=auc, metric_name="auc")
        pred = model.predict(X_valid)
        f1 = f1_score_macro(self.y_valid, pred)
        return EvaluationResult(loss=1.0 - f1, metric=f1, metric_name="f1")


def _impute_pair(X_train: np.ndarray, X_valid: np.ndarray):
    """Replace NaNs with the training-column mean in both matrices."""
    X_train = X_train.copy()
    X_valid = X_valid.copy()
    for j in range(X_train.shape[1]):
        column = X_train[:, j]
        finite = column[~np.isnan(column)]
        fill = float(finite.mean()) if finite.size else 0.0
        column[np.isnan(column)] = fill
        X_train[:, j] = column
        valid_column = X_valid[:, j]
        valid_column[np.isnan(valid_column)] = fill
        X_valid[:, j] = valid_column
    return X_train, X_valid
