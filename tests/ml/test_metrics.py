"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score, f1_score_macro, log_loss, rmse, roc_auc_score


class TestAUC:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=5000)
        s = rng.uniform(size=5000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_returns_half(self):
        assert roc_auc_score([1, 1, 1], [0.2, 0.3, 0.4]) == 0.5

    def test_invariant_to_monotonic_transform(self):
        y = [0, 1, 0, 1, 1, 0]
        s = np.asarray([0.2, 0.7, 0.3, 0.9, 0.6, 0.1])
        assert roc_auc_score(y, s) == roc_auc_score(y, s * 10 - 3)


class TestAccuracy:
    def test_all_correct(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half_correct(self):
        assert accuracy_score([1, 0], [1, 1]) == 0.5

    def test_empty(self):
        assert accuracy_score([], []) == 0.0


class TestF1Macro:
    def test_perfect(self):
        assert f1_score_macro([0, 1, 2], [0, 1, 2]) == 1.0

    def test_all_wrong(self):
        assert f1_score_macro([0, 0, 1, 1], [1, 1, 0, 0]) == 0.0

    def test_macro_averages_over_true_classes(self):
        y_true = [0, 0, 0, 1]
        y_pred = [0, 0, 0, 0]
        # class 0: precision 0.75, recall 1 -> f1 = 6/7 ; class 1: f1 = 0
        assert f1_score_macro(y_true, y_pred) == pytest.approx((6 / 7) / 2)

    def test_multiclass_range(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 4, size=200)
        p = rng.integers(0, 4, size=200)
        assert 0.0 <= f1_score_macro(y, p) <= 1.0


class TestRMSE:
    def test_zero_for_exact(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_scale_invariance_shape(self):
        y = np.asarray([1.0, 2.0, 3.0])
        assert rmse(y, y + 1) == pytest.approx(1.0)


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert log_loss([1, 0], [0.99, 0.01]) < 0.02

    def test_confident_wrong_is_large(self):
        assert log_loss([1, 0], [0.01, 0.99]) > 4.0

    def test_clipping_avoids_infinity(self):
        assert np.isfinite(log_loss([1], [0.0]))
