"""Unit tests for the SQL Query Generation component (TPE + warm-up)."""

import numpy as np
import pytest

from repro.core.config import FeatAugConfig
from repro.core.evaluation import ModelEvaluator
from repro.core.sql_generation import SQLQueryGenerator
from repro.dataframe.table import Table
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import train_valid_test_split
from repro.query.template import QueryTemplate


@pytest.fixture(scope="module")
def planted_setup():
    """Label depends on SUM(amount) restricted to category == 'target'.

    Only a predicate-aware query can expose the full signal, which is the
    scenario the SQL-generation component is designed for.
    """
    rng = np.random.default_rng(7)
    n_users = 260
    users = [f"u{i}" for i in range(n_users)]
    base = rng.normal(size=n_users)
    n_events = n_users * 8
    event_users = list(rng.choice(users, size=n_events))
    categories = list(rng.choice(["target", "other_a", "other_b", "other_c"], size=n_events))
    amount = rng.normal(1.0, 1.0, size=n_events)
    totals = {u: 0.0 for u in users}
    for u, c, a in zip(event_users, categories, amount):
        if c == "target":
            totals[u] += a
    signal = np.asarray([totals[u] for u in users])
    label = (signal + 0.2 * base + rng.normal(0, 0.5, size=n_users) > np.median(signal)).astype(float)

    train_table = Table.from_dict({"uid": users, "base": base, "label": label})
    relevant = Table.from_dict({"uid": event_users, "category": categories, "amount": amount})
    train, valid, _ = train_valid_test_split(train_table, (0.7, 0.3, 0.0), seed=0)
    evaluator = ModelEvaluator(
        train, valid, label="label", base_features=["base"],
        model=LogisticRegression(n_iter=120), task="binary", relevant_table=relevant,
    )
    template = QueryTemplate(["SUM", "AVG", "COUNT"], ["amount"], ["category"], ["uid"])
    return template, relevant, evaluator


@pytest.fixture
def fast_generation_config():
    return FeatAugConfig(
        warmup_iterations=15,
        warmup_top_k=5,
        search_iterations=8,
        tpe_startup_trials=4,
        seed=0,
    )


class TestSQLQueryGenerator:
    def test_generate_returns_requested_count(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        results = generator.generate(n_queries=3)
        assert 1 <= len(results) <= 3

    def test_results_sorted_by_loss(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        results = generator.generate(n_queries=3)
        losses = [r.loss for r in results]
        assert losses == sorted(losses)

    def test_results_unique_signatures(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        results = generator.generate(n_queries=4)
        signatures = [r.query.signature() for r in results]
        assert len(signatures) == len(set(signatures))

    def test_best_query_beats_baseline(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        best = generator.generate(n_queries=1)[0]
        baseline = evaluator.evaluate_baseline()
        assert best.metric > baseline.metric

    def test_report_timings_populated(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        generator.generate(n_queries=1)
        assert generator.report.warmup_seconds > 0
        assert generator.report.generate_seconds > 0
        assert generator.report.n_proxy_evaluations == fast_generation_config.warmup_iterations
        assert generator.report.n_model_evaluations >= fast_generation_config.warmup_top_k

    def test_no_warmup_spends_budget_on_real_iterations(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        config = fast_generation_config.with_overrides(use_warmup=False)
        generator = SQLQueryGenerator(template, relevant, evaluator, config=config)
        generator.generate(n_queries=1)
        assert generator.report.n_proxy_evaluations == 0
        expected_real = config.search_iterations + config.warmup_top_k
        assert generator.report.n_model_evaluations == expected_real

    def test_best_loss_history_monotone_nonincreasing(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        generator.generate(n_queries=1)
        history = generator.report.best_loss_history
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))

    def test_best_proxy_score_positive_for_planted_signal(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        assert generator.best_proxy_score(n_iterations=8) > 0.0

    def test_best_real_score_bounded(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        score = generator.best_real_score(n_iterations=4)
        assert -1.0 <= score <= 0.0  # negated (1 - AUC) loss

    def test_generated_queries_reference_template_attributes(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        generator = SQLQueryGenerator(template, relevant, evaluator, config=fast_generation_config)
        for result in generator.generate(n_queries=3):
            assert result.query.agg_attr in template.agg_attrs
            assert result.query.agg_func in template.agg_funcs


class TestBatchedSearchLoop:
    """The ask/tell batch protocol driving the generator's search."""

    def test_counters_are_logical_at_any_batch_size(self, planted_setup, fast_generation_config):
        """Every suggested candidate counts as one evaluation, batched or not."""
        template, relevant, evaluator = planted_setup
        config = fast_generation_config.with_overrides(search_batch_size=8)
        generator = SQLQueryGenerator(template, relevant, evaluator, config=config)
        generator.generate(n_queries=1)
        assert generator.report.n_proxy_evaluations == config.warmup_iterations
        assert generator.report.n_model_evaluations == config.search_iterations + config.warmup_top_k

    def test_history_length_independent_of_batch_size(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        config = fast_generation_config.with_overrides(search_batch_size=6)
        generator = SQLQueryGenerator(template, relevant, evaluator, config=config)
        generator.generate(n_queries=1)
        history = generator.report.best_loss_history
        assert len(history) == config.search_iterations
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))

    def test_fixed_seed_batched_run_is_deterministic(self, planted_setup, fast_generation_config):
        template, relevant, evaluator = planted_setup
        config = fast_generation_config.with_overrides(search_batch_size=5)

        def run():
            generator = SQLQueryGenerator(template, relevant, evaluator, config=config)
            results = generator.generate(n_queries=3)
            return (
                [(r.query.signature(), r.loss) for r in results],
                generator.report.best_loss_history,
            )

        assert run() == run()

    def test_dedup_never_executes_a_signature_twice(self, planted_setup, fast_generation_config):
        """In-batch and cross-round duplicates are answered from the memo."""
        template, relevant, evaluator = planted_setup
        config = fast_generation_config.with_overrides(search_batch_size=8)
        generator = SQLQueryGenerator(template, relevant, evaluator, config=config)

        executed_batches = []
        original = evaluator.feature_vectors_for_queries

        def recording(queries, *args, **kwargs):
            executed_batches.append([q.signature() for q in queries])
            return original(queries, *args, **kwargs)

        evaluator.feature_vectors_for_queries = recording
        try:
            generator.generate(n_queries=1)
        finally:
            evaluator.feature_vectors_for_queries = original

        for batch in executed_batches:
            assert len(batch) == len(set(batch))
        n_executed = sum(len(batch) for batch in executed_batches)
        report = generator.report
        assert n_executed == (report.n_proxy_evaluations - report.n_proxy_dedup_hits) + (
            report.n_model_evaluations - report.n_model_dedup_hits
        )

    def test_batch_size_one_matches_default_run(self, planted_setup, fast_generation_config):
        """search_batch_size=1 is exactly the classic sequential trajectory."""
        template, relevant, evaluator = planted_setup

        def run(config):
            generator = SQLQueryGenerator(template, relevant, evaluator, config=config)
            results = generator.generate(n_queries=3)
            # NaN proxy scores (query never seen in warm-up) are normalised
            # because NaN != NaN would fail an otherwise identical trajectory.
            return (
                [
                    (r.query.signature(), r.loss, None if np.isnan(r.proxy_score) else r.proxy_score)
                    for r in results
                ],
                generator.report.best_loss_history,
            )

        explicit = fast_generation_config.with_overrides(search_batch_size=1)
        assert run(fast_generation_config) == run(explicit)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            FeatAugConfig(search_batch_size=0).validate()
