"""Table VII: ablation of the warm-up and the Query Template Identification.

Runs FeatAug-Full, FeatAug-NoWU (no warm-up, budget-fair) and FeatAug-NoQTI
(user-provided template = all candidate attributes) on the four one-to-many
datasets with the LR and XGB downstream models.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_FEATURES, BENCH_SCALE, bench_config, write_result
from repro.datasets import load_dataset
from repro.experiments.reporting import format_results_table
from repro.experiments.runner import run_method
from repro.experiments.scenarios import ONE_TO_MANY_DATASETS, PAPER_TABLE7

VARIANTS = ("FeatAug-NoQTI", "FeatAug-NoWU", "FeatAug")
MODELS = ("LR", "XGB")


def _run_table7():
    config = bench_config()
    results = []
    for dataset_name in ONE_TO_MANY_DATASETS:
        bundle = load_dataset(dataset_name, scale=BENCH_SCALE, seed=0)
        for model_name in MODELS:
            for method in VARIANTS:
                results.append(
                    run_method(
                        bundle, method, model_name,
                        n_features=BENCH_FEATURES, config=config, seed=0,
                    )
                )
    return results


@pytest.mark.benchmark(group="table7")
def test_table7_ablation(benchmark):
    results = benchmark.pedantic(_run_table7, rounds=1, iterations=1)
    text = (
        "Table VII -- ablation study (Full vs NoWU vs NoQTI)\n"
        "(AUC higher is better; RMSE lower is better for merchant)\n\n"
        + format_results_table(results, PAPER_TABLE7)
    )
    print("\n" + text)
    write_result("table7_ablation", text)

    # Shape check: the full configuration should beat the NoQTI ablation in
    # the majority of scenarios (in the paper it wins 15 of 16).
    wins, comparisons = 0, 0
    for dataset in ONE_TO_MANY_DATASETS:
        for model in MODELS:
            full = next(r for r in results if r.dataset == dataset and r.method == "FeatAug" and r.model == model)
            noqti = next(r for r in results if r.dataset == dataset and r.method == "FeatAug-NoQTI" and r.model == model)
            comparisons += 1
            if full.metric_name == "rmse":
                wins += full.metric <= noqti.metric + 1e-9
            else:
                wins += full.metric >= noqti.metric - 1e-9
    assert wins >= comparisons // 2
