"""Consistency checks on the scenario grids and paper reference values."""

import pytest

from repro.datasets import DATASET_NAMES
from repro.experiments.runner import METHOD_NAMES
from repro.experiments.scenarios import (
    MODELS,
    ONE_TO_MANY_DATASETS,
    ONE_TO_ONE_DATASETS,
    PAPER_TABLE3,
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE8,
)
from repro.ml.model_zoo import MODEL_NAMES


class TestScenarioGrids:
    def test_dataset_partition(self):
        assert set(ONE_TO_MANY_DATASETS) | set(ONE_TO_ONE_DATASETS) == set(DATASET_NAMES)
        assert not set(ONE_TO_MANY_DATASETS) & set(ONE_TO_ONE_DATASETS)

    def test_models_match_model_zoo(self):
        assert set(MODELS) == set(MODEL_NAMES)


class TestPaperReferenceTables:
    @pytest.mark.parametrize("table", [PAPER_TABLE3, PAPER_TABLE6, PAPER_TABLE7])
    def test_keys_reference_known_datasets_and_models(self, table):
        for dataset, method, model in table:
            assert dataset in DATASET_NAMES
            assert model in MODEL_NAMES
            assert method in METHOD_NAMES

    def test_table3_covers_all_one_to_many_datasets_and_models(self):
        for dataset in ONE_TO_MANY_DATASETS:
            for model in MODELS:
                assert (dataset, "FeatAug", model) in PAPER_TABLE3
                assert (dataset, "FT", model) in PAPER_TABLE3

    def test_table6_covers_one_to_one_datasets(self):
        for dataset in ONE_TO_ONE_DATASETS:
            assert (dataset, "FeatAug", "LR") in PAPER_TABLE6

    def test_auc_values_in_unit_interval(self):
        for (dataset, _, _), value in PAPER_TABLE3.items():
            if dataset != "merchant":
                assert 0.0 <= value <= 1.0

    def test_rmse_values_positive(self):
        for (dataset, _, _), value in PAPER_TABLE3.items():
            if dataset == "merchant":
                assert value > 0

    def test_table7_full_beats_noqti_in_paper(self):
        """Sanity check that the transcribed ablation numbers preserve the paper's ordering."""
        for dataset in ("tmall", "instacart", "student"):
            full = PAPER_TABLE7[(dataset, "FeatAug", "LR")]
            noqti = PAPER_TABLE7[(dataset, "FeatAug-NoQTI", "LR")]
            assert full >= noqti

    def test_table8_proxies_use_lr_model(self):
        assert all(model == "LR" for (_, _, model) in PAPER_TABLE8)
