"""Batched query-execution engine with a shared group index and mask caching.

The Query Template Identification and SQL generation searches execute hundreds
to thousands of candidate queries against the *same* relevant table with the
*same* foreign keys.  Re-deriving everything per query (hash the key column,
re-scan every WHERE predicate) wastes almost all of that work, so a
:class:`QueryEngine` is bound to one relevant table and

* computes a **factorized group index once** per key combination (vectorized
  key codes via ``np.unique`` in :func:`repro.dataframe.groupby.factorize_key_codes`),
* keeps an LRU **predicate-mask cache** keyed by predicate-atom signature so
  queries sharing WHERE atoms reuse boolean masks and conjunctions compose
  with ``&`` instead of re-scanning the table,
* keeps a small LRU **result cache** keyed by query signature (TPE frequently
  re-samples identical queries),
* offers a **batched API** :meth:`QueryEngine.execute_batch` that groups
  queries by (predicate signature, keys) and evaluates all aggregation
  functions over each filtered grouping in one pass,
* evaluates aggregations through **vectorized grouped kernels**
  (:mod:`repro.dataframe.grouped_kernels`) by default -- ``bincount`` /
  sorted-segment kernels computing every group at once instead of a
  per-group Python loop; ``kernels="python"`` selects the per-group loop as
  the in-engine reference path -- and
* exposes cache / timing statistics (:class:`EngineStats`, including
  per-kernel aggregation seconds) consumed by the Figure 5 benchmarks.

The engine is an optimisation layer only: its results are element-wise
**bit-for-bit identical** to the naive filter -> group-by path
(:func:`repro.query.executor.execute_query_naive`) in both kernel modes,
which the equivalence suite in ``tests/query/test_engine_equivalence.py``
enforces.  Bit-identity across the vectorized path holds because the Python
reference aggregates and ``np.bincount`` share one strict left-to-right
accumulation order (the accumulation-order contract in
:mod:`repro.dataframe.aggregates`), so switching kernel modes can never
perturb a search trajectory by even an ulp.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataframe.aggregates import (
    AGGREGATE_FUNCTIONS,
    column_to_aggregable,
    normalise_aggregate_name,
)
from repro.dataframe.column import Column, DType
from repro.dataframe.groupby import (
    factorize_key_codes,
    group_positions_from_codes,
    renumber_codes_compact,
)
from repro.dataframe.grouped_kernels import GroupedAggregator
from repro.dataframe.predicates import Equals, Predicate, Range
from repro.dataframe.table import Table
from repro.query.query import PredicateAwareQuery

#: Default bound on the number of cached predicate masks per engine.
DEFAULT_MASK_CACHE_SIZE = 256

#: Default bound on the number of cached query results per engine.
DEFAULT_RESULT_CACHE_SIZE = 128

#: Supported aggregation execution modes: vectorized grouped kernels
#: (the default) or the per-group Python loop kept as the in-engine
#: reference implementation.
KERNEL_MODES = ("vectorized", "python")


@dataclass
class EngineStats:
    """Counters and wall-clock totals exposed for the Fig. 5 benchmarks."""

    queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    empty_results: int = 0
    mask_hits: int = 0
    mask_misses: int = 0
    mask_evictions: int = 0
    result_hits: int = 0
    result_misses: int = 0
    group_index_builds: int = 0
    group_index_reuses: int = 0
    vectorized_aggregations: int = 0
    python_aggregations: int = 0
    seconds_masking: float = 0.0
    seconds_indexing: float = 0.0
    seconds_grouping: float = 0.0
    seconds_aggregating: float = 0.0
    #: Aggregation seconds split per kernel (canonical aggregate name ->
    #: cumulative wall-clock), for both the vectorized and the python path.
    kernel_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def mask_hit_rate(self) -> float:
        total = self.mask_hits + self.mask_misses
        return self.mask_hits / total if total else 0.0

    @property
    def result_hit_rate(self) -> float:
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = dict(self.__dict__)
        out["kernel_seconds"] = dict(self.kernel_seconds)
        out["mask_hit_rate"] = self.mask_hit_rate
        out["result_hit_rate"] = self.result_hit_rate
        return out

    def record_kernel(self, name: str, seconds: float, vectorized: bool) -> None:
        """Account one aggregation evaluation to the per-kernel timing split."""
        self.seconds_aggregating += seconds
        self.kernel_seconds[name] = self.kernel_seconds.get(name, 0.0) + seconds
        if vectorized:
            self.vectorized_aggregations += 1
        else:
            self.python_aggregations += 1

    def reset(self) -> None:
        for name, value in EngineStats().__dict__.items():
            setattr(self, name, value)

    def delta_since(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """Counters accumulated since *baseline* (an earlier ``as_dict()``).

        Engines are shared per table, so per-run reports must subtract the
        traffic of earlier runs; hit rates are recomputed from the deltas.
        """
        current = self.as_dict()
        delta: Dict[str, float] = {}
        for name, value in current.items():
            if name.endswith("_rate"):
                continue
            if isinstance(value, dict):
                base = baseline.get(name) or {}
                delta[name] = {k: v - base.get(k, 0.0) for k, v in value.items()}
            else:
                delta[name] = value - baseline.get(name, 0)
        masks = delta["mask_hits"] + delta["mask_misses"]
        delta["mask_hit_rate"] = delta["mask_hits"] / masks if masks else 0.0
        results = delta["result_hits"] + delta["result_misses"]
        delta["result_hit_rate"] = delta["result_hits"] / results if results else 0.0
        return delta


class _LRUCache:
    """A tiny ordered-dict LRU used for masks and result tables."""

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[object, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert and return the number of entries evicted (0 or 1)."""
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return 0
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            return 1
        return 0

    def clear(self) -> None:
        self._data.clear()


class GroupIndex:
    """The factorized grouping of one table by one key combination."""

    def __init__(self, table: Table, keys: Sequence[str]):
        self.keys = tuple(keys)
        codes, group_keys, group_rows = factorize_key_codes(table, self.keys)
        #: int64 group id per row of the table, in first-appearance order.
        self.codes = codes
        #: Ascending row positions of every group.
        self.group_rows = group_rows
        self.group_keys = group_keys
        self.n_groups = len(group_rows)
        # Per key column: the label of every group, pre-materialised in the
        # representation the output table needs.
        self._key_arrays: List[Tuple[str, DType, bool, np.ndarray]] = []
        for position, name in enumerate(self.keys):
            source = table.column(name)
            labels = [key[position] for key in group_keys]
            if source.is_numeric_like:
                array = np.asarray(
                    [np.nan if v is None else v for v in labels], dtype=np.float64
                )
            else:
                array = np.empty(self.n_groups, dtype=object)
                array[:] = labels
            self._key_arrays.append((name, source.dtype, source.is_numeric_like, array))

    def key_columns(self, group_ids: Optional[np.ndarray] = None) -> List[Column]:
        """Output key columns for the given groups (all groups when ``None``)."""
        columns = []
        for name, dtype, _numeric, array in self._key_arrays:
            data = array if group_ids is None else array[group_ids]
            columns.append(Column(name, data, dtype=dtype))
        return columns


def _hashable(value) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class QueryEngine:
    """Cached, batched execution of predicate-aware queries on one table.

    ``kernels`` selects how aggregations are evaluated:

    * ``"vectorized"`` (default) -- the grouped kernels of
      :mod:`repro.dataframe.grouped_kernels`: every aggregate is computed for
      all groups at once from the factorized group codes (``np.bincount`` for
      the accumulation family, one sort + segment boundaries for the
      order-statistics and distribution families).  Results -- NaN
      stripping, empty-group results, MODE tie-breaking, and every
      floating-point accumulation -- are bit-for-bit identical to the Python
      aggregates (see the module docstring).
    * ``"python"`` -- the historical per-group loop over
      :data:`repro.dataframe.aggregates.AGGREGATE_FUNCTIONS`, kept as the
      in-engine reference implementation and as the baseline the kernel
      benchmark measures against.
    """

    def __init__(
        self,
        table: Table,
        mask_cache_size: int = DEFAULT_MASK_CACHE_SIZE,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        weak_table: bool = False,
        kernels: str = "vectorized",
    ):
        if kernels not in KERNEL_MODES:
            raise ValueError(
                f"Unknown kernel mode {kernels!r}; expected one of {KERNEL_MODES}"
            )
        self.kernels = kernels
        # Directly-constructed engines own a strong reference to their table.
        # Registry engines (``engine_for``) hold only a weak one: the registry
        # maps table -> engine, and a strong back-reference from the engine
        # would keep every table ever touched alive for the process lifetime.
        self._table_strong = None if weak_table else table
        self._table_ref = weakref.ref(table)
        self.stats = EngineStats()
        self._indexes: Dict[Tuple[str, ...], GroupIndex] = {}
        self._masks = _LRUCache(mask_cache_size)
        self._results = _LRUCache(result_cache_size)
        self._agg_arrays: Dict[str, np.ndarray] = {}

    @property
    def table(self) -> Table:
        if self._table_strong is not None:
            return self._table_strong
        table = self._table_ref()
        if table is None:
            raise ReferenceError(
                "The table this QueryEngine was bound to has been garbage-collected"
            )
        return table

    # ------------------------------------------------------------------
    # Shared derived state
    # ------------------------------------------------------------------
    def group_index(self, keys: Sequence[str]) -> GroupIndex:
        """The (cached) factorized group index for one key combination."""
        keys = tuple(keys)
        index = self._indexes.get(keys)
        if index is None:
            start = time.perf_counter()
            index = GroupIndex(self.table, keys)
            self._indexes[keys] = index
            self.stats.group_index_builds += 1
            self.stats.seconds_indexing += time.perf_counter() - start
        else:
            self.stats.group_index_reuses += 1
        return index

    def _full_agg_values(self, attr: str) -> np.ndarray:
        values = self._agg_arrays.get(attr)
        if values is None:
            values = column_to_aggregable(self.table.column(attr))
            self._agg_arrays[attr] = values
        return values

    def _agg_values(self, attr: str, row_idx: Optional[np.ndarray]) -> np.ndarray:
        """Aggregable values aligned to the full table for a filtered run.

        Categorical attributes are coded by first appearance *within the
        filter* (exactly what ``column_to_aggregable`` sees on the filtered
        table in the naive path), so code-valued aggregates like MODE stay
        element-wise identical.  Numeric-like attributes are mask-independent
        and served from the per-attribute cache.
        """
        column = self.table.column(attr)
        if column.is_numeric_like or row_idx is None:
            return self._full_agg_values(attr)
        return column_to_aggregable(column, rows=row_idx)

    # ------------------------------------------------------------------
    # Predicate handling
    # ------------------------------------------------------------------
    @staticmethod
    def predicate_atoms(query: PredicateAwareQuery) -> List[Tuple[Optional[tuple], Predicate]]:
        """The query's WHERE atoms as ``(signature, predicate)`` pairs.

        Mirrors :meth:`PredicateAwareQuery.build_predicate`; the signature is
        ``None`` when an atom's constants are unhashable (uncacheable).
        """
        atoms: List[Tuple[Optional[tuple], Predicate]] = []
        for attr, constraint in query.predicates.items():
            dtype = query.predicate_dtypes.get(attr, DType.CATEGORICAL)
            if constraint is None:
                continue
            if dtype is DType.CATEGORICAL:
                signature = ("eq", attr, constraint)
                predicate: Predicate = Equals(attr, constraint)
            else:
                low, high = constraint
                if low is None and high is None:
                    continue
                signature = ("range", attr, low, high)
                predicate = Range(attr, low=low, high=high, dtype=dtype)
            atoms.append((signature if _hashable(signature) else None, predicate))
        return atoms

    def predicate_signature(self, query: PredicateAwareQuery) -> Optional[tuple]:
        """Hashable identity of the query's WHERE clause (``None`` = uncacheable).

        An empty tuple means "no predicate" (every row qualifies).
        """
        signatures = []
        for signature, _ in self.predicate_atoms(query):
            if signature is None:
                return None
            signatures.append(signature)
        return tuple(sorted(signatures, key=repr))

    def _atom_mask(self, signature: Optional[tuple], predicate: Predicate) -> np.ndarray:
        if signature is not None:
            cached = self._masks.get(signature)
            if cached is not None:
                self.stats.mask_hits += 1
                return cached
        self.stats.mask_misses += 1
        start = time.perf_counter()
        mask = predicate.mask(self.table)
        self.stats.seconds_masking += time.perf_counter() - start
        if signature is not None:
            self.stats.mask_evictions += self._masks.put(signature, mask)
        return mask

    def query_mask(self, query: PredicateAwareQuery) -> Optional[np.ndarray]:
        """Boolean row mask of the query's WHERE clause (``None`` = all rows).

        Atom masks come from the LRU cache; conjunctions are composed with
        ``&``.  Cached masks are never mutated.
        """
        atoms = self.predicate_atoms(query)
        if not atoms:
            return None
        mask: Optional[np.ndarray] = None
        for signature, predicate in atoms:
            atom = self._atom_mask(signature, predicate)
            mask = atom if mask is None else mask & atom
        return mask

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: PredicateAwareQuery) -> Table:
        """Run one query; identical to the naive filter -> group-by path."""
        key = self._result_key(query)
        if key is not None:
            cached = self._results.get(key)
            if cached is not None:
                self.stats.result_hits += 1
                return cached
        return self._execute_plan([query], batched=False)[0]

    def execute_batch(self, queries: Sequence[PredicateAwareQuery]) -> List[Table]:
        """Run many queries, sharing work between them.

        Queries are grouped by (predicate signature, keys): each such plan
        computes its mask and filtered grouping once, slices each aggregation
        attribute once, and then evaluates every aggregation function over the
        shared group slices.  Results come back in input order and are
        element-wise identical to per-query execution.
        """
        queries = list(queries)
        results: List[Optional[Table]] = [None] * len(queries)
        plans: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for i, query in enumerate(queries):
            signature = self.predicate_signature(query)
            if signature is None:
                results[i] = self.execute(query)  # uncacheable WHERE clause
                continue
            plans.setdefault((signature, tuple(query.keys)), []).append(i)

        for (_, keys), positions in plans.items():
            pending: List[int] = []
            for i in positions:
                key = self._result_key(queries[i])
                cached = self._results.get(key) if key is not None else None
                if cached is not None:
                    self.stats.result_hits += 1
                    results[i] = cached
                else:
                    pending.append(i)
            if not pending:
                continue
            plan_results = self._execute_plan([queries[i] for i in pending], batched=True)
            for i, result in zip(pending, plan_results):
                results[i] = result
        self.stats.batches += 1
        return results  # type: ignore[return-value]

    def _execute_plan(self, queries: Sequence[PredicateAwareQuery], batched: bool) -> List[Table]:
        """Run queries sharing one (predicate, keys) plan.

        The plan's mask, filtered grouping and per-attribute aggregable
        values are computed once; every query then only pays one grouped
        kernel evaluation (or, with ``kernels="python"``, its per-group
        aggregation loop).  Results are written to the result cache but never
        read from it (callers check the cache first).
        """
        first = queries[0]
        index = self.group_index(first.keys)
        mask = self.query_mask(first)
        group_ids, codes, n_groups, row_idx = self._filtered_groups(index, mask)
        key_columns: Optional[List[Column]] = None
        aggregators: Dict[str, GroupedAggregator] = {}
        group_slices: Dict[str, List[np.ndarray]] = {}
        group_rows: Optional[List[np.ndarray]] = None
        results: List[Table] = []
        for query in queries:
            func_name = normalise_aggregate_name(query.agg_func)
            if func_name not in AGGREGATE_FUNCTIONS:
                raise KeyError(f"Unknown aggregation function {query.agg_func!r}")
            self.table.column(query.agg_attr)  # KeyError for unknown attributes
            if n_groups == 0:
                result = self._empty_result(query)
            else:
                # Per-attribute preparation (value gather, group-rows split,
                # aggregator construction) stays outside the aggregation
                # timer so seconds_aggregating / kernel_seconds measure the
                # aggregation work alone in both kernel modes and never
                # double-count what _group_rows books to seconds_grouping.
                if self.kernels == "vectorized":
                    aggregator = aggregators.get(query.agg_attr)
                    if aggregator is None:
                        values = self._agg_values(query.agg_attr, row_idx)
                        if row_idx is not None:
                            values = values[row_idx]
                        aggregator = GroupedAggregator(codes, values, n_groups)
                        aggregators[query.agg_attr] = aggregator
                    start = time.perf_counter()
                    feature = aggregator.compute(func_name)
                else:
                    slices = group_slices.get(query.agg_attr)
                    if slices is None:
                        if group_rows is None:
                            group_rows = self._group_rows(index, codes, n_groups, row_idx)
                        values = self._agg_values(query.agg_attr, row_idx)
                        slices = [values[rows] for rows in group_rows]
                        group_slices[query.agg_attr] = slices
                    func = AGGREGATE_FUNCTIONS[func_name]
                    feature = np.empty(len(slices), dtype=np.float64)
                    start = time.perf_counter()
                    for g, chunk in enumerate(slices):
                        feature[g] = func(chunk)
                self.stats.record_kernel(
                    func_name,
                    time.perf_counter() - start,
                    vectorized=self.kernels == "vectorized",
                )
                if key_columns is None:
                    key_columns = index.key_columns(group_ids)
                result = Table(
                    list(key_columns)
                    + [Column(query.feature_name, feature, dtype=DType.NUMERIC)]
                )
            results.append(result)
            self.stats.queries += 1
            if batched:
                self.stats.batched_queries += 1
            key = self._result_key(query)
            if key is not None:
                self.stats.result_misses += 1
                self._results.put(key, result)
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _result_key(self, query: PredicateAwareQuery) -> Optional[tuple]:
        # Built from the dtype-aware atom signatures, not query.signature():
        # the latter omits predicate_dtypes, so an Equals and a Range over the
        # same constants would collide and return each other's cached result.
        predicate_sig = self.predicate_signature(query)
        if predicate_sig is None:
            return None
        try:
            key = (
                normalise_aggregate_name(query.agg_func),
                query.agg_attr,
                tuple(query.keys),
                predicate_sig,
                query.feature_name,
            )
            hash(key)
        except TypeError:
            return None
        return key

    def _filtered_groups(self, index: GroupIndex, mask: Optional[np.ndarray]):
        """Groups surviving *mask*: ``(group_ids, codes, n_groups, row_idx)``.

        ``group_ids`` are the original index codes of the surviving groups
        (``None`` means "all groups, original order"); ``codes`` is the
        re-numbered group id per surviving row.  Groups are ordered by first
        appearance within the filtered rows (what grouping the filtered table
        from scratch would produce).
        """
        if mask is None:
            return None, index.codes, index.n_groups, None
        start = time.perf_counter()
        row_idx = np.flatnonzero(mask)
        if row_idx.size == 0:
            self.stats.seconds_grouping += time.perf_counter() - start
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, 0, row_idx
        group_ids, codes, _ = renumber_codes_compact(index.codes[row_idx])
        self.stats.seconds_grouping += time.perf_counter() - start
        return group_ids, codes, group_ids.size, row_idx

    def _group_rows(self, index: GroupIndex, codes: np.ndarray, n_groups: int,
                    row_idx: Optional[np.ndarray]) -> List[np.ndarray]:
        """Ascending full-table row positions per group (python kernel path).

        Materialising one position array per group is what the vectorized
        kernels avoid; it is only computed on demand for
        ``kernels="python"``.
        """
        if row_idx is None:
            return index.group_rows
        start = time.perf_counter()
        group_rows = [
            row_idx[positions]
            for positions in group_positions_from_codes(codes, n_groups)
        ]
        self.stats.seconds_grouping += time.perf_counter() - start
        return group_rows

    def _empty_result(self, query: PredicateAwareQuery) -> Table:
        """The empty feature table, constructed directly (no full-table scan)."""
        self.stats.empty_results += 1
        columns: List[Column] = []
        for name in query.keys:
            source = self.table.column(name)
            if source.is_numeric_like:
                columns.append(Column(name, np.empty(0, dtype=np.float64), dtype=source.dtype))
            else:
                columns.append(Column(name, np.empty(0, dtype=object), dtype=DType.CATEGORICAL))
        columns.append(Column(query.feature_name, np.empty(0, dtype=np.float64), dtype=DType.NUMERIC))
        return Table(columns)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def mask_cache_len(self) -> int:
        return len(self._masks)

    @property
    def result_cache_len(self) -> int:
        return len(self._results)

    def clear_caches(self) -> None:
        """Drop cached masks, results, indexes and aggregable arrays."""
        self._masks.clear()
        self._results.clear()
        self._indexes.clear()
        self._agg_arrays.clear()

    def reset(self) -> None:
        """Return the engine to a cold state: drop all caches, zero the stats.

        Timing comparisons between pipeline variants sharing one table must
        call this between variants, or later variants replay earlier traffic
        straight out of the caches.
        """
        self.clear_caches()
        self.stats.reset()


#: Per-table shared engines, keyed by table identity.  The engine only holds
#: a weak reference back to its table, so entries (engine, caches and all)
#: disappear once the table is garbage-collected, and a held-out relevant
#: table can never see masks or results computed against a different table.
_ENGINE_REGISTRY: "weakref.WeakKeyDictionary[Table, QueryEngine]" = weakref.WeakKeyDictionary()


def engine_for(table: Table) -> QueryEngine:
    """The process-wide shared :class:`QueryEngine` bound to *table*.

    Keyed by object identity: every distinct ``Table`` object gets its own
    engine, and all call sites touching the same relevant table share one.
    """
    engine = _ENGINE_REGISTRY.get(table)
    if engine is None:
        engine = QueryEngine(table, weak_table=True)
        _ENGINE_REGISTRY[table] = engine
    return engine


def resolve_engine(table: Table, engine: Optional[QueryEngine] = None) -> QueryEngine:
    """*engine* if given (validated against *table*), else the shared engine.

    Every component that optionally accepts an engine goes through this:
    masks and group indexes must never be reused across tables, so a supplied
    engine bound to a different table is an error, not a fallback.
    """
    if engine is None:
        return engine_for(table)
    if engine.table is not table:
        raise ValueError("The supplied QueryEngine is bound to a different relevant table")
    return engine
