"""Attach generated features to the training table (Definition 3)."""

from __future__ import annotations

from typing import List, Sequence

from repro.dataframe.table import Table
from repro.query.executor import execute_query
from repro.query.query import PredicateAwareQuery


def augment_training_table(
    training_table: Table,
    feature_table: Table,
    keys: Sequence[str],
    feature_name: str,
    output_name: str | None = None,
) -> Table:
    """Left join the query result onto the training table.

    The training table keeps its row order; rows whose key has no match in
    the feature table receive a missing value (NaN), exactly like the SQL
    ``LEFT JOIN`` in Definition 3.
    """
    output_name = output_name or feature_name
    renamed = feature_table.rename({feature_name: output_name})
    return training_table.left_join(renamed, on=list(keys))


def apply_queries(
    training_table: Table,
    relevant_table: Table,
    queries: Sequence[PredicateAwareQuery],
    prefix: str = "feataug",
) -> Table:
    """Execute every query and append one feature column per query.

    Columns are named ``{prefix}_{i}``; this is how the final augmented
    training table ``D^{q1..qn}`` is materialised once the search has picked
    its queries.
    """
    augmented = training_table
    for i, query in enumerate(queries):
        feature_table = execute_query(query, relevant_table)
        augmented = augment_training_table(
            augmented,
            feature_table,
            keys=query.keys,
            feature_name=query.feature_name,
            output_name=f"{prefix}_{i}",
        )
    return augmented


def generated_feature_names(queries: Sequence[PredicateAwareQuery], prefix: str = "feataug") -> List[str]:
    """The column names :func:`apply_queries` will produce for *queries*."""
    return [f"{prefix}_{i}" for i in range(len(queries))]
