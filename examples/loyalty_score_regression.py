"""Regression workload: card-holder loyalty scores (synthetic Elo Merchant).

Demonstrates FeatAug on a regression task -- the paper's Merchant dataset --
including writing the dataset to CSV and reading it back, which mirrors how a
downstream user would plug their own exported tables into the library.

Run with:  python examples/loyalty_score_regression.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.config import FeatAugConfig
from repro.core.feataug import FeatAug
from repro.dataframe.io import read_csv, write_csv
from repro.datasets import load_dataset
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_method


def main() -> None:
    bundle = load_dataset("merchant", scale=0.25, seed=0)
    print(f"Dataset: {bundle.description}")

    # Round-trip through CSV files, as a user with exported tables would.
    workdir = Path(tempfile.mkdtemp(prefix="feataug_merchant_"))
    write_csv(bundle.train, workdir / "cards.csv")
    write_csv(bundle.relevant, workdir / "transactions.csv")
    cards = read_csv(workdir / "cards.csv", dtypes={"card_id": "categorical"})
    transactions = read_csv(workdir / "transactions.csv", dtypes={"card_id": "categorical"})
    print(f"Loaded {cards.num_rows} cards and {transactions.num_rows} transactions from {workdir}")

    config = FeatAugConfig(
        n_templates=3,
        queries_per_template=3,
        warmup_iterations=20,
        warmup_top_k=5,
        search_iterations=8,
        max_template_depth=2,
        seed=0,
    )

    feataug = FeatAug(label="label", keys=["card_id"], task="regression", model="LR", config=config)
    result = feataug.augment(
        cards, transactions,
        candidate_attrs=["category", "city", "installments", "purchase_amount", "purchase_date"],
        agg_attrs=["purchase_amount", "installments"],
        n_features=6,
    )
    print("\nSelected predicate-aware queries (validation RMSE in comments):")
    for generated in result.queries[:3]:
        print(f"\n-- validation RMSE {generated.metric:.3f}")
        print(generated.query.to_sql())

    rows = []
    for method in ("Base", "FT", "Random", "FeatAug"):
        outcome = run_method(bundle, method, "LR", n_features=9, config=config, seed=0)
        rows.append([method, outcome.metric_name, outcome.metric])
    print("\nLoyalty-score regression (LR downstream model, held-out test split, lower RMSE is better):")
    print(render_table(["method", "metric", "score"], rows))


if __name__ == "__main__":
    main()
