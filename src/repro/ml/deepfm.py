"""DeepFM: factorisation-machine + deep network binary classifier.

The paper evaluates DeepFM (Guo et al., IJCAI 2017) as its deep downstream
model.  This numpy implementation follows the original architecture:

* every input feature becomes a *field*; numeric features are quantile-binned
  so each field is categorical with a bounded vocabulary,
* a first-order term (per-feature-value bias),
* a second-order FM term over the field embeddings,
* a small MLP over the concatenated embeddings,
* the three components are summed and squashed with a sigmoid.

Training uses mini-batch Adam on the logistic loss.  The model is binary-only
(matching the paper, which notes DeepFM "only works for binary classification
tasks").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.base import BaseEstimator


def _quantile_bins(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Per-column quantile bin edges (excluding -inf/+inf)."""
    finite = values[~np.isnan(values)]
    if finite.size == 0:
        return np.asarray([0.0])
    distinct = np.unique(finite)
    if distinct.size <= n_bins:
        return distinct
    return np.unique(np.quantile(finite, np.linspace(0, 1, n_bins + 1)[1:-1]))


class DeepFMClassifier(BaseEstimator):
    """DeepFM binary classifier on dense float input matrices."""

    _estimator_type = "classifier"

    def __init__(
        self,
        embedding_dim: int = 8,
        hidden_units: tuple = (32, 16),
        n_bins: int = 16,
        learning_rate: float = 0.01,
        n_epochs: int = 15,
        batch_size: int = 256,
        l2: float = 1e-5,
        random_state: int | None = 0,
    ):
        self.embedding_dim = embedding_dim
        self.hidden_units = tuple(hidden_units)
        self.n_bins = n_bins
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.random_state = random_state

    # ------------------------------------------------------------------
    # Field encoding: each column is quantile-binned into its own vocabulary
    # ------------------------------------------------------------------
    def _fit_fields(self, X: np.ndarray) -> None:
        self._bin_edges: List[np.ndarray] = []
        self._field_offsets = np.zeros(X.shape[1], dtype=np.int64)
        offset = 0
        for j in range(X.shape[1]):
            edges = _quantile_bins(X[:, j], self.n_bins)
            self._bin_edges.append(edges)
            self._field_offsets[j] = offset
            offset += edges.shape[0] + 2  # +1 for overflow bin, +1 for NaN bucket
        self._vocab_size = offset

    def _encode(self, X: np.ndarray) -> np.ndarray:
        """Map each cell to a global embedding index."""
        n, m = X.shape
        indices = np.zeros((n, m), dtype=np.int64)
        for j in range(m):
            edges = self._bin_edges[j]
            column = X[:, j]
            codes = np.searchsorted(edges, column, side="right")
            codes = np.where(np.isnan(column), edges.shape[0] + 1, codes)
            indices[:, j] = codes + self._field_offsets[j]
        return indices

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DeepFMClassifier":
        X, y = self._validate_xy(X, y)
        classes = np.unique(y)
        if classes.shape[0] > 2:
            raise ValueError("DeepFMClassifier supports binary labels only")
        self.classes_ = classes
        positive = classes[-1]
        y_binary = (y == positive).astype(np.float64)
        self._positive_class = positive
        self._negative_class = classes[0]

        self._fit_fields(X)
        indices = self._encode(X)
        rng = np.random.default_rng(self.random_state)
        n_fields = X.shape[1]
        d = self.embedding_dim

        # Parameters.
        self._w0 = 0.0
        self._w = rng.normal(0, 0.01, size=self._vocab_size)
        self._V = rng.normal(0, 0.01, size=(self._vocab_size, d))
        mlp_input = n_fields * d
        self._mlp_weights = []
        self._mlp_biases = []
        previous = mlp_input
        for units in self.hidden_units:
            self._mlp_weights.append(rng.normal(0, np.sqrt(2.0 / previous), size=(previous, units)))
            self._mlp_biases.append(np.zeros(units))
            previous = units
        self._mlp_weights.append(rng.normal(0, np.sqrt(2.0 / previous), size=(previous, 1)))
        self._mlp_biases.append(np.zeros(1))

        params = self._flatten_params()
        adam_m = np.zeros_like(params)
        adam_v = np.zeros_like(params)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = X.shape[0]
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                grads = self._batch_gradients(indices[batch], y_binary[batch])
                step += 1
                adam_m = beta1 * adam_m + (1 - beta1) * grads
                adam_v = beta2 * adam_v + (1 - beta2) * grads**2
                m_hat = adam_m / (1 - beta1**step)
                v_hat = adam_v / (1 - beta2**step)
                params = params - self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                self._unflatten_params(params)
        return self

    # ------------------------------------------------------------------
    # Parameter (un)flattening for the Adam update
    # ------------------------------------------------------------------
    def _flatten_params(self) -> np.ndarray:
        parts = [np.asarray([self._w0]), self._w.ravel(), self._V.ravel()]
        for W, b in zip(self._mlp_weights, self._mlp_biases):
            parts.append(W.ravel())
            parts.append(b.ravel())
        return np.concatenate(parts)

    def _unflatten_params(self, flat: np.ndarray) -> None:
        cursor = 0
        self._w0 = float(flat[cursor])
        cursor += 1
        size = self._w.size
        self._w = flat[cursor : cursor + size].copy()
        cursor += size
        size = self._V.size
        self._V = flat[cursor : cursor + size].reshape(self._V.shape).copy()
        cursor += size
        new_weights, new_biases = [], []
        for W, b in zip(self._mlp_weights, self._mlp_biases):
            size = W.size
            new_weights.append(flat[cursor : cursor + size].reshape(W.shape).copy())
            cursor += size
            size = b.size
            new_biases.append(flat[cursor : cursor + size].copy())
            cursor += size
        self._mlp_weights = new_weights
        self._mlp_biases = new_biases

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def _forward(self, indices: np.ndarray):
        n, n_fields = indices.shape
        d = self.embedding_dim
        emb = self._V[indices]  # (n, fields, d)
        first_order = self._w[indices].sum(axis=1) + self._w0
        sum_emb = emb.sum(axis=1)
        sum_sq = (emb**2).sum(axis=1)
        fm = 0.5 * ((sum_emb**2 - sum_sq).sum(axis=1))
        h = emb.reshape(n, n_fields * d)
        activations = [h]
        for layer, (W, b) in enumerate(zip(self._mlp_weights, self._mlp_biases)):
            z = h @ W + b
            if layer < len(self._mlp_weights) - 1:
                h = np.maximum(z, 0.0)
            else:
                h = z
            activations.append(h)
        deep = h.ravel()
        logits = first_order + fm + deep
        prob = 1.0 / (1.0 + np.exp(-logits))
        return prob, emb, sum_emb, activations

    def _batch_gradients(self, indices: np.ndarray, y: np.ndarray) -> np.ndarray:
        n, n_fields = indices.shape
        d = self.embedding_dim
        prob, emb, sum_emb, activations = self._forward(indices)
        dlogit = (prob - y) / n  # (n,)

        grad_w0 = dlogit.sum()
        grad_w = np.zeros_like(self._w)
        np.add.at(grad_w, indices.ravel(), np.repeat(dlogit, n_fields))
        grad_V = np.zeros_like(self._V)

        # FM term gradient: d fm / d v_i = sum_emb - v_i  (per sample & field)
        fm_grad = dlogit[:, None, None] * (sum_emb[:, None, :] - emb)
        np.add.at(grad_V, indices.ravel(), fm_grad.reshape(-1, d))

        # MLP backward pass.
        grad_mlp_w = [np.zeros_like(W) for W in self._mlp_weights]
        grad_mlp_b = [np.zeros_like(b) for b in self._mlp_biases]
        delta = dlogit[:, None]  # gradient w.r.t. final linear output
        for layer in range(len(self._mlp_weights) - 1, -1, -1):
            a_prev = activations[layer]
            grad_mlp_w[layer] = a_prev.T @ delta + self.l2 * self._mlp_weights[layer]
            grad_mlp_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self._mlp_weights[layer].T
                delta = delta * (activations[layer] > 0)
        # Gradient into the embedding via the MLP input.
        delta_input = delta @ self._mlp_weights[0].T if len(self._mlp_weights) > 0 else None
        if delta_input is not None:
            np.add.at(grad_V, indices.ravel(), delta_input.reshape(n * n_fields, d))

        grad_w += self.l2 * self._w
        grad_V += self.l2 * self._V

        parts = [np.asarray([grad_w0]), grad_w.ravel(), grad_V.ravel()]
        for gW, gb in zip(grad_mlp_w, grad_mlp_b):
            parts.append(gW.ravel())
            parts.append(gb.ravel())
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        indices = self._encode(X)
        prob, *_ = self._forward(indices)
        return np.column_stack([1 - prob, prob])

    def predict(self, X) -> np.ndarray:
        p = self.predict_proba(X)[:, 1]
        return np.where(p >= 0.5, self._positive_class, self._negative_class)
