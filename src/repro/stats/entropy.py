"""Entropy and discretisation utilities."""

from __future__ import annotations

import numpy as np


def discretize(values: np.ndarray, n_bins: int = 10) -> np.ndarray:
    """Quantile-bin a continuous array into integer codes.

    Missing values (NaN) receive their own bin code (``n_bins``) so they still
    contribute to dependency estimates.  If the array has fewer distinct
    values than ``n_bins`` the distinct values are used directly.
    """
    values = np.asarray(values, dtype=np.float64)
    codes = np.full(values.shape[0], n_bins, dtype=np.int64)
    finite_mask = ~np.isnan(values)
    finite = values[finite_mask]
    if finite.size == 0:
        return codes
    distinct = np.unique(finite)
    if distinct.size <= n_bins:
        lookup = {v: i for i, v in enumerate(distinct)}
        codes[finite_mask] = np.asarray([lookup[v] for v in finite], dtype=np.int64)
        return codes
    quantiles = np.quantile(finite, np.linspace(0, 1, n_bins + 1)[1:-1])
    codes[finite_mask] = np.searchsorted(quantiles, finite, side="right")
    return codes


def _probabilities(codes: np.ndarray) -> np.ndarray:
    _, counts = np.unique(codes, return_counts=True)
    return counts / counts.sum()


def shannon_entropy(codes: np.ndarray) -> float:
    """Shannon entropy (natural log) of a discrete code array."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return 0.0
    p = _probabilities(codes)
    return float(-(p * np.log(p)).sum())
