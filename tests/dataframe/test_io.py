"""Unit tests for CSV input/output."""

import numpy as np
import pytest

from repro.dataframe.column import DType
from repro.dataframe.io import read_csv, write_csv
from repro.dataframe.table import Table


@pytest.fixture
def table():
    return Table.from_dict(
        {
            "name": ["alice", "bob", None],
            "amount": [10.5, None, 3.25],
            "when": ["2023-01-01", "2023-06-15 12:30:00", None],
            "count": [1.0, 2.0, 3.0],
        },
        dtypes={"when": DType.DATETIME},
    )


class TestRoundTrip:
    def test_roundtrip_preserves_shape(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.shape == table.shape

    def test_roundtrip_preserves_dtypes(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("name").dtype is DType.CATEGORICAL
        assert loaded.column("amount").dtype is DType.NUMERIC
        assert loaded.column("when").dtype is DType.DATETIME

    def test_roundtrip_preserves_values(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("amount").values[0] == 10.5
        assert np.isnan(loaded.column("amount").values[1])
        assert loaded.column("name").values[2] is None

    def test_roundtrip_datetime_values(self, table, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("when").values[0] == table.column("when").values[0]
        assert np.isnan(loaded.column("when").values[2])

    def test_write_creates_parent_dirs(self, table, tmp_path):
        path = tmp_path / "nested" / "dir" / "data.csv"
        write_csv(table, path)
        assert path.exists()


class TestInference:
    def test_numeric_inference(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("a,b\n1,x\n2.5,y\n")
        loaded = read_csv(path)
        assert loaded.column("a").dtype is DType.NUMERIC
        assert loaded.column("b").dtype is DType.CATEGORICAL

    def test_missing_token_handling(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("a\n1\n\nNA\n")
        loaded = read_csv(path)
        assert loaded.column("a").null_count() == 2

    def test_forced_dtype(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("id\n1\n2\n")
        loaded = read_csv(path, dtypes={"id": DType.CATEGORICAL})
        assert loaded.column("id").dtype is DType.CATEGORICAL

    def test_datetime_inference(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("t\n2023-01-01\n2023-02-03\n")
        loaded = read_csv(path)
        assert loaded.column("t").dtype is DType.DATETIME

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0
