"""Unit tests for repro.dataframe.column."""

import datetime as dt

import numpy as np
import pytest

from repro.dataframe.column import Column, DType, format_datetime, infer_dtype, parse_datetime


class TestParseDatetime:
    def test_parses_iso_date(self):
        assert parse_datetime("1970-01-02") == 86400.0

    def test_parses_iso_datetime(self):
        assert parse_datetime("1970-01-01 01:00:00") == 3600.0

    def test_parses_datetime_object(self):
        assert parse_datetime(dt.datetime(1970, 1, 1, 0, 1)) == 60.0

    def test_parses_date_object(self):
        assert parse_datetime(dt.date(1970, 1, 3)) == 2 * 86400.0

    def test_passes_through_numbers(self):
        assert parse_datetime(123.5) == 123.5

    def test_none_becomes_nan(self):
        assert np.isnan(parse_datetime(None))

    def test_invalid_string_raises(self):
        with pytest.raises(ValueError):
            parse_datetime("not a date")

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            parse_datetime([1, 2, 3])


class TestFormatDatetime:
    def test_roundtrip_date(self):
        assert format_datetime(parse_datetime("2023-07-01")) == "2023-07-01"

    def test_roundtrip_datetime(self):
        text = "2023-07-01 13:45:10"
        assert format_datetime(parse_datetime(text)) == text

    def test_nan_renders_empty(self):
        assert format_datetime(float("nan")) == ""


class TestInferDtype:
    def test_numbers(self):
        assert infer_dtype([1, 2.5, None]) is DType.NUMERIC

    def test_strings(self):
        assert infer_dtype(["a", "b"]) is DType.CATEGORICAL

    def test_datetimes(self):
        assert infer_dtype([dt.datetime(2020, 1, 1)]) is DType.DATETIME

    def test_booleans(self):
        assert infer_dtype([True, False, None]) is DType.BOOLEAN

    def test_mixed_numbers_and_strings_is_categorical(self):
        assert infer_dtype([1, "a"]) is DType.CATEGORICAL

    def test_all_missing_defaults_to_categorical(self):
        assert infer_dtype([None, None]) is DType.CATEGORICAL


class TestColumnConstruction:
    def test_numeric_storage_is_float64(self):
        col = Column("x", [1, 2, 3])
        assert col.dtype is DType.NUMERIC
        assert col.values.dtype == np.float64

    def test_none_becomes_nan_in_numeric(self):
        col = Column("x", [1, None, 3], dtype=DType.NUMERIC)
        assert np.isnan(col.values[1])

    def test_categorical_preserves_none(self):
        col = Column("x", ["a", None, "b"])
        assert col.values[1] is None

    def test_datetime_strings_parsed(self):
        col = Column("t", ["2023-01-01", "2023-01-02"], dtype=DType.DATETIME)
        assert col.values[1] - col.values[0] == 86400.0

    def test_boolean_coercion(self):
        col = Column("b", [True, False, None], dtype=DType.BOOLEAN)
        assert col.values[0] == 1.0
        assert col.values[1] == 0.0
        assert np.isnan(col.values[2])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", [1, 2])

    def test_numpy_float_array_used_directly(self):
        arr = np.asarray([1.0, 2.0])
        col = Column("x", arr)
        assert col.dtype is DType.NUMERIC
        assert len(col) == 2


class TestColumnOperations:
    def test_len_and_getitem(self):
        col = Column("x", [10, 20, 30])
        assert len(col) == 3
        assert col[1] == 20.0

    def test_is_missing_numeric(self):
        col = Column("x", [1, None, 3], dtype=DType.NUMERIC)
        assert list(col.is_missing()) == [False, True, False]

    def test_is_missing_categorical(self):
        col = Column("x", ["a", None])
        assert list(col.is_missing()) == [False, True]

    def test_null_count(self):
        col = Column("x", [1, None, None], dtype=DType.NUMERIC)
        assert col.null_count() == 2

    def test_unique_preserves_first_appearance_order(self):
        col = Column("x", ["b", "a", "b", "c"])
        assert col.unique() == ["b", "a", "c"]

    def test_unique_skips_missing(self):
        col = Column("x", [1, None, 1, 2], dtype=DType.NUMERIC)
        assert col.unique() == [1.0, 2.0]

    def test_min_max_ignore_nan(self):
        col = Column("x", [3, None, 1, 2], dtype=DType.NUMERIC)
        assert col.min() == 1.0
        assert col.max() == 3.0

    def test_min_on_categorical_raises(self):
        with pytest.raises(TypeError):
            Column("x", ["a", "b"]).min()

    def test_take_reorders(self):
        col = Column("x", [10, 20, 30])
        taken = col.take([2, 0])
        assert list(taken.values) == [30.0, 10.0]

    def test_filter_mask(self):
        col = Column("x", [10, 20, 30])
        assert list(col.filter([True, False, True]).values) == [10.0, 30.0]

    def test_rename(self):
        col = Column("x", [1]).rename("y")
        assert col.name == "y"

    def test_equality_with_nan(self):
        a = Column("x", [1, None], dtype=DType.NUMERIC)
        b = Column("x", [1, None], dtype=DType.NUMERIC)
        assert a == b

    def test_inequality_different_values(self):
        assert Column("x", [1, 2]) != Column("x", [1, 3])

    def test_astype_numeric_to_categorical(self):
        col = Column("x", [1, 2]).astype(DType.CATEGORICAL)
        assert col.dtype is DType.CATEGORICAL

    def test_copy_is_independent(self):
        col = Column("x", [1, 2])
        duplicate = col.copy()
        duplicate.values[0] = 99.0
        assert col.values[0] == 1.0
