"""Synthetic Household: multi-class poverty-level prediction (one-to-one).

The real Household dataset (Costa Rican Household Poverty Prediction) is a
single wide table; the paper keeps five features in the training table and
moves the remaining 137 into the relevant table, joined one-to-one by row
index.  The synthetic version follows the same split with a smaller but still
wide relevant table.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.column import DType
from repro.datasets.base import DatasetBundle
from repro.datasets.synthetic import build_table, multiclass_label_from_signals

N_CLASSES = 4


def make_household(n_rows: int = 1500, n_relevant_features: int = 40, seed: int = 5) -> DatasetBundle:
    """Generate the synthetic Household poverty-level dataset (one-to-one)."""
    rng = np.random.default_rng(seed)
    index = np.arange(n_rows, dtype=np.float64)

    # Training-table features (the paper keeps five).
    household_size = rng.integers(1, 10, size=n_rows).astype(np.float64)
    rooms = rng.integers(1, 8, size=n_rows).astype(np.float64)
    years_of_schooling = rng.integers(0, 20, size=n_rows).astype(np.float64)
    age_of_head = rng.integers(18, 90, size=n_rows).astype(np.float64)
    monthly_rent = np.abs(rng.normal(200, 120, size=n_rows))

    data = {"data_index": (index, DType.NUMERIC)}
    relevant_features = []
    feature_values = []
    for j in range(n_relevant_features):
        name = f"asset_{j}" if j < n_relevant_features // 2 else f"condition_{j}"
        values = rng.normal(0, 1, size=n_rows)
        data[name] = (values, DType.NUMERIC)
        relevant_features.append(name)
        feature_values.append(values)

    # The poverty level depends on a handful of the relevant features plus the
    # base features, so augmenting from the relevant table genuinely helps.
    signals = [
        feature_values[0] + feature_values[1] - household_size / 3.0,
        feature_values[2] - feature_values[3] + years_of_schooling / 5.0,
        feature_values[4] + monthly_rent / 100.0,
        -feature_values[0] + rooms / 2.0,
    ]
    label = multiclass_label_from_signals(rng, signals, noise=0.7)

    relevant = build_table(data)
    train = build_table(
        {
            "data_index": (index, DType.NUMERIC),
            "household_size": (household_size, DType.NUMERIC),
            "rooms": (rooms, DType.NUMERIC),
            "years_of_schooling": (years_of_schooling, DType.NUMERIC),
            "age_of_head": (age_of_head, DType.NUMERIC),
            "monthly_rent": (monthly_rent, DType.NUMERIC),
            "label": (label, DType.NUMERIC),
        }
    )
    return DatasetBundle(
        name="household",
        train=train,
        relevant=relevant,
        keys=["data_index"],
        label_col="label",
        task="multiclass",
        metric_name="f1",
        candidate_attrs=relevant_features[:20],
        agg_attrs=relevant_features,
        description="Household poverty level prediction, one-to-one scenario (synthetic Household).",
    )
