"""The Random baseline (Section VII.A.3).

Random first chooses query templates uniformly at random from the template
set, then samples predicate-aware queries uniformly from each template's
query pool -- no Bayesian optimisation, no warm-up, no beam search.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.dataframe.table import Table
from repro.query.pool import QueryPool
from repro.query.query import PredicateAwareQuery
from repro.query.template import QueryTemplate


class RandomAugmenter:
    """Randomly sampled templates and predicate-aware queries."""

    def __init__(
        self,
        keys: Sequence[str],
        agg_attrs: Sequence[str],
        agg_funcs: Sequence[str] | None = None,
        n_templates: int = 8,
        queries_per_template: int = 5,
        max_predicate_attrs: int = 3,
        seed: int = 0,
    ):
        self.keys = list(keys)
        self.agg_attrs = list(agg_attrs)
        self.agg_funcs = list(agg_funcs) if agg_funcs else None
        self.n_templates = n_templates
        self.queries_per_template = queries_per_template
        self.max_predicate_attrs = max_predicate_attrs
        self.seed = seed

    def generate(self, relevant_table: Table, candidate_attrs: Sequence[str]) -> List[PredicateAwareQuery]:
        """Sample ``n_templates * queries_per_template`` random queries."""
        rng = np.random.default_rng(self.seed)
        candidate_attrs = list(candidate_attrs)
        queries: List[PredicateAwareQuery] = []
        for t in range(self.n_templates):
            size = int(rng.integers(1, min(self.max_predicate_attrs, len(candidate_attrs)) + 1))
            chosen = list(rng.choice(candidate_attrs, size=size, replace=False))
            template = QueryTemplate(self.agg_funcs, self.agg_attrs, chosen, self.keys)
            pool = QueryPool(template, relevant_table)
            queries.extend(
                pool.sample_random(seed=self.seed + 37 * t, n=self.queries_per_template)
            )
        return queries
