"""Estimator base class and small shared helpers."""

from __future__ import annotations

import copy

import numpy as np


class BaseEstimator:
    """Minimal estimator protocol shared by every model in :mod:`repro.ml`.

    Subclasses implement ``fit(X, y)`` and either ``predict`` (regressors) or
    ``predict`` + ``predict_proba`` (classifiers) on dense float matrices.
    ``clone`` returns an unfitted copy with the same constructor parameters,
    which the search components use to retrain a fresh model per candidate
    feature.
    """

    #: set by subclasses: True for classifiers, False for regressors.
    _estimator_type = "regressor"

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseEstimator":
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def clone(self) -> "BaseEstimator":
        """Unfitted copy carrying the same hyperparameters."""
        params = {
            key: copy.deepcopy(value)
            for key, value in self.__dict__.items()
            if not key.endswith("_")
        }
        fresh = type(self).__new__(type(self))
        fresh.__dict__.update(params)
        return fresh

    def _validate_xy(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be a 2-D array, got shape {X.shape}")
        if y.ndim != 1:
            y = y.ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        return X, y


def is_classifier(model: BaseEstimator) -> bool:
    """True if *model* is a classifier."""
    return getattr(model, "_estimator_type", "regressor") == "classifier"
