"""Unit tests for QueryPool (template -> search space -> query decoding)."""

import numpy as np
import pytest

from repro.dataframe.column import DType
from repro.hpo.space import CategoricalDimension, RealDimension
from repro.query.pool import QueryPool
from repro.query.template import QueryTemplate


@pytest.fixture
def template():
    return QueryTemplate(
        ["SUM", "AVG", "MAX"], ["pprice"], ["department", "timestamp"], ["cname"]
    )


@pytest.fixture
def pool(template, logs_table):
    return QueryPool(template, logs_table, relation_name="User_Logs")


class TestSpaceConstruction:
    def test_dimension_names(self, pool):
        names = pool.space.names
        assert "agg_func" in names
        assert "agg_attr" in names
        assert "pred::department" in names
        assert "pred_low::timestamp" in names
        assert "pred_high::timestamp" in names
        assert "group_keys" in names

    def test_vector_layout_matches_paper_formula(self, pool, template):
        """Section V.A: 2 + n + 2*m + |K| elements for n categorical and m numeric predicates."""
        n_categorical = 1
        n_numeric = 1
        expected = 2 + n_categorical + 2 * n_numeric + 1
        assert len(pool.space) == expected

    def test_categorical_domain_includes_none(self, pool):
        dim = pool.space["pred::department"]
        assert isinstance(dim, CategoricalDimension)
        assert None in dim.choices
        assert "electronics" in dim.choices

    def test_numeric_bounds_match_column(self, pool, logs_table):
        dim = pool.space["pred_low::timestamp"]
        assert isinstance(dim, RealDimension)
        assert dim.low == logs_table.column("timestamp").min()
        assert dim.high == logs_table.column("timestamp").max()

    def test_group_keys_subsets(self, pool):
        dim = pool.space["group_keys"]
        assert ("cname",) in dim.choices

    def test_missing_template_column_raises(self, logs_table):
        bad = QueryTemplate(["SUM"], ["nope"], [], ["cname"])
        with pytest.raises(KeyError):
            QueryPool(bad, logs_table)

    def test_domain_of(self, pool):
        assert set(pool.domain_of("department")) >= {"electronics", "household", "media"}
        low, high = pool.domain_of("timestamp")
        assert low < high

    def test_domain_of_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.domain_of("pprice")

    def test_categorical_domain_capped(self, logs_table):
        from repro.query.pool import MAX_CATEGORICAL_VALUES

        wide = QueryTemplate(["SUM"], ["pprice"], ["pname"], ["cname"])
        pool = QueryPool(wide, logs_table)
        assert len(pool.domain_of("pname")) <= MAX_CATEGORICAL_VALUES


class TestDecodeEncode:
    def test_decode_produces_executable_query(self, pool, logs_table):
        params = {
            "agg_func": "AVG",
            "agg_attr": "pprice",
            "pred::department": "electronics",
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "group_keys": ("cname",),
        }
        query = pool.decode(params)
        assert query.agg_func == "AVG"
        mask = query.build_predicate().mask(logs_table)
        assert mask.sum() == 4

    def test_decode_swaps_inverted_bounds(self, pool):
        params = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": 100.0,
            "pred_high::timestamp": 50.0,
            "group_keys": ("cname",),
        }
        query = pool.decode(params)
        low, high = query.predicates["timestamp"]
        assert low <= high

    def test_encode_roundtrip(self, pool, rng):
        params = pool.space.sample(rng)
        query = pool.decode(params)
        recovered = pool.encode(query)
        assert pool.decode(recovered).signature() == query.signature()

    def test_sample_random_queries_valid(self, pool, logs_table):
        queries = pool.sample_random(seed=0, n=10)
        assert len(queries) == 10
        for query in queries:
            mask = query.build_predicate().mask(logs_table)
            assert mask.shape[0] == logs_table.num_rows

    def test_group_keys_default_to_full_key(self, pool):
        params = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "group_keys": None,
        }
        query = pool.decode(params)
        assert query.keys == ("cname",)

    def test_relation_name_propagated(self, pool):
        query = pool.sample_random(seed=1, n=1)[0]
        assert "User_Logs" in query.to_sql()


class TestRefresh:
    """PR 8 satellite: ``QueryPool.refresh`` extends the domains over
    appended rows, deterministically equal to constructing a fresh pool
    over the extended table."""

    def append(self, logs_table, **overrides):
        row = {
            "cname": "erin",
            "pname": "soap",
            "pprice": 10.0,
            "department": "household",
            "timestamp": "2023-07-10",
        }
        row.update(overrides)
        logs_table.append_rows([row])

    def test_noop_when_no_rows_appended(self, pool, logs_table):
        space = pool.space
        assert pool.refresh(logs_table) is False
        assert pool.space is space

    def test_append_without_domain_change_keeps_space(self, pool, logs_table):
        space = pool.space
        self.append(logs_table)  # known department, in-range timestamp
        assert pool.refresh(logs_table) is False
        assert pool.space is space

    def test_new_categorical_value_extends_domain(self, pool, logs_table):
        self.append(logs_table, department="garden")
        assert pool.refresh(logs_table) is True
        choices = pool.space["pred::department"].choices
        assert choices[-1] == "garden"  # appended after the old values
        assert choices[:-1] == [None, "electronics", "household", "media"]

    def test_new_numeric_bounds_extend_domain(self, pool, logs_table):
        old_low = pool.space["pred_low::timestamp"].low
        self.append(logs_table, timestamp="2024-01-01")
        assert pool.refresh(logs_table) is True
        dim = pool.space["pred_low::timestamp"]
        assert dim.low == old_low
        assert dim.high == logs_table.column("timestamp").max()

    def test_refresh_equals_fresh_pool(self, template, logs_table):
        pool = QueryPool(template, logs_table, relation_name="User_Logs")
        self.append(logs_table, department="garden", timestamp="2024-02-02")
        self.append(logs_table, department="household", timestamp="2021-01-01")
        pool.refresh(logs_table)
        fresh = QueryPool(template, logs_table, relation_name="User_Logs")
        for attr in template.predicate_attrs:
            assert pool.domain_of(attr) == fresh.domain_of(attr)
        assert pool.space.names == fresh.space.names

    def test_refresh_respects_categorical_cap(self, logs_table):
        from repro.query.pool import MAX_CATEGORICAL_VALUES

        wide = QueryTemplate(["SUM"], ["pprice"], ["pname"], ["cname"])
        pool = QueryPool(wide, logs_table)
        for i in range(2 * MAX_CATEGORICAL_VALUES):
            # each new product appears twice so frequency ordering is stable
            self.append(logs_table, pname=f"p{i}")
            self.append(logs_table, pname=f"p{i}")
        pool.refresh(logs_table)
        fresh = QueryPool(wide, logs_table)
        assert len(pool.domain_of("pname")) == MAX_CATEGORICAL_VALUES
        assert pool.domain_of("pname") == fresh.domain_of("pname")

    def test_incremental_refreshes_equal_one_shot_refresh(self, template, logs_table):
        stepwise = QueryPool(template, logs_table, relation_name="User_Logs")
        for dept, ts in [("garden", "2024-03-01"), ("toys", "2020-06-15")]:
            self.append(logs_table, department=dept, timestamp=ts)
            stepwise.refresh(logs_table)
        fresh = QueryPool(template, logs_table, relation_name="User_Logs")
        for attr in template.predicate_attrs:
            assert stepwise.domain_of(attr) == fresh.domain_of(attr)

    def test_shrunk_table_rejected(self, pool, logs_table):
        with pytest.raises(ValueError, match="append-only"):
            pool.refresh(logs_table.select(logs_table.column_names).head(3))
