"""Unit tests for the downstream model factory."""

import pytest

from repro.ml.base import is_classifier
from repro.ml.deepfm import DeepFMClassifier
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.linear import LinearRegression, LogisticRegression
from repro.ml.model_zoo import MODEL_NAMES, make_model


class TestMakeModel:
    def test_lr_binary(self):
        assert isinstance(make_model("LR", "binary"), LogisticRegression)

    def test_lr_regression(self):
        assert isinstance(make_model("LR", "regression"), LinearRegression)

    def test_xgb_binary(self):
        assert isinstance(make_model("XGB", "binary"), GradientBoostingClassifier)

    def test_xgb_regression(self):
        assert isinstance(make_model("XGB", "regression"), GradientBoostingRegressor)

    def test_xgb_multiclass_falls_back_to_forest(self):
        assert isinstance(make_model("XGB", "multiclass"), RandomForestClassifier)

    def test_rf_binary(self):
        assert isinstance(make_model("RF", "binary"), RandomForestClassifier)

    def test_rf_regression(self):
        assert isinstance(make_model("RF", "regression"), RandomForestRegressor)

    def test_deepfm_binary(self):
        assert isinstance(make_model("DeepFM", "binary"), DeepFMClassifier)

    def test_deepfm_rejects_regression(self):
        with pytest.raises(ValueError):
            make_model("DeepFM", "regression")

    def test_deepfm_rejects_multiclass(self):
        with pytest.raises(ValueError):
            make_model("DeepFM", "multiclass")

    def test_case_insensitive(self):
        assert isinstance(make_model("lr", "binary"), LogisticRegression)

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            make_model("SVM", "binary")

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            make_model("LR", "ranking")

    def test_all_names_classification_instantiable(self):
        for name in MODEL_NAMES:
            model = make_model(name, "binary")
            assert is_classifier(model)

    def test_fast_flag_changes_capacity(self):
        fast = make_model("XGB", "binary", fast=True)
        slow = make_model("XGB", "binary", fast=False)
        assert fast.n_estimators < slow.n_estimators
