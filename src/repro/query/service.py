"""Admission-controlled query service: cross-request coalescing into fused batches.

The engine layers below this module execute *one caller's* batch fast: fused
plans, sharded workers, process pools, byte budgets, delta refresh.  Under
service traffic -- many concurrent callers hammering one relevant table --
each caller issuing its own ``execute_batch`` still forfeits cross-request
reuse: two callers asking for the same template's features pay the masks,
lexsort orders and (for identical queries) the aggregates twice, and nothing
bounds how much work the engine accepts at once.  :class:`QueryService` is
the admission layer that turns the engine into a shared service:

* **Bounded admission queue** -- :meth:`QueryService.submit` lowers a
  caller's queries to plans and enqueues them with a future.  The queue is
  bounded in *queries* (``ServiceConfig.max_queue``); a submission that
  would overflow it is rejected **deterministically** with
  :class:`ServiceOverloadedError` -- backpressure is an error the caller
  sees, never a silent drop.
* **Micro-batch coalescing** -- a single dispatcher thread collects queued
  requests for up to ``coalesce_window_ms`` (or until ``max_batch`` queries
  are waiting) and executes them as **one** fused engine round, so
  concurrent callers share predicate masks, group indexes and sort orders
  exactly as if one caller had batched their queries by hand.
* **Cross-request dedup** -- identical plans from different requests (same
  :meth:`~repro.query.plan.QueryPlan.signature`) execute once per round via
  :meth:`QueryEngine.execute_plans_deduped`; duplicates receive the shared
  result table by fan-out.
* **Deadlines** -- a per-request timeout (``timeout_ms``, defaulting to
  ``ServiceConfig.request_timeout_ms``) bounds *queue wait*: a request whose
  deadline passes before its round starts resolves with
  :class:`DeadlineExpiredError` instead of executing stale work.  Once a
  round starts executing, its results are always delivered.
* **Graceful drain** -- :meth:`QueryService.close` stops admission
  (:class:`ServiceClosedError` for later submissions) and, by default,
  drains the queue so every in-flight future resolves with its results;
  ``drain=False`` instead resolves still-queued futures with
  :class:`ServiceClosedError`.  Either way no future is ever left hanging.

Determinism contract: the dispatcher is one thread and the engine rounds are
ordinary ``execute_plans`` calls, so results are **bit-identical** to each
caller running its queries serially on the same engine, at any concurrency
level, on every backend / shard strategy / executor combination (1e-9 for
sqlite, matching the engine's own bar) -- pinned by
``tests/query/test_service.py`` and the acceptance hammer test.

Observability: the service books ``service_admitted`` / ``service_rejected``
/ ``service_timeouts`` / ``service_rounds`` / ``service_coalesced`` /
``service_deduped`` counters and the ``service_queue_depth`` /
``service_batch_occupancy`` gauges on the wrapped engine's
:class:`~repro.query.engine.EngineStats`, flowing through ``delta_since`` /
``reset`` under the documented counter-vs-gauge contract.

Configuration mirrors the ``$REPRO_ENGINE_*`` conventions:
``ServiceConfig(None)`` fields resolve against ``$REPRO_SERVICE_WINDOW_MS``,
``$REPRO_SERVICE_MAX_BATCH``, ``$REPRO_SERVICE_QUEUE_DEPTH`` and
``$REPRO_SERVICE_TIMEOUT_MS`` at use time, with malformed values failing
eagerly at config resolution (``ServiceConfig.validate``), exactly like the
engine's environment knobs.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from collections import deque

from repro.query.engine import QueryEngine
from repro.query.plan import QueryPlan
from repro.query.query import PredicateAwareQuery

#: Environment variables mirroring the ``$REPRO_ENGINE_*`` conventions.
WINDOW_ENV_VAR = "REPRO_SERVICE_WINDOW_MS"
MAX_BATCH_ENV_VAR = "REPRO_SERVICE_MAX_BATCH"
QUEUE_ENV_VAR = "REPRO_SERVICE_QUEUE_DEPTH"
TIMEOUT_ENV_VAR = "REPRO_SERVICE_TIMEOUT_MS"

#: Default micro-batch coalescing window.  Long enough that submissions from
#: concurrently running callers land in one round, short enough to stay
#: invisible next to a fused round's execution time.
DEFAULT_WINDOW_MS = 2.0

#: Default bound on the queries executed per fused round.
DEFAULT_MAX_BATCH = 64

#: Default bound on the queries waiting in the admission queue.
DEFAULT_QUEUE_DEPTH = 1024


class ServiceError(RuntimeError):
    """Base class of every error the service resolves futures with."""


class ServiceClosedError(ServiceError):
    """Submission after :meth:`QueryService.close`, or a request cancelled
    by a non-draining close."""


class ServiceOverloadedError(ServiceError):
    """Deterministic queue-full backpressure: the submission was rejected
    at admission (nothing was enqueued) and should be retried later."""


class DeadlineExpiredError(ServiceError):
    """The request's deadline passed while it waited in the queue."""


def _env_float(name: str, minimum: float, allow_equal: bool) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"${name} must be a number, got {raw!r}") from None
    if value < minimum or (not allow_equal and value == minimum):
        bound = ">=" if allow_equal else ">"
        raise ValueError(f"${name} must be {bound} {minimum:g}, got {raw!r}")
    return value


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"${name} must be a positive integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"${name} must be a positive integer, got {raw!r}")
    return value


def default_window_ms() -> float:
    """``$REPRO_SERVICE_WINDOW_MS`` or 2.0 (0 disables the coalesce wait)."""
    value = _env_float(WINDOW_ENV_VAR, 0.0, allow_equal=True)
    return DEFAULT_WINDOW_MS if value is None else value


def default_max_batch() -> int:
    """``$REPRO_SERVICE_MAX_BATCH`` or 64."""
    value = _env_int(MAX_BATCH_ENV_VAR)
    return DEFAULT_MAX_BATCH if value is None else value


def default_queue_depth() -> int:
    """``$REPRO_SERVICE_QUEUE_DEPTH`` or 1024."""
    value = _env_int(QUEUE_ENV_VAR)
    return DEFAULT_QUEUE_DEPTH if value is None else value


def default_timeout_ms() -> Optional[float]:
    """``$REPRO_SERVICE_TIMEOUT_MS`` or ``None`` (no deadline)."""
    return _env_float(TIMEOUT_ENV_VAR, 0.0, allow_equal=False)


@dataclass(frozen=True)
class ServiceConfig:
    """Construction-time knobs of a :class:`QueryService`.

    Like :class:`~repro.query.engine.EngineConfig`, every ``None`` field
    resolves against its environment variable at use time, and
    :meth:`validate` raises eagerly on malformed explicit *or* environment
    values so a typo surfaces where the service is configured, not at the
    first request.
    """

    #: Micro-batch window in milliseconds: how long the dispatcher waits,
    #: after the first queued request, for more requests to coalesce with.
    #: ``0`` dispatches immediately (coalescing then only merges requests
    #: that queued while a previous round executed).
    coalesce_window_ms: Optional[float] = None
    #: Bound on the queries executed per fused round.  Whole requests are
    #: never split: one request larger than the bound rides a round alone.
    max_batch: Optional[int] = None
    #: Bound on the queries waiting in the admission queue; submissions
    #: that would overflow it raise :class:`ServiceOverloadedError`.
    max_queue: Optional[int] = None
    #: Default per-request deadline in milliseconds (queue wait only);
    #: ``None`` = requests wait indefinitely unless ``submit(timeout_ms=)``
    #: says otherwise.
    request_timeout_ms: Optional[float] = None

    @property
    def window_ms(self) -> float:
        return default_window_ms() if self.coalesce_window_ms is None else float(self.coalesce_window_ms)

    @property
    def batch_limit(self) -> int:
        return default_max_batch() if self.max_batch is None else int(self.max_batch)

    @property
    def queue_limit(self) -> int:
        return default_queue_depth() if self.max_queue is None else int(self.max_queue)

    @property
    def timeout_ms(self) -> Optional[float]:
        if self.request_timeout_ms is None:
            return default_timeout_ms()
        return float(self.request_timeout_ms)

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed knobs, explicit or from the
        environment (the resolution properties re-parse ``$REPRO_SERVICE_*``)."""
        if self.window_ms < 0:
            raise ValueError(
                f"coalesce_window_ms must be >= 0, got {self.coalesce_window_ms!r}"
            )
        if self.batch_limit < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch!r}")
        if self.queue_limit < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue!r}")
        timeout = self.timeout_ms
        if timeout is not None and timeout <= 0:
            raise ValueError(
                f"request_timeout_ms must be > 0 (or None for no deadline), "
                f"got {self.request_timeout_ms!r}"
            )


class _Request:
    """One admitted submission: its plans, future and queue deadline."""

    __slots__ = ("plans", "future", "deadline")

    def __init__(
        self,
        plans: List[QueryPlan],
        future: "Future[List[object]]",
        deadline: Optional[float],
    ):
        self.plans = plans
        self.future = future
        self.deadline = deadline


class QueryService:
    """Admission-controlled facade over one warm :class:`QueryEngine`.

    See the module docstring for the full contract.  Typical use::

        engine = engine_for(relevant_table, config)
        with QueryService(engine, ServiceConfig(coalesce_window_ms=2)) as service:
            future = service.submit(queries)          # from any thread
            tables = future.result()                  # list, input order
            # or blocking in one call:
            tables = service.execute(other_queries, timeout_ms=50)

    ``auto_start=False`` skips the dispatcher thread; queued requests then
    only execute through :meth:`run_pending_round` -- the deterministic
    single-step mode the failure-path tests (and embedders that bring their
    own event loop) drive directly.
    """

    def __init__(
        self,
        engine: QueryEngine,
        config: Optional[ServiceConfig] = None,
        auto_start: bool = True,
    ):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.config.validate()
        self._window_s = self.config.window_ms / 1000.0
        self._max_batch = self.config.batch_limit
        self._max_queue = self.config.queue_limit
        self._default_timeout_ms = self.config.timeout_ms
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: Deque[_Request] = deque()
        self._depth = 0  # queries (not requests) currently queued
        self._closing = False
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if auto_start:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-query-service", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        queries: Sequence[PredicateAwareQuery],
        timeout_ms: Optional[float] = None,
    ) -> "Future[List[object]]":
        """Admit one caller's query batch; returns a future of its tables.

        The future resolves to one result table per query, in input order
        -- bit-identical to ``engine.execute_batch(queries)`` run serially.
        Raises :class:`ServiceClosedError` after :meth:`close` and
        :class:`ServiceOverloadedError` when admitting the batch would
        overflow the queue (nothing is enqueued in either case).
        ``timeout_ms`` overrides the config's default deadline for this
        request; it bounds queue wait, not execution.
        """
        plans = [self.engine.plan(query) for query in queries]
        future: "Future[List[object]]" = Future()
        if not plans:
            future.set_result([])
            return future
        if timeout_ms is None:
            timeout_ms = self._default_timeout_ms
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {timeout_ms!r}")
        deadline = (
            time.monotonic() + timeout_ms / 1000.0 if timeout_ms is not None else None
        )
        stats = self.engine.stats
        with self._lock:
            if self._closing or self._closed:
                raise ServiceClosedError("QueryService is closed to new submissions")
            if self._depth + len(plans) > self._max_queue:
                stats.bump(service_rejected=len(plans))
                raise ServiceOverloadedError(
                    f"admission queue is full ({self._depth}/{self._max_queue} "
                    f"queries waiting; submission of {len(plans)} rejected)"
                )
            self._queue.append(_Request(plans, future, deadline))
            self._depth += len(plans)
            stats.bump(service_admitted=len(plans))
            stats.set_gauges(service_queue_depth=self._depth)
            self._not_empty.notify_all()
        return future

    def execute(
        self,
        queries: Sequence[PredicateAwareQuery],
        timeout_ms: Optional[float] = None,
    ) -> List[object]:
        """Blocking convenience: :meth:`submit` and wait for the results."""
        return self.submit(queries, timeout_ms=timeout_ms).result()

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a round (also a stats gauge)."""
        with self._lock:
            return self._depth

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._not_empty.wait()
                if not self._queue:  # closing and drained
                    return
                if self._window_s > 0.0 and not self._closing:
                    # Coalesce: wait for more requests until the window
                    # elapses or a full round's worth of queries is waiting.
                    end = time.monotonic() + self._window_s
                    while self._depth < self._max_batch and not self._closing:
                        remaining = end - time.monotonic()
                        if remaining <= 0.0:
                            break
                        self._not_empty.wait(remaining)
                batch = self._pop_round_locked()
            self._run_round(batch)

    def _pop_round_locked(self) -> List[_Request]:
        """Pop whole requests up to ``max_batch`` queries (caller holds the
        lock).  At least one request is always popped, so one oversized
        request rides a round alone rather than starving."""
        batch: List[_Request] = []
        taken = 0
        while self._queue:
            request = self._queue[0]
            if batch and taken + len(request.plans) > self._max_batch:
                break
            self._queue.popleft()
            batch.append(request)
            taken += len(request.plans)
        self._depth -= taken
        self.engine.stats.set_gauges(service_queue_depth=self._depth)
        return batch

    def _run_round(self, requests: List[_Request]) -> None:
        """Execute one micro-batch round; every future resolves, always."""
        stats = self.engine.stats
        now = time.monotonic()
        live: List[_Request] = []
        for request in requests:
            if request.deadline is not None and now > request.deadline:
                stats.bump(service_timeouts=len(request.plans))
                request.future.set_exception(
                    DeadlineExpiredError(
                        "request deadline expired while queued "
                        f"({len(request.plans)} queries dropped before execution)"
                    )
                )
                continue
            if not request.future.set_running_or_notify_cancel():
                continue  # the caller cancelled the future while it queued
            live.append(request)
        if not live:
            return
        plans = [plan for request in live for plan in request.plans]
        try:
            tables, duplicates = self.engine.execute_plans_deduped(plans)
        except BaseException as exc:  # noqa: BLE001 - resolve, never hang
            for request in live:
                request.future.set_exception(exc)
            return
        stats.bump(
            service_rounds=1,
            service_deduped=duplicates,
            service_coalesced=len(plans) if len(live) > 1 else 0,
        )
        stats.set_gauges(service_batch_occupancy=len(plans) / self._max_batch)
        offset = 0
        for request in live:
            n = len(request.plans)
            request.future.set_result(tables[offset : offset + n])
            offset += n

    def run_pending_round(self) -> int:
        """Synchronously execute one round of queued requests (manual mode).

        Returns the number of requests taken off the queue (0 when idle).
        Usable on an ``auto_start=False`` service -- the deterministic
        drive mode -- or alongside the dispatcher thread (the queue is the
        only shared state and both paths pop under the lock).
        """
        with self._lock:
            if not self._queue:
                return 0
            batch = self._pop_round_locked()
        self._run_round(batch)
        return len(batch)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop admission and shut the dispatcher down; idempotent.

        ``drain=True`` (default) lets every already-admitted request
        execute and resolve with its results before the dispatcher exits;
        ``drain=False`` resolves still-queued futures with
        :class:`ServiceClosedError` immediately (a round already executing
        still delivers its results).  Either way every outstanding future
        resolves -- no caller is ever left hanging -- and later
        submissions raise :class:`ServiceClosedError`.  The wrapped engine
        is left open: it outlives the service by design (close it
        separately when the table is done).
        """
        with self._lock:
            if self._closed:
                return
            self._closing = True
            cancelled: List[_Request] = []
            if not drain:
                cancelled = list(self._queue)
                self._queue.clear()
                self._depth = 0
                self.engine.stats.set_gauges(service_queue_depth=0)
            self._not_empty.notify_all()
        for request in cancelled:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    ServiceClosedError("QueryService closed before the request ran")
                )
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        elif drain:
            # Manual mode: draining close runs the remaining rounds inline.
            while self.run_pending_round():
                pass
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
