"""Unit tests for the TPE optimiser."""

import numpy as np
import pytest

from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.space import CategoricalDimension, IntegerDimension, RealDimension, SearchSpace
from repro.hpo.tpe import TPEOptimizer
from repro.hpo.trial import Trial


@pytest.fixture
def quadratic_space():
    return SearchSpace([RealDimension("x", -10, 10), RealDimension("y", -10, 10)])


def quadratic(params):
    return (params["x"] - 3) ** 2 + (params["y"] + 2) ** 2


class TestTPE:
    def test_suggestions_valid(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0, n_startup_trials=3)
        for _ in range(25):
            params = optimizer.suggest()
            quadratic_space.validate(params)
            optimizer.observe(params, quadratic(params))

    def test_optimises_quadratic_better_than_random_on_average(self, quadratic_space):
        def best_of(optimizer_factory, seed):
            return optimizer_factory(seed).minimize(quadratic, n_iter=60).value

        tpe_scores = [
            best_of(lambda s: TPEOptimizer(quadratic_space, seed=s, n_startup_trials=8), s)
            for s in range(3)
        ]
        random_scores = [
            best_of(lambda s: RandomSearchOptimizer(quadratic_space, seed=s), s) for s in range(3)
        ]
        # Averaged over seeds TPE should at least match random search and find
        # a reasonable optimum of the quadratic (global minimum value is 0).
        assert np.mean(tpe_scores) <= np.mean(random_scores) + 2.0
        assert min(tpe_scores) < 10.0

    def test_exploitation_concentrates_near_good_region(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=1, n_startup_trials=5)
        for _ in range(40):
            params = optimizer.suggest()
            optimizer.observe(params, quadratic(params))
        late = [optimizer.suggest() for _ in range(10)]
        distances = [abs(p["x"] - 3) + abs(p["y"] + 2) for p in late]
        assert np.median(distances) < 10.0

    def test_categorical_optimisation(self):
        space = SearchSpace([CategoricalDimension("c", list("abcdef"))])
        target = {"a": 5.0, "b": 4.0, "c": 3.0, "d": 2.0, "e": 1.0, "f": 0.0}
        optimizer = TPEOptimizer(space, seed=0, n_startup_trials=5)
        best = optimizer.minimize(lambda p: target[p["c"]], n_iter=40)
        assert best.params["c"] == "f"

    def test_integer_dimension_rounds(self):
        space = SearchSpace([IntegerDimension("k", 0, 20)])
        optimizer = TPEOptimizer(space, seed=0, n_startup_trials=5)
        for _ in range(30):
            params = optimizer.suggest()
            assert isinstance(params["k"], int)
            optimizer.observe(params, abs(params["k"] - 7))

    def test_optional_dimension_handles_none(self):
        space = SearchSpace([RealDimension("x", 0, 1, optional=True), CategoricalDimension("c", ["a"])])
        optimizer = TPEOptimizer(space, seed=0, n_startup_trials=4)

        def objective(params):
            return 0.0 if params["x"] is None else 1.0 + params["x"]

        best = optimizer.minimize(objective, n_iter=30)
        assert best.params["x"] is None

    def test_warm_start_biases_search(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=2, n_startup_trials=2, min_good=2)
        seeds = [
            Trial({"x": 3.0 + dx, "y": -2.0 + dy}, quadratic({"x": 3.0 + dx, "y": -2.0 + dy}))
            for dx, dy in [(-0.2, 0.1), (0.1, -0.1), (0.3, 0.2), (5.0, 5.0), (-6.0, 4.0), (8.0, -8.0)]
        ]
        optimizer.warm_start(seeds)
        suggestions = [optimizer.suggest() for _ in range(10)]
        distances = [abs(p["x"] - 3) + abs(p["y"] + 2) for p in suggestions]
        assert np.median(distances) < 8.0

    def test_gamma_validation(self, quadratic_space):
        with pytest.raises(ValueError):
            TPEOptimizer(quadratic_space, gamma=1.5)

    def test_deterministic_given_seed(self, quadratic_space):
        def run(seed):
            opt = TPEOptimizer(quadratic_space, seed=seed, n_startup_trials=3)
            return opt.minimize(quadratic, n_iter=20).value

        assert run(7) == run(7)

    def test_history_grows(self, quadratic_space):
        optimizer = TPEOptimizer(quadratic_space, seed=0)
        optimizer.minimize(quadratic, n_iter=12)
        assert len(optimizer.history) == 12
