"""Unit tests for ModelEvaluator."""

import numpy as np
import pytest

from repro.core.evaluation import ModelEvaluator
from repro.dataframe.table import Table
from repro.ml.linear import LinearRegression, LogisticRegression
from repro.ml.preprocessing import train_valid_test_split
from repro.query.query import PredicateAwareQuery


@pytest.fixture
def binary_setup(rng):
    """A training table whose label depends on a relevant-table aggregate."""
    n_users = 240
    users = [f"u{i}" for i in range(n_users)]
    base = rng.normal(size=n_users)
    n_events = n_users * 6
    event_users = list(rng.choice(users, size=n_events))
    amount = rng.normal(size=n_events)
    relevant = Table.from_dict({"uid": event_users, "amount": amount})
    totals = {u: 0.0 for u in users}
    for u, a in zip(event_users, amount):
        totals[u] += a
    label = np.asarray([1.0 if totals[u] + 0.3 * b > 0 else 0.0 for u, b in zip(users, base)])
    train_table = Table.from_dict({"uid": users, "base": base, "label": label})
    train, valid, _ = train_valid_test_split(train_table, (0.7, 0.3, 0.0), seed=0)
    evaluator = ModelEvaluator(
        train,
        valid,
        label="label",
        base_features=["base"],
        model=LogisticRegression(n_iter=150),
        task="binary",
        relevant_table=relevant,
    )
    return evaluator, relevant


class TestBinaryEvaluation:
    def test_baseline_returns_auc(self, binary_setup):
        evaluator, _ = binary_setup
        result = evaluator.evaluate_baseline()
        assert result.metric_name == "auc"
        assert 0.0 <= result.metric <= 1.0
        assert result.loss == pytest.approx(1.0 - result.metric)

    def test_good_feature_improves_over_baseline(self, binary_setup):
        evaluator, relevant = binary_setup
        query = PredicateAwareQuery(agg_func="SUM", agg_attr="amount", keys=("uid",))
        baseline = evaluator.evaluate_baseline()
        augmented = evaluator.evaluate_query(query, relevant)
        assert augmented.metric > baseline.metric + 0.05

    def test_feature_vectors_align_with_rows(self, binary_setup):
        evaluator, relevant = binary_setup
        query = PredicateAwareQuery(agg_func="COUNT", agg_attr="amount", keys=("uid",))
        train_vec, valid_vec = evaluator.feature_vectors_for_query(query, relevant)
        assert train_vec.shape[0] == evaluator.y_train.shape[0]
        assert valid_vec.shape[0] == evaluator.y_valid.shape[0]

    def test_evaluate_queries_multiple_features(self, binary_setup):
        evaluator, relevant = binary_setup
        queries = [
            PredicateAwareQuery(agg_func="SUM", agg_attr="amount", keys=("uid",)),
            PredicateAwareQuery(agg_func="AVG", agg_attr="amount", keys=("uid",)),
        ]
        result = evaluator.evaluate_queries(queries, relevant)
        assert 0.0 <= result.metric <= 1.0

    def test_evaluate_matrix_with_nan_column(self, binary_setup):
        evaluator, _ = binary_setup
        n_train = evaluator.y_train.shape[0]
        n_valid = evaluator.y_valid.shape[0]
        extra_train = np.full((n_train, 1), np.nan)
        extra_valid = np.full((n_valid, 1), np.nan)
        result = evaluator.evaluate_matrix(extra_train, extra_valid)
        assert np.isfinite(result.loss)

    def test_missing_relevant_table_raises(self, binary_setup, rng):
        evaluator, _ = binary_setup
        evaluator.relevant_table = None
        query = PredicateAwareQuery(agg_func="SUM", agg_attr="amount", keys=("uid",))
        with pytest.raises(ValueError):
            evaluator.feature_vectors_for_query(query)

    def test_unknown_task_rejected(self, binary_setup):
        evaluator, _ = binary_setup
        with pytest.raises(ValueError):
            ModelEvaluator(
                evaluator._train_table,
                evaluator._valid_table,
                label="label",
                base_features=["base"],
                model=LogisticRegression(),
                task="ranking",
            )


class TestRegressionEvaluation:
    def test_rmse_loss(self, rng):
        n = 120
        X = rng.normal(size=n)
        y = 2 * X + rng.normal(0, 0.1, size=n)
        table = Table.from_dict({"uid": [f"u{i}" for i in range(n)], "x": X, "label": y})
        train, valid, _ = train_valid_test_split(table, (0.7, 0.3, 0.0), seed=0)
        evaluator = ModelEvaluator(
            train, valid, label="label", base_features=["x"], model=LinearRegression(), task="regression"
        )
        result = evaluator.evaluate_baseline()
        assert result.metric_name == "rmse"
        assert result.loss == result.metric
        assert result.metric < 0.5


class TestMulticlassEvaluation:
    def test_f1_metric(self, rng):
        n = 150
        X = rng.normal(size=(n, 2))
        label = np.argmax(np.column_stack([X[:, 0], X[:, 1], -X.sum(axis=1)]), axis=1).astype(float)
        table = Table.from_dict({"a": X[:, 0], "b": X[:, 1], "label": label})
        train, valid, _ = train_valid_test_split(table, (0.7, 0.3, 0.0), seed=0)
        evaluator = ModelEvaluator(
            train, valid, label="label", base_features=["a", "b"],
            model=LogisticRegression(n_iter=150), task="multiclass",
        )
        result = evaluator.evaluate_baseline()
        assert result.metric_name == "f1"
        assert result.metric > 0.6

    def test_categorical_label_encoded(self, rng):
        n = 100
        x = rng.normal(size=n)
        label = ["yes" if v > 0 else "no" for v in x]
        table = Table.from_dict({"x": x, "label": label})
        train, valid, _ = train_valid_test_split(table, (0.7, 0.3, 0.0), seed=0)
        evaluator = ModelEvaluator(
            train, valid, label="label", base_features=["x"],
            model=LogisticRegression(n_iter=100), task="binary",
        )
        assert evaluator.evaluate_baseline().metric > 0.8
