"""Trial bookkeeping for the optimisers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Trial:
    """One evaluated point: parameters, objective value and optional metadata."""

    params: Dict[str, object]
    value: float
    metadata: Dict[str, object] = field(default_factory=dict)


class TrialHistory:
    """Ordered list of trials with convenience accessors."""

    def __init__(self):
        self._trials: List[Trial] = []

    def add(self, trial: Trial) -> None:
        self._trials.append(trial)

    def __len__(self) -> int:
        return len(self._trials)

    def __iter__(self):
        return iter(self._trials)

    def __getitem__(self, index: int) -> Trial:
        return self._trials[index]

    @property
    def trials(self) -> List[Trial]:
        return list(self._trials)

    def best(self, minimize: bool = True) -> Trial:
        """The trial with the lowest (or highest) objective value."""
        if not self._trials:
            raise ValueError("No trials recorded yet")
        key = (lambda t: t.value) if minimize else (lambda t: -t.value)
        return min(self._trials, key=key)

    def top_k(self, k: int, minimize: bool = True) -> List[Trial]:
        """The *k* best trials, best first."""
        ordered = sorted(self._trials, key=lambda t: t.value, reverse=not minimize)
        return ordered[:k]

    def values(self) -> List[float]:
        return [t.value for t in self._trials]
