"""Unit tests for the estimator base class."""

import numpy as np
import pytest

from repro.ml.base import BaseEstimator, is_classifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.linear import LinearRegression, LogisticRegression


class TestCloning:
    def test_clone_copies_constructor_parameters(self):
        model = RandomForestClassifier(n_estimators=7, max_depth=3, random_state=42)
        clone = model.clone()
        assert clone.n_estimators == 7
        assert clone.max_depth == 3
        assert clone.random_state == 42

    def test_clone_drops_fitted_state(self):
        rng = np.random.default_rng(0)
        X, y = rng.normal(size=(40, 2)), rng.integers(0, 2, size=40).astype(float)
        model = LogisticRegression(n_iter=20).fit(X, y)
        clone = model.clone()
        assert not hasattr(clone, "coef_")
        with pytest.raises(AttributeError):
            clone.predict(X)

    def test_clone_is_deep_for_mutable_params(self):
        model = GradientBoostingRegressor(n_estimators=3)
        clone = model.clone()
        clone.n_estimators = 99
        assert model.n_estimators == 3

    def test_cloned_model_trains_identically(self):
        rng = np.random.default_rng(1)
        X, y = rng.normal(size=(60, 3)), rng.normal(size=60)
        original = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(X, y)
        retrained = original.clone().fit(X, y)
        assert np.allclose(original.predict(X), retrained.predict(X))


class TestValidation:
    def test_validate_rejects_1d_features(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros(5), np.zeros(5))

    def test_validate_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((5, 2)), np.zeros(6))

    def test_validate_flattens_column_labels(self):
        X = np.random.default_rng(0).normal(size=(10, 1))
        y = (X * 2).reshape(-1, 1)
        model = LinearRegression().fit(X, y)
        assert model.predict(X).shape == (10,)


class TestClassifierFlag:
    def test_regressors_not_classifiers(self):
        assert not is_classifier(LinearRegression())
        assert not is_classifier(GradientBoostingRegressor())

    def test_classifiers_flagged(self):
        assert is_classifier(LogisticRegression())
        assert is_classifier(RandomForestClassifier())

    def test_default_base_estimator_is_regressor(self):
        assert not is_classifier(BaseEstimator())
