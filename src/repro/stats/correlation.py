"""Pearson and Spearman correlation coefficients.

Spearman correlation is one of the alternative low-cost proxies evaluated in
Table VIII of the paper.
"""

from __future__ import annotations

import numpy as np


def rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing the mean rank."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.shape[0], dtype=np.float64)
    ranks[order] = np.arange(1, values.shape[0] + 1, dtype=np.float64)
    # Average the ranks of tied values.
    sorted_values = values[order]
    i = 0
    n = values.shape[0]
    while i < n:
        j = i
        while j + 1 < n and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            mean_rank = (i + j + 2) / 2.0
            ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def _paired_finite(x, y):
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = ~(np.isnan(x) | np.isnan(y))
    return x[mask], y[mask]


def pearson_correlation(x, y) -> float:
    """Pearson correlation of the pairwise-finite entries of *x* and *y*."""
    x, y = _paired_finite(x, y)
    if x.size < 2:
        return 0.0
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def spearman_correlation(x, y) -> float:
    """Spearman rank correlation (Pearson correlation of the rank vectors)."""
    x, y = _paired_finite(x, y)
    if x.size < 2:
        return 0.0
    return pearson_correlation(rankdata(x), rankdata(y))
