"""Unit tests for the group-by aggregation engine."""

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.groupby import group_by_aggregate, group_indices, group_sizes
from repro.dataframe.table import Table


@pytest.fixture
def logs():
    return Table.from_dict(
        {
            "cname": ["alice", "alice", "bob", "bob", "bob", "carol"],
            "merchant": ["m1", "m2", "m1", "m1", "m2", "m1"],
            "price": [10.0, 20.0, 5.0, np.nan, 15.0, 7.0],
        }
    )


class TestGroupIndices:
    def test_group_count(self, logs):
        groups = group_indices(logs, ["cname"])
        assert len(groups) == 3

    def test_group_members(self, logs):
        groups = group_indices(logs, ["cname"])
        assert list(groups[("bob",)]) == [2, 3, 4]

    def test_multi_key_groups(self, logs):
        groups = group_indices(logs, ["cname", "merchant"])
        assert len(groups) == 5
        assert list(groups[("bob", "m1")]) == [2, 3]

    def test_numeric_key_normalisation(self):
        table = Table.from_dict({"k": [1, 1.0, 2], "v": [1.0, 2.0, 3.0]})
        groups = group_indices(table, ["k"])
        assert len(groups) == 2

    def test_requires_key(self, logs):
        with pytest.raises(ValueError):
            group_indices(logs, [])

    def test_group_sizes(self, logs):
        sizes = group_sizes(logs, ["cname"])
        assert sizes[("alice",)] == 2
        assert sizes[("bob",)] == 3


class TestGroupByAggregate:
    def test_avg_per_group(self, logs):
        out = group_by_aggregate(logs, ["cname"], "price", "AVG")
        by_key = dict(zip(out.column("cname").values, out.column("feature").values))
        assert by_key["alice"] == 15.0
        assert by_key["bob"] == 10.0  # NaN ignored
        assert by_key["carol"] == 7.0

    def test_count_per_group_ignores_nan(self, logs):
        out = group_by_aggregate(logs, ["cname"], "price", "COUNT")
        by_key = dict(zip(out.column("cname").values, out.column("feature").values))
        assert by_key["bob"] == 2.0

    def test_output_name(self, logs):
        out = group_by_aggregate(logs, ["cname"], "price", "SUM", output_name="total")
        assert "total" in out

    def test_one_row_per_group(self, logs):
        out = group_by_aggregate(logs, ["cname"], "price", "MAX")
        assert out.num_rows == 3

    def test_multi_key_output_preserves_both_keys(self, logs):
        out = group_by_aggregate(logs, ["cname", "merchant"], "price", "SUM")
        assert set(out.column_names) == {"cname", "merchant", "feature"}
        assert out.num_rows == 5

    def test_categorical_aggregation_attribute(self, logs):
        out = group_by_aggregate(logs, ["cname"], "merchant", "COUNT_DISTINCT")
        by_key = dict(zip(out.column("cname").values, out.column("feature").values))
        assert by_key["bob"] == 2.0
        assert by_key["carol"] == 1.0

    def test_unknown_aggregate_raises(self, logs):
        with pytest.raises(KeyError):
            group_by_aggregate(logs, ["cname"], "price", "NOPE")

    def test_numeric_key_dtype_preserved(self):
        table = Table.from_dict({"k": [1, 1, 2], "v": [1.0, 3.0, 5.0]})
        out = group_by_aggregate(table, ["k"], "v", "AVG")
        assert out.column("k").dtype is DType.NUMERIC

    def test_sql_example_from_paper(self):
        """The SELECT cname, AVG(pprice) GROUP BY cname query from Example 2."""
        logs = Table.from_dict(
            {
                "cname": ["alice", "alice", "bob"],
                "pprice": [100.0, 200.0, 50.0],
            }
        )
        out = group_by_aggregate(logs, ["cname"], "pprice", "AVG", output_name="avgprice")
        by_key = dict(zip(out.column("cname").values, out.column("avgprice").values))
        assert by_key == {"alice": 150.0, "bob": 50.0}
