"""Property-based tests for the query layer and the HPO substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.hpo.kde import CategoricalDensity, GaussianKDE
from repro.hpo.space import CategoricalDimension, RealDimension, SearchSpace
from repro.query.executor import execute_query
from repro.query.pool import QueryPool
from repro.query.template import QueryTemplate

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def relevant_table(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    keys = draw(st.lists(st.sampled_from(["u1", "u2", "u3", "u4"]), min_size=n, max_size=n))
    cats = draw(st.lists(st.sampled_from(["red", "green", "blue"]), min_size=n, max_size=n))
    values = draw(st.lists(finite_floats, min_size=n, max_size=n))
    return Table(
        [
            Column("uid", keys, dtype=DType.CATEGORICAL),
            Column("colour", cats, dtype=DType.CATEGORICAL),
            Column("amount", values, dtype=DType.NUMERIC),
        ]
    )


class TestQueryPoolProperties:
    @given(table=relevant_table(), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_every_sampled_query_is_executable(self, table, seed):
        template = QueryTemplate(["SUM", "AVG", "COUNT"], ["amount"], ["colour", "amount"], ["uid"])
        pool = QueryPool(template, table)
        for query in pool.sample_random(seed=seed, n=5):
            result = execute_query(query, table)
            assert result.num_rows <= len(set(table.column("uid").values))
            assert "feature" in result

    @given(table=relevant_table(), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_decoded_query_feature_rows_unique_per_key(self, table, seed):
        template = QueryTemplate(["SUM"], ["amount"], ["colour"], ["uid"])
        pool = QueryPool(template, table)
        query = pool.sample_random(seed=seed, n=1)[0]
        result = execute_query(query, table)
        keys = list(result.column("uid").values)
        assert len(keys) == len(set(keys))

    @given(table=relevant_table(), seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_encode_decode_roundtrip_signature(self, table, seed):
        template = QueryTemplate(["SUM", "MAX"], ["amount"], ["colour", "amount"], ["uid"])
        pool = QueryPool(template, table)
        query = pool.sample_random(seed=seed, n=1)[0]
        assert pool.decode(pool.encode(query)).signature() == query.signature()


class TestDensityProperties:
    @given(
        observations=st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=0, max_size=30),
        value=st.floats(min_value=0, max_value=1, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_kde_pdf_positive(self, observations, value):
        kde = GaussianKDE(0.0, 1.0, observations)
        assert kde.pdf(value) > 0

    @given(
        observations=st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_categorical_density_normalised(self, observations):
        density = CategoricalDensity(["a", "b", "c"], observations)
        np.testing.assert_allclose(sum(density.pdf(c) for c in ["a", "b", "c"]), 1.0, rtol=1e-9)


class TestSearchSpaceProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_samples_always_validate(self, seed):
        space = SearchSpace(
            [
                CategoricalDimension("agg", ["SUM", "AVG", None]),
                RealDimension("low", -5, 5, optional=True),
                RealDimension("high", -5, 5, optional=True),
            ]
        )
        rng = np.random.default_rng(seed)
        space.validate(space.sample(rng))
