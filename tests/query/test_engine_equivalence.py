"""Executor-equivalence suite: every registered backend vs the naive path.

``QueryEngine.execute`` / ``execute_batch`` must produce tables equivalent to
``execute_query_naive`` for every query the search can generate -- NaN keys,
empty filter results, categorical aggregation attributes and all 15 aggregate
functions -- on **every registered execution backend**.  The suite reads the
backend registry, so a newly registered backend inherits the whole
equivalence suite for free.

Two equivalence bars:

* the in-process backends (``numpy``, ``python``) must be element-wise
  **bit-for-bit identical** (same columns, dtypes and values, NaN included):
  both honour the accumulation-order contract of
  :mod:`repro.dataframe.aggregates` (strict left-to-right sums, the order
  ``np.bincount`` accumulates in), so no float tolerance is needed;
* backends that own their storage and re-accumulate floats in their own
  order (``sqlite``) are held to value equality within ``1e-9`` on feature
  values, with key columns, dtypes, group order and NaN placement exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe.aggregates import AGGREGATE_FUNCTIONS
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.backends import backend_names
from repro.query.engine import EngineConfig, QueryEngine, default_backend_name
from repro.query.executor import execute_query, execute_query_naive
from repro.query.query import PredicateAwareQuery, WindowConstraint

#: All plain aggregate names plus spelled parameterized family members; every
#: backend must agree on them exactly like on the historical fifteen.
AGG_FUNCS = list(AGGREGATE_FUNCTIONS) + [
    "QUANTILE:0.25",
    "QUANTILE:0.5",
    "TOP_K_SHARE:2",
]
PREDICATE_DTYPES = {"cat": DType.CATEGORICAL, "num": DType.NUMERIC}

#: Every registered backend runs the full suite.
BACKENDS = tuple(backend_names())

#: Backends whose results must match the reference bit-for-bit.  Everything
#: else (storage-owning backends, third-party registrations) is held to
#: value equality within this tolerance on the feature column.
EXACT_BACKENDS = ("numpy", "python")
VALUE_TOLERANCE = 1e-9

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def engine_with(table: Table, backend: str) -> QueryEngine:
    return QueryEngine(table, config=EngineConfig(backend=backend))


def assert_tables_match(actual: Table, expected: Table, exact: bool = True) -> None:
    """Same column names/order, same dtypes; values exact or within 1e-9.

    Group order and NaN placement are always exact -- only float magnitudes
    may differ (by accumulation order) on non-exact backends.
    """
    assert actual.column_names == expected.column_names
    for name in expected.column_names:
        left, right = actual.column(name), expected.column(name)
        assert left.dtype is right.dtype, f"{name}: {left.dtype} != {right.dtype}"
        if exact or not left.is_numeric_like:
            assert left == right, f"column {name!r} differs"
        else:
            a, b = left.values, right.values
            assert a.shape == b.shape, f"column {name!r}: shape mismatch"
            assert np.array_equal(np.isnan(a), np.isnan(b)), f"column {name!r}: NaN placement"
            assert np.allclose(a, b, rtol=0.0, atol=VALUE_TOLERANCE, equal_nan=True), (
                f"column {name!r} differs beyond {VALUE_TOLERANCE}"
            )


def assert_backend_matches_naive(backend: str, actual: Table, expected: Table) -> None:
    assert_tables_match(actual, expected, exact=backend in EXACT_BACKENDS)


@st.composite
def random_tables(draw):
    """Small tables with NaN-bearing numeric/categorical keys and attributes."""
    n = draw(st.integers(min_value=1, max_value=50))

    def rows(strategy):
        return draw(st.lists(strategy, min_size=n, max_size=n))

    return Table(
        [
            Column(
                "k_num",
                rows(st.one_of(st.none(), st.sampled_from([1.0, 2.0, 3.0, 4.0]))),
                dtype=DType.NUMERIC,
            ),
            Column(
                "k_cat",
                rows(st.sampled_from(["a", "b", "c", None])),
                dtype=DType.CATEGORICAL,
            ),
            Column("cat", rows(st.sampled_from(["x", "y", "z", None])), dtype=DType.CATEGORICAL),
            Column("num", rows(st.one_of(st.none(), finite_floats)), dtype=DType.NUMERIC),
            Column("val", rows(st.one_of(st.none(), finite_floats)), dtype=DType.NUMERIC),
        ]
    )


@st.composite
def random_queries(draw):
    keys = draw(st.sampled_from([("k_num",), ("k_cat",), ("k_num", "k_cat")]))
    agg_func = draw(st.sampled_from(AGG_FUNCS))
    # Include a categorical aggregation attribute: its integer coding depends
    # on the filter, which is exactly the subtle case every backend must
    # honour (sqlite recodes collected groups by first appearance).
    agg_attr = draw(st.sampled_from(["val", "num", "cat"]))
    predicates = {}
    if draw(st.booleans()):
        # "q" never occurs, so empty filter results are generated regularly --
        # both for scalar equality and inside IN-lists.
        predicates["cat"] = draw(
            st.one_of(
                st.sampled_from(["x", "y", "q"]),
                st.lists(
                    st.sampled_from(["x", "y", "z", "q"]), min_size=1, max_size=3
                ).map(tuple),
            )
        )
    if draw(st.booleans()):
        low = draw(st.one_of(st.none(), finite_floats))
        high = draw(st.one_of(st.none(), finite_floats))
        if low is not None and high is not None and low > high:
            low, high = high, low
        if low is not None and high is not None and draw(st.booleans()):
            # Half-open window over the numeric event column.
            predicates["num"] = WindowConstraint(low, high)
        elif low is not None or high is not None:
            predicates["num"] = (low, high)
    dtypes = {attr: PREDICATE_DTYPES[attr] for attr in predicates}
    return PredicateAwareQuery(agg_func, agg_attr, keys, predicates, dtypes)


@pytest.mark.parametrize("backend", BACKENDS)
class TestExecuteEquivalence:
    @given(table=random_tables(), query=random_queries())
    @settings(max_examples=50, deadline=None)
    def test_engine_matches_naive(self, backend, table, query):
        engine = engine_with(table, backend)
        expected = execute_query_naive(query, table)
        assert_backend_matches_naive(backend, engine.execute(query), expected)
        # Second run is served from the result cache and must be identical too.
        assert_backend_matches_naive(backend, engine.execute(query), expected)

    @given(table=random_tables(), queries=st.lists(random_queries(), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_naive(self, backend, table, queries):
        engine = engine_with(table, backend)
        results = engine.execute_batch(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert_backend_matches_naive(backend, result, execute_query_naive(query, table))


class TestCompatibilityWrapper:
    @given(table=random_tables(), query=random_queries())
    @settings(max_examples=30, deadline=None)
    def test_compatibility_wrapper_matches_naive(self, table, query):
        # execute_query goes through the shared engine on the process-default
        # backend (possibly overridden by $REPRO_ENGINE_BACKEND).
        assert_backend_matches_naive(
            default_backend_name(),
            execute_query(query, table),
            execute_query_naive(query, table),
        )


class TestBackendsAgree:
    """All backends produce equivalent tables for the same batch."""

    @given(table=random_tables(), queries=st.lists(random_queries(), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_all_backends_agree_on_batches(self, table, queries):
        engines = {backend: engine_with(table, backend) for backend in BACKENDS}
        batches = {backend: engine.execute_batch(queries) for backend, engine in engines.items()}
        reference = batches["numpy"]
        for backend in BACKENDS:
            exact = backend in EXACT_BACKENDS
            for got, want in zip(batches[backend], reference):
                assert_tables_match(got, want, exact=exact)
        # The legacy kernel counters track exactly the two in-process paths.
        assert engines["python"].stats.vectorized_aggregations == 0
        assert engines["numpy"].stats.python_aggregations == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestAllAggregateFunctions:
    @pytest.fixture
    def table(self, rng):
        n = 120
        return Table(
            [
                Column(
                    "key",
                    [None if rng.random() < 0.15 else float(rng.integers(0, 6)) for _ in range(n)],
                    dtype=DType.NUMERIC,
                ),
                Column(
                    "cat",
                    [None if rng.random() < 0.15 else str(rng.choice(list("uvw"))) for _ in range(n)],
                    dtype=DType.CATEGORICAL,
                ),
                Column(
                    "val",
                    [float("nan") if rng.random() < 0.2 else float(rng.normal()) for _ in range(n)],
                    dtype=DType.NUMERIC,
                ),
            ]
        )

    @pytest.mark.parametrize("agg_func", AGG_FUNCS)
    def test_numeric_attribute(self, backend, table, agg_func):
        engine = engine_with(table, backend)
        query = PredicateAwareQuery(
            agg_func, "val", ("key",), {"cat": "u"}, {"cat": DType.CATEGORICAL}
        )
        assert_backend_matches_naive(
            backend, engine.execute(query), execute_query_naive(query, table)
        )

    @pytest.mark.parametrize("agg_func", AGG_FUNCS)
    def test_categorical_attribute_under_filter(self, backend, table, agg_func):
        """Filtered categorical coding (MODE returns codes!) must match."""
        engine = engine_with(table, backend)
        query = PredicateAwareQuery(
            agg_func, "cat", ("key",), {"val": (-0.4, 2.0)}, {"val": DType.NUMERIC}
        )
        assert_backend_matches_naive(
            backend, engine.execute(query), execute_query_naive(query, table)
        )

    @pytest.mark.parametrize("agg_func", AGG_FUNCS)
    def test_batch_of_all_functions_shares_one_plan(self, backend, table, agg_func):
        engine = engine_with(table, backend)
        queries = [
            PredicateAwareQuery(f, "val", ("key",), {"cat": "v"}, {"cat": DType.CATEGORICAL})
            for f in AGG_FUNCS
        ]
        results = engine.execute_batch(queries)
        target = AGG_FUNCS.index(agg_func)
        assert_backend_matches_naive(
            backend, results[target], execute_query_naive(queries[target], table)
        )


class TestEdgeCases:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nan_keys_form_their_own_group(self, backend):
        table = Table(
            [
                Column("key", [1.0, float("nan"), 1.0, float("nan")], dtype=DType.NUMERIC),
                Column("val", [1.0, 2.0, 3.0, 4.0], dtype=DType.NUMERIC),
            ]
        )
        query = PredicateAwareQuery("SUM", "val", ("key",))
        result = engine_with(table, backend).execute(query)
        assert_backend_matches_naive(backend, result, execute_query_naive(query, table))
        assert result.num_rows == 2
        assert np.isnan(result.column("key").values).sum() == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_filter_result(self, backend, logs_table):
        query = PredicateAwareQuery(
            "AVG",
            "pprice",
            ("cname",),
            {"department": "does-not-exist"},
            {"department": DType.CATEGORICAL},
        )
        engine = engine_with(logs_table, backend)
        result = engine.execute(query)
        assert_backend_matches_naive(backend, result, execute_query_naive(query, logs_table))
        assert result.num_rows == 0
        assert result.column_names == ["cname", "feature"]
        assert engine.stats.empty_results == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_table(self, backend):
        table = Table(
            [
                Column("key", [], dtype=DType.NUMERIC),
                Column("val", [], dtype=DType.NUMERIC),
            ]
        )
        query = PredicateAwareQuery("COUNT", "val", ("key",))
        assert_backend_matches_naive(
            backend,
            engine_with(table, backend).execute(query),
            execute_query_naive(query, table),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_datetime_and_multi_key(self, backend, logs_table):
        from repro.dataframe.column import parse_datetime

        query = PredicateAwareQuery(
            "MAX",
            "pprice",
            ("cname", "pname"),
            {"timestamp": (parse_datetime("2023-05-01"), None)},
            {"timestamp": DType.DATETIME},
        )
        assert_backend_matches_naive(
            backend,
            engine_with(logs_table, backend).execute(query),
            execute_query_naive(query, logs_table),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_aggregate_raises(self, backend, logs_table):
        query = PredicateAwareQuery("NOPE", "pprice", ("cname",))
        with pytest.raises(KeyError):
            engine_with(logs_table, backend).execute(query)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_attribute_raises(self, backend, logs_table):
        query = PredicateAwareQuery("SUM", "missing", ("cname",))
        with pytest.raises(KeyError):
            engine_with(logs_table, backend).execute(query)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_predicate_on_categorical_raises(self, backend, logs_table):
        query = PredicateAwareQuery(
            "SUM", "pprice", ("cname",), {"department": (0.0, 1.0)}, {"department": DType.NUMERIC}
        )
        with pytest.raises(TypeError):
            engine_with(logs_table, backend).execute(query)
        with pytest.raises(TypeError):
            execute_query_naive(query, logs_table)

    def test_kernel_timing_lands_in_stats(self, logs_table):
        engine = QueryEngine(logs_table)
        engine.execute(PredicateAwareQuery("SUM", "pprice", ("cname",)))
        assert set(engine.stats.kernel_seconds) == {"SUM"}
        assert engine.stats.kernel_seconds["SUM"] >= 0.0
        assert engine.stats.backend == engine.backend_name
        assert list(engine.stats.backend_seconds) == [engine.backend_name]
        delta = engine.stats.delta_since(engine.stats.as_dict())
        assert delta["kernel_seconds"]["SUM"] == 0.0
        assert delta["backend"] == engine.backend_name
