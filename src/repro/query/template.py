"""Query templates: the quadruple ``T = (F, A, P, K)`` (Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np

from repro.dataframe.aggregates import DEFAULT_AGGREGATES, normalise_aggregate_name
from repro.dataframe.table import Table


@dataclass(frozen=True)
class QueryTemplate:
    """A query template w.r.t. a relevant table.

    Attributes
    ----------
    agg_funcs:
        ``F`` -- the candidate aggregation functions.  Parameterized spelled
        names (``"QUANTILE:0.25"``, ``"TOP_K_SHARE:3"``) are accepted and
        kept in canonical spelling.
    agg_attrs:
        ``A`` -- attributes of the relevant table that may be aggregated.
    predicate_attrs:
        ``P`` -- the fixed attribute combination forming the WHERE clause.
    keys:
        ``K`` -- the foreign-key attributes used for GROUP BY / joining.
    in_list_attrs:
        Categorical attributes the search may additionally constrain with
        IN-list membership predicates (opt-in; default none).
    window_attrs:
        Numeric / datetime attributes the search may additionally constrain
        with half-open ``[low, high)`` time windows (opt-in; default none).
    """

    agg_funcs: Tuple[str, ...]
    agg_attrs: Tuple[str, ...]
    predicate_attrs: Tuple[str, ...]
    keys: Tuple[str, ...]
    in_list_attrs: Tuple[str, ...]
    window_attrs: Tuple[str, ...]

    def __init__(
        self,
        agg_funcs: Sequence[str] | None,
        agg_attrs: Sequence[str],
        predicate_attrs: Sequence[str],
        keys: Sequence[str],
        in_list_attrs: Sequence[str] = (),
        window_attrs: Sequence[str] = (),
    ):
        funcs = tuple(
            normalise_aggregate_name(f) for f in (agg_funcs if agg_funcs else DEFAULT_AGGREGATES)
        )
        object.__setattr__(self, "agg_funcs", funcs)
        object.__setattr__(self, "agg_attrs", tuple(agg_attrs))
        object.__setattr__(self, "predicate_attrs", tuple(predicate_attrs))
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "in_list_attrs", tuple(in_list_attrs))
        object.__setattr__(self, "window_attrs", tuple(window_attrs))
        if not self.agg_attrs:
            raise ValueError("A query template needs at least one aggregation attribute")
        if not self.keys:
            raise ValueError("A query template needs at least one group-by key")

    def validate_against(self, relevant_table: Table) -> None:
        """Raise ``KeyError`` if any referenced attribute is missing from the table."""
        names = (
            list(self.agg_attrs)
            + list(self.predicate_attrs)
            + list(self.keys)
            + list(self.in_list_attrs)
            + list(self.window_attrs)
        )
        for name in names:
            if name not in relevant_table:
                raise KeyError(f"Template references missing column {name!r}")

    def encode(self, universe: Sequence[str]) -> np.ndarray:
        """One-hot encode the WHERE-clause attribute combination over *universe*.

        This is the encoding used to train the template performance predictor
        (Section VI.C.2): position ``i`` is 1 when ``universe[i]`` participates
        in the template's predicate attribute set.
        """
        encoding = np.zeros(len(universe), dtype=np.float64)
        members = set(self.predicate_attrs)
        for i, name in enumerate(universe):
            if name in members:
                encoding[i] = 1.0
        return encoding

    def with_predicate_attrs(self, predicate_attrs: Sequence[str]) -> "QueryTemplate":
        """A copy of this template with a different WHERE-clause attribute set."""
        return QueryTemplate(
            self.agg_funcs,
            self.agg_attrs,
            predicate_attrs,
            self.keys,
            in_list_attrs=self.in_list_attrs,
            window_attrs=self.window_attrs,
        )

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"T(F={list(self.agg_funcs)}, A={list(self.agg_attrs)}, "
            f"P={list(self.predicate_attrs)}, K={list(self.keys)})"
        )


def enumerate_attribute_combinations(attrs: Sequence[str], max_size: int | None = None) -> List[Tuple[str, ...]]:
    """All non-empty subsets of *attrs* up to size *max_size* (Definition 4).

    The brute-force template set ``S_attr`` contains one template per subset;
    this helper is used by the brute-force baseline and by the beam search's
    cost accounting in tests.
    """
    attrs = list(attrs)
    limit = len(attrs) if max_size is None else min(max_size, len(attrs))
    subsets: List[Tuple[str, ...]] = []
    for size in range(1, limit + 1):
        subsets.extend(combinations(attrs, size))
    return subsets
