"""Unit tests for QueryPool (template -> search space -> query decoding)."""

import numpy as np
import pytest

from repro.dataframe.column import DType
from repro.hpo.space import CategoricalDimension, RealDimension
from repro.query.pool import QueryPool
from repro.query.template import QueryTemplate


@pytest.fixture
def template():
    return QueryTemplate(
        ["SUM", "AVG", "MAX"], ["pprice"], ["department", "timestamp"], ["cname"]
    )


@pytest.fixture
def pool(template, logs_table):
    return QueryPool(template, logs_table, relation_name="User_Logs")


class TestSpaceConstruction:
    def test_dimension_names(self, pool):
        names = pool.space.names
        assert "agg_func" in names
        assert "agg_attr" in names
        assert "pred::department" in names
        assert "pred_low::timestamp" in names
        assert "pred_high::timestamp" in names
        assert "group_keys" in names

    def test_vector_layout_matches_paper_formula(self, pool, template):
        """Section V.A: 2 + n + 2*m + |K| elements for n categorical and m numeric predicates."""
        n_categorical = 1
        n_numeric = 1
        expected = 2 + n_categorical + 2 * n_numeric + 1
        assert len(pool.space) == expected

    def test_categorical_domain_includes_none(self, pool):
        dim = pool.space["pred::department"]
        assert isinstance(dim, CategoricalDimension)
        assert None in dim.choices
        assert "electronics" in dim.choices

    def test_numeric_bounds_match_column(self, pool, logs_table):
        dim = pool.space["pred_low::timestamp"]
        assert isinstance(dim, RealDimension)
        assert dim.low == logs_table.column("timestamp").min()
        assert dim.high == logs_table.column("timestamp").max()

    def test_group_keys_subsets(self, pool):
        dim = pool.space["group_keys"]
        assert ("cname",) in dim.choices

    def test_missing_template_column_raises(self, logs_table):
        bad = QueryTemplate(["SUM"], ["nope"], [], ["cname"])
        with pytest.raises(KeyError):
            QueryPool(bad, logs_table)

    def test_domain_of(self, pool):
        assert set(pool.domain_of("department")) >= {"electronics", "household", "media"}
        low, high = pool.domain_of("timestamp")
        assert low < high

    def test_domain_of_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.domain_of("pprice")

    def test_categorical_domain_capped(self, logs_table):
        from repro.query.pool import MAX_CATEGORICAL_VALUES

        wide = QueryTemplate(["SUM"], ["pprice"], ["pname"], ["cname"])
        pool = QueryPool(wide, logs_table)
        assert len(pool.domain_of("pname")) <= MAX_CATEGORICAL_VALUES


class TestDecodeEncode:
    def test_decode_produces_executable_query(self, pool, logs_table):
        params = {
            "agg_func": "AVG",
            "agg_attr": "pprice",
            "pred::department": "electronics",
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "group_keys": ("cname",),
        }
        query = pool.decode(params)
        assert query.agg_func == "AVG"
        mask = query.build_predicate().mask(logs_table)
        assert mask.sum() == 4

    def test_decode_swaps_inverted_bounds(self, pool):
        params = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": 100.0,
            "pred_high::timestamp": 50.0,
            "group_keys": ("cname",),
        }
        query = pool.decode(params)
        low, high = query.predicates["timestamp"]
        assert low <= high

    def test_encode_roundtrip(self, pool, rng):
        params = pool.space.sample(rng)
        query = pool.decode(params)
        recovered = pool.encode(query)
        assert pool.decode(recovered).signature() == query.signature()

    def test_sample_random_queries_valid(self, pool, logs_table):
        queries = pool.sample_random(seed=0, n=10)
        assert len(queries) == 10
        for query in queries:
            mask = query.build_predicate().mask(logs_table)
            assert mask.shape[0] == logs_table.num_rows

    def test_group_keys_default_to_full_key(self, pool):
        params = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "group_keys": None,
        }
        query = pool.decode(params)
        assert query.keys == ("cname",)

    def test_relation_name_propagated(self, pool):
        query = pool.sample_random(seed=1, n=1)[0]
        assert "User_Logs" in query.to_sql()


@pytest.fixture
def rich_template():
    return QueryTemplate(
        ["SUM", "QUANTILE:0.5"],
        ["pprice"],
        ["department", "timestamp"],
        ["cname"],
        in_list_attrs=["department"],
        window_attrs=["timestamp"],
    )


@pytest.fixture
def rich_pool(rich_template, logs_table):
    return QueryPool(rich_template, logs_table, relation_name="User_Logs")


class TestRichTemplateDimensions:
    """Opt-in IN-list / window attributes add search dimensions; templates
    without them keep the paper's exact vector layout (pinned above)."""

    def test_in_list_and_window_dimensions_present(self, rich_pool):
        names = rich_pool.space.names
        assert "pred_in::department" in names
        assert "win_low::timestamp" in names
        assert "win_high::timestamp" in names

    def test_space_grows_by_exactly_three_dimensions(self, template, rich_pool, logs_table):
        base = QueryPool(template, logs_table)
        assert len(rich_pool.space) == len(base.space) + 3

    def test_in_list_choices_are_frequency_ranked_prefixes(self, rich_pool):
        from repro.query.pool import MAX_IN_LIST_MEMBERS

        choices = rich_pool.space["pred_in::department"].choices
        assert choices[0] is None
        domain = rich_pool.domain_of("department")
        assert len(choices) - 1 == min(len(domain), MAX_IN_LIST_MEMBERS)
        for i, members in enumerate(choices[1:], start=1):
            assert members == tuple(domain[:i])

    def test_window_bounds_match_column(self, rich_pool, logs_table):
        dim = rich_pool.space["win_low::timestamp"]
        assert dim.low == logs_table.column("timestamp").min()
        assert dim.high == logs_table.column("timestamp").max()

    def test_in_list_attr_must_be_categorical(self, logs_table):
        bad = QueryTemplate(
            ["SUM"], ["pprice"], [], ["cname"], in_list_attrs=["pprice"]
        )
        with pytest.raises(ValueError, match="must be categorical"):
            QueryPool(bad, logs_table)

    def test_window_attr_must_be_numeric_or_datetime(self, logs_table):
        bad = QueryTemplate(
            ["SUM"], ["pprice"], [], ["cname"], window_attrs=["department"]
        )
        with pytest.raises(ValueError, match="numeric or datetime"):
            QueryPool(bad, logs_table)


class TestRichTemplateDecodeEncode:
    def params(self, **overrides):
        base = {
            "agg_func": "SUM",
            "agg_attr": "pprice",
            "pred::department": None,
            "pred_low::timestamp": None,
            "pred_high::timestamp": None,
            "pred_in::department": None,
            "win_low::timestamp": None,
            "win_high::timestamp": None,
            "group_keys": ("cname",),
        }
        base.update(overrides)
        return base

    def test_decode_in_list_produces_membership_query(self, rich_pool, logs_table):
        params = self.params(**{"pred_in::department": ("electronics", "household")})
        query = rich_pool.decode(params)
        assert query.predicates["department"] == ("electronics", "household")
        mask = query.build_predicate().mask(logs_table)
        assert mask.shape[0] == logs_table.num_rows
        assert mask.any()

    def test_in_list_overrides_the_equality_dimension(self, rich_pool):
        params = self.params(
            **{
                "pred::department": "media",
                "pred_in::department": ("electronics", "household"),
            }
        )
        query = rich_pool.decode(params)
        assert query.predicates["department"] == ("electronics", "household")

    def test_decode_window_produces_window_constraint(self, rich_pool):
        from repro.query.query import WindowConstraint

        params = self.params(**{"win_low::timestamp": 120.0, "win_high::timestamp": 50.0})
        query = rich_pool.decode(params)
        constraint = query.predicates["timestamp"]
        assert isinstance(constraint, WindowConstraint)
        # Inverted bounds are swapped, like the range dimensions.
        assert (constraint.low, constraint.high) == (50.0, 120.0)

    def test_one_sided_window_is_dropped(self, rich_pool):
        params = self.params(**{"win_low::timestamp": 50.0})
        query = rich_pool.decode(params)
        assert not isinstance(query.predicates["timestamp"], tuple) or (
            query.predicates["timestamp"] == (None, None)
        )

    def test_encode_roundtrip_through_the_new_dimensions(self, rich_pool, rng):
        for _ in range(25):
            params = rich_pool.space.sample(rng)
            query = rich_pool.decode(params)
            recovered = rich_pool.encode(query)
            assert rich_pool.decode(recovered).signature() == query.signature()

    def test_sampled_queries_execute_on_every_backend(self, rich_pool, logs_table):
        from repro.query.backends import backend_names
        from repro.query.engine import EngineConfig, QueryEngine

        queries = rich_pool.sample_random(seed=3, n=6)
        reference = None
        for backend in backend_names():
            engine = QueryEngine(logs_table, config=EngineConfig(backend=backend))
            results = engine.execute_batch(queries)
            shapes = [r.num_rows for r in results]
            if reference is None:
                reference = shapes
            else:
                assert shapes == reference


class TestRefresh:
    """PR 8 satellite: ``QueryPool.refresh`` extends the domains over
    appended rows, deterministically equal to constructing a fresh pool
    over the extended table."""

    def append(self, logs_table, **overrides):
        row = {
            "cname": "erin",
            "pname": "soap",
            "pprice": 10.0,
            "department": "household",
            "timestamp": "2023-07-10",
        }
        row.update(overrides)
        logs_table.append_rows([row])

    def test_noop_when_no_rows_appended(self, pool, logs_table):
        space = pool.space
        assert pool.refresh(logs_table) is False
        assert pool.space is space

    def test_append_without_domain_change_keeps_space(self, pool, logs_table):
        space = pool.space
        self.append(logs_table)  # known department, in-range timestamp
        assert pool.refresh(logs_table) is False
        assert pool.space is space

    def test_new_categorical_value_extends_domain(self, pool, logs_table):
        self.append(logs_table, department="garden")
        assert pool.refresh(logs_table) is True
        choices = pool.space["pred::department"].choices
        assert choices[-1] == "garden"  # appended after the old values
        assert choices[:-1] == [None, "electronics", "household", "media"]

    def test_new_numeric_bounds_extend_domain(self, pool, logs_table):
        old_low = pool.space["pred_low::timestamp"].low
        self.append(logs_table, timestamp="2024-01-01")
        assert pool.refresh(logs_table) is True
        dim = pool.space["pred_low::timestamp"]
        assert dim.low == old_low
        assert dim.high == logs_table.column("timestamp").max()

    def test_refresh_equals_fresh_pool(self, template, logs_table):
        pool = QueryPool(template, logs_table, relation_name="User_Logs")
        self.append(logs_table, department="garden", timestamp="2024-02-02")
        self.append(logs_table, department="household", timestamp="2021-01-01")
        pool.refresh(logs_table)
        fresh = QueryPool(template, logs_table, relation_name="User_Logs")
        for attr in template.predicate_attrs:
            assert pool.domain_of(attr) == fresh.domain_of(attr)
        assert pool.space.names == fresh.space.names

    def test_refresh_respects_categorical_cap(self, logs_table):
        from repro.query.pool import MAX_CATEGORICAL_VALUES

        wide = QueryTemplate(["SUM"], ["pprice"], ["pname"], ["cname"])
        pool = QueryPool(wide, logs_table)
        for i in range(2 * MAX_CATEGORICAL_VALUES):
            # each new product appears twice so frequency ordering is stable
            self.append(logs_table, pname=f"p{i}")
            self.append(logs_table, pname=f"p{i}")
        pool.refresh(logs_table)
        fresh = QueryPool(wide, logs_table)
        assert len(pool.domain_of("pname")) == MAX_CATEGORICAL_VALUES
        assert pool.domain_of("pname") == fresh.domain_of("pname")

    def test_incremental_refreshes_equal_one_shot_refresh(self, template, logs_table):
        stepwise = QueryPool(template, logs_table, relation_name="User_Logs")
        for dept, ts in [("garden", "2024-03-01"), ("toys", "2020-06-15")]:
            self.append(logs_table, department=dept, timestamp=ts)
            stepwise.refresh(logs_table)
        fresh = QueryPool(template, logs_table, relation_name="User_Logs")
        for attr in template.predicate_attrs:
            assert stepwise.domain_of(attr) == fresh.domain_of(attr)

    def test_shrunk_table_rejected(self, pool, logs_table):
        with pytest.raises(ValueError, match="append-only"):
            pool.refresh(logs_table.select(logs_table.column_names).head(3))
