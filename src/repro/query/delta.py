"""Delta-aware refresh of a :class:`~repro.query.engine.QueryEngine`.

``Table.append_rows`` bumps the table's :attr:`~repro.dataframe.table.Table.version`;
the next query entering the engine calls ``QueryEngine.sync_with_table``,
which lands here.  Two policies, selected by
``EngineConfig(incremental=...)`` / ``--engine-incremental`` /
``$REPRO_ENGINE_INCREMENTAL``:

* **Flush** (``incremental=False``, the default): every cached mask, result,
  sort order and group index is counted into
  ``EngineStats.staleness_evictions`` and dropped -- the pre-delta
  behaviour, correct and simple.
* **Incremental** (``incremental=True``): cached state is upgraded in place
  wherever an upgrade can reproduce what a rebuilt-from-scratch engine
  would hold, and evicted deterministically where it cannot.

Upgrade-vs-evict rules (bit-identity with rebuild-from-scratch is the bar,
enforced by ``tests/query/test_delta_equivalence.py``):

* **Predicate masks** are partition-scoped: a cached atom mask covers the
  rows it was computed over, so on append the atom is re-evaluated over the
  new slice only and the boolean tails are concatenated.  Masks whose key
  cannot be turned back into a predicate (foreign keys injected by tests)
  or whose length does not match the synced row count are evicted.
* **Group indexes** are extended, never reshuffled: the appended rows are
  factorized on their own and remapped into the existing code space
  (:meth:`~repro.query.engine.GroupIndex.extend`).  First-appearance group
  numbering is prefix-stable, so existing codes are exactly what a full
  rebuild would assign and downstream kernels stay bit-identical.
* **Sort orders** (the ``(predicate signature, keys, attr)`` lexsort cache)
  are upgraded by sorting the appended rows' stripped run locally and
  merging it into the cached order with exact ``searchsorted`` insertion --
  ``np.lexsort((values, codes))`` is stable on row position and every
  appended row's position is greater than every covered row's, so the merge
  reproduces the full re-lexsort exactly.  MAD deviation orders (the
  4-tuple ``... + ("MEDIAN",)`` keys) depend on group medians, which
  appends move, so they are evicted.
* **Results** of the bincount-accumulation family are updated additively:
  ``np.bincount`` / ``np.add.at`` accumulate strictly left-to-right in row
  order, so a cached COUNT / SUM is a prefix of the rebuilt accumulation
  and continuing it over the appended rows is bit-identical.  Groups new
  to the filter are appended in first-appearance order with fresh
  accumulators.  Every other aggregate either cannot be reconstructed from
  the stored result alone (AVG, VAR, STD, SKEW, KURTOSIS, categorical SUM
  over filter-local codes) or is an order statistic whose value moves with
  the appended rows (MEDIAN, MIN, MAX, MODE, ...), so those results are
  evicted and recomputed -- against upgraded masks, indexes and sort
  orders, which is where the incremental win comes from.

Storage-owning backends participate through ``ExecutionBackend.refresh``:
sqlite ``INSERT``\\ s the appended slice into its materialised table
(extending the first-appearance label dictionaries so rowids and codes
continue), and the process-pool scheduler unlinks its shared-memory
segments so the next dispatch republishes the appended table.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.dataframe.column import Column, DType
from repro.dataframe.groupby import renumber_codes_compact
from repro.dataframe.predicates import Equals, IsIn, Predicate, Range, Window
from repro.dataframe.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.query.engine import QueryEngine

#: Environment variable enabling the incremental refresh path process-wide
#: (used by the CI ``incremental=1`` matrix slot).
INCREMENTAL_ENV_VAR = "REPRO_ENGINE_INCREMENTAL"

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})

#: Result-cache functions with an additive bincount continuation.
_ADDITIVE_FUNCS = frozenset({"COUNT", "SUM"})


def default_incremental() -> bool:
    """The process-wide default: ``$REPRO_ENGINE_INCREMENTAL`` or ``False``.

    Raises ``ValueError`` on a malformed value -- eagerly, where the config
    is resolved (engine construction, ``FeatAugConfig.validate``), matching
    the other environment-resolved engine knobs.
    """
    raw = os.environ.get(INCREMENTAL_ENV_VAR, "").strip().lower()
    if not raw:
        return False
    if raw in _TRUE_WORDS:
        return True
    if raw in _FALSE_WORDS:
        return False
    raise ValueError(
        f"${INCREMENTAL_ENV_VAR} must be a boolean word "
        f"(1/0, true/false, yes/no, on/off), got {raw!r}"
    )


def _atom_predicate(signature) -> Optional[Predicate]:
    """Reconstruct the predicate behind one mask-cache key (atom signature).

    Mask-cache keys are exactly ``PredicateAtom.signature()`` tuples --
    ``("eq", attr, value)`` / ``("range", attr, low, high)`` /
    ``("in", attr, members)`` / ``("window", attr, low, high)`` -- pinned by
    ``tests/query/test_plan.py``.  Dispatch is on the kind tag, never on the
    tuple length (``"in"`` signatures are also 3-tuples).  Returns ``None``
    for any other shape (the caller evicts the entry).
    """
    if not isinstance(signature, tuple) or not signature:
        return None
    kind = signature[0]
    if kind == "eq" and len(signature) == 3 and isinstance(signature[1], str):
        return Equals(signature[1], signature[2])
    if kind == "range" and len(signature) == 4 and isinstance(signature[1], str):
        low, high = signature[2], signature[3]
        if low is None and high is None:
            return None
        return Range(signature[1], low=low, high=high)
    if (
        kind == "in"
        and len(signature) == 3
        and isinstance(signature[1], str)
        and isinstance(signature[2], tuple)
    ):
        return IsIn(signature[1], list(signature[2]))
    if kind == "window" and len(signature) == 4 and isinstance(signature[1], str):
        low, high = signature[2], signature[3]
        if low is None or high is None:
            return None
        return Window(signature[1], low=low, high=high)
    return None


def _delta_view(table: Table, old_rows: int) -> Table:
    """A zero-copy Table over the appended slice ``[old_rows:]``."""
    return Table(
        [
            Column(name, table.column(name).values[old_rows:], dtype=table.column(name).dtype)
            for name in table.column_names
        ]
    )


def refresh_engine(engine: "QueryEngine", table: Table) -> None:
    """Bring *engine*'s cached state up to date after table appends.

    Called by ``QueryEngine.sync_with_table`` under the engine's sync lock
    whenever the bound table's version moved past the synced one.
    """
    old_rows = engine._synced_rows
    appended = table.num_rows - old_rows
    engine.stats.bump(appended_rows=max(appended, 0))
    if appended == 0:
        # Empty append: the version moved but every cached array still
        # covers the full table (append_rows replaces columns with
        # bit-identical data), so there is nothing to refresh.
        return
    if appended < 0 or not engine.incremental:
        _flush(engine)
        return
    _upgrade_in_place(engine, table, old_rows)


def _flush(engine: "QueryEngine") -> None:
    """The non-incremental policy: drop everything, book the staleness."""
    with engine._index_lock:
        dropped = len(engine._indexes)
    dropped += len(engine._masks) + len(engine._results)
    if engine._sort_orders is not None:
        dropped += len(engine._sort_orders)
    engine.stats.bump(staleness_evictions=dropped)
    engine.clear_caches()


def _upgrade_in_place(engine: "QueryEngine", table: Table, old_rows: int) -> None:
    delta_view = _delta_view(table, old_rows)
    masks_extended = 0
    indexes_extended = 0
    runs_merged = 0
    results_upgraded = 0
    evictions = 0

    # ------------------------------------------------------------------
    # (1) Partition-scoped masks: evaluate atoms over the new slice only.
    # ------------------------------------------------------------------
    extended_masks: Dict[tuple, np.ndarray] = {}
    for key, mask in engine._masks.snapshot():
        predicate = _atom_predicate(key)
        tail = None
        if (
            predicate is not None
            and isinstance(mask, np.ndarray)
            and mask.dtype == np.bool_
            and mask.shape[0] == old_rows
        ):
            try:
                tail = np.asarray(predicate.mask(delta_view), dtype=bool)
            except Exception:
                tail = None
        if tail is None:
            evictions += engine._masks.discard(key)
            continue
        extended = np.concatenate([mask, tail])
        engine._masks.replace(key, extended)
        extended_masks[key] = extended
        masks_extended += 1

    # ------------------------------------------------------------------
    # (2) Group indexes: factorize the delta, remap into the code space.
    # ------------------------------------------------------------------
    with engine._index_lock:
        for keys, index in list(engine._indexes.items()):
            if index.extend(table, old_rows):
                indexes_extended += 1
            else:  # unhashable delta key labels: rebuild lazily instead
                del engine._indexes[keys]
                evictions += 1

    # ------------------------------------------------------------------
    # (3) Aggregable arrays: numeric columns re-point at the concatenated
    # storage; categorical full-table codings are rebuilt lazily (their
    # first-appearance coding is prefix-stable, but the label mapping is
    # not stored, so extension would cost the same as recomputation).
    # ------------------------------------------------------------------
    with engine._agg_lock:
        for attr in list(engine._agg_arrays):
            column = table.column(attr) if attr in table else None
            if column is not None and column.is_numeric_like:
                engine._agg_arrays[attr] = column.values
            else:
                del engine._agg_arrays[attr]

    # Shared reconstruction memos for steps (4) and (5). --------------------
    atom_masks: Dict[tuple, Optional[np.ndarray]] = {}

    def atom_mask(atom_sig) -> Optional[np.ndarray]:
        mask = extended_masks.get(atom_sig)
        if mask is not None:
            return mask
        if atom_sig in atom_masks:
            return atom_masks[atom_sig]
        predicate = _atom_predicate(atom_sig)
        mask = None
        if predicate is not None:
            try:
                mask = np.asarray(predicate.mask(table), dtype=bool)
            except Exception:
                mask = None
        atom_masks[atom_sig] = mask
        return mask

    sig_masks: Dict[tuple, Tuple[bool, Optional[np.ndarray]]] = {}

    def signature_mask(sig) -> Tuple[bool, Optional[np.ndarray]]:
        """``(ok, mask)`` of one predicate signature; ``mask=None`` = all rows."""
        if sig in sig_masks:
            return sig_masks[sig]
        if not isinstance(sig, tuple):
            result: Tuple[bool, Optional[np.ndarray]] = (False, None)
        elif not sig:
            result = (True, None)
        else:
            mask: Optional[np.ndarray] = None
            ok = True
            for atom_sig in sig:
                atom = atom_mask(atom_sig)
                if atom is None or atom.shape[0] != table.num_rows:
                    ok = False
                    break
                mask = atom if mask is None else mask & atom
            result = (ok, mask if ok else None)
        sig_masks[sig] = result
        return result

    filtered_infos: Dict[tuple, Optional[dict]] = {}

    def filtered_info(sig, keys) -> Optional[dict]:
        """The filtered grouping one (signature, keys) pair covers, split at
        the append boundary: compact codes over all surviving rows, the old
        surviving-row count, and the old group count (prefix-stable)."""
        memo_key = (sig, keys)
        if memo_key in filtered_infos:
            return filtered_infos[memo_key]
        info: Optional[dict] = None
        ok, mask = signature_mask(sig)
        index = None
        if ok and isinstance(keys, tuple):
            try:
                index = engine.group_index(keys)
            except Exception:
                index = None
        if index is not None:
            if mask is None:
                n_old = (
                    int(index.codes[:old_rows].max()) + 1
                    if old_rows and index.codes.size
                    else 0
                )
                info = {
                    "index": index,
                    "row_idx": None,
                    "codes": index.codes,
                    "group_ids": None,
                    "n_total": index.n_groups,
                    "old_count": old_rows,
                    "n_old": n_old,
                }
            else:
                row_idx = np.flatnonzero(mask)
                old_count = int(np.searchsorted(row_idx, old_rows, side="left"))
                if row_idx.size:
                    group_ids, codes, _ = renumber_codes_compact(index.codes[row_idx])
                else:
                    group_ids = codes = np.empty(0, dtype=np.int64)
                n_old = int(codes[:old_count].max()) + 1 if old_count else 0
                info = {
                    "index": index,
                    "row_idx": row_idx,
                    "codes": codes,
                    "group_ids": group_ids,
                    "n_total": int(group_ids.size),
                    "old_count": old_count,
                    "n_old": n_old,
                }
        filtered_infos[memo_key] = info
        return info

    # ------------------------------------------------------------------
    # (4) Sort orders: merge the appended rows' sorted run into the cached
    # lexsort order.  MAD deviation orders (4-tuple keys) are evicted.
    # ------------------------------------------------------------------
    if engine._sort_orders is not None:
        for key, order in engine._sort_orders.snapshot():
            merged = None
            if isinstance(key, tuple) and len(key) == 3 and isinstance(order, np.ndarray):
                merged = _merged_order(engine, table, key, order, old_rows, filtered_info)
            if merged is None:
                evictions += engine._sort_orders.discard(key)
            elif merged is not order:
                engine._sort_orders.replace(key, merged)
                runs_merged += 1

    # ------------------------------------------------------------------
    # (5) Results: additive continuation for the bincount family.
    # ------------------------------------------------------------------
    for key, result in engine._results.snapshot():
        upgraded = _upgraded_result(engine, table, key, result, old_rows, filtered_info)
        if upgraded is None:
            evictions += engine._results.discard(key)
        elif upgraded is not result:
            engine._results.replace(key, upgraded)
            results_upgraded += 1

    # ------------------------------------------------------------------
    # (6) Storage-owning state: backend materialisations and worker pools.
    # ------------------------------------------------------------------
    engine.backend.refresh(old_rows)
    engine.sharder.refresh(old_rows)

    engine.stats.bump(
        masks_extended=masks_extended,
        indexes_extended=indexes_extended,
        runs_merged=runs_merged,
        results_upgraded=results_upgraded,
        staleness_evictions=evictions,
    )
    engine._refresh_byte_gauges()


def _merged_order(
    engine: "QueryEngine",
    table: Table,
    key: tuple,
    order: np.ndarray,
    old_rows: int,
    filtered_info,
) -> Optional[np.ndarray]:
    """The cached order upgraded over the appended rows (``None`` = evict).

    Returns *order* itself when no appended row survives the filter (the
    cached order is already the full rebuilt one).
    """
    sig, keys, attr = key
    info = filtered_info(sig, keys)
    if info is None or not isinstance(attr, str) or attr not in table:
        return None
    row_idx = info["row_idx"]
    try:
        aligned = engine.agg_values(attr, row_idx)
    except Exception:
        return None
    f_values = aligned if row_idx is None else aligned[row_idx]
    f_codes = info["codes"]
    old_count = info["old_count"]
    if f_values.shape[0] != f_codes.shape[0]:
        return None
    valid = ~np.isnan(f_values)
    n_old_stripped = int(np.count_nonzero(valid[:old_count]))
    if order.shape[0] != n_old_stripped:
        return None
    stripped_codes = f_codes[valid]
    stripped_values = f_values[valid]
    d_codes = stripped_codes[n_old_stripped:]
    if d_codes.size == 0:
        return order
    d_values = stripped_values[n_old_stripped:]
    old_codes = stripped_codes[:n_old_stripped]
    old_values = stripped_values[:n_old_stripped]
    return _merge_sorted_run(order, old_codes, old_values, d_codes, d_values)


def _merge_sorted_run(
    order: np.ndarray,
    old_codes: np.ndarray,
    old_values: np.ndarray,
    d_codes: np.ndarray,
    d_values: np.ndarray,
) -> np.ndarray:
    """Merge the appended stripped rows into a cached ``lexsort`` order.

    *order* sorts the old stripped rows by ``(code, value)``, stable on row
    position.  The appended stripped rows occupy positions
    ``[len(old), len(old) + len(delta))`` -- all greater than every old
    position -- so the rebuilt ``np.lexsort((values, codes))`` equals:
    sort the delta run locally, then insert each delta element *after*
    every old element with ``(code, value) <=`` its own.  The old run is
    lexicographically sorted under a ``(code, value)`` structured dtype
    (codes ascend; values ascend within each code), so the insertion points
    are one exact structured ``searchsorted(..., side="right")`` -- field-
    wise comparison, no composite-key float tricks, so ``-0.0/0.0`` ties
    compare equal and keep lexsort's exact stable placement.
    """
    n_old = order.shape[0]
    n_delta = d_codes.shape[0]
    d_order = np.lexsort((d_values, d_codes))
    pair_dtype = np.dtype([("code", np.int64), ("value", np.float64)])
    old_pairs = np.empty(n_old, dtype=pair_dtype)
    old_pairs["code"] = old_codes[order]
    old_pairs["value"] = old_values[order]
    d_pairs = np.empty(n_delta, dtype=pair_dtype)
    d_pairs["code"] = d_codes[d_order]
    d_pairs["value"] = d_values[d_order]
    ins = old_pairs.searchsorted(d_pairs, side="right")
    merged = np.empty(n_old + n_delta, dtype=np.int64)
    old_positions = np.arange(n_old, dtype=np.int64)
    merged[old_positions + np.searchsorted(ins, old_positions, side="right")] = order
    merged[ins + np.arange(n_delta, dtype=np.int64)] = n_old + d_order
    return merged


def _upgraded_result(
    engine: "QueryEngine",
    table: Table,
    key,
    result,
    old_rows: int,
    filtered_info,
) -> Optional[Table]:
    """The cached result continued over the appended rows (``None`` = evict).

    Returns *result* itself when the append left the entry exact (no
    surviving rows and no new groups under its filter).
    """
    if not (isinstance(key, tuple) and len(key) == 5 and isinstance(result, Table)):
        return None
    func, attr, keys, sig, feature_name = key
    if func not in _ADDITIVE_FUNCS or not isinstance(attr, str) or attr not in table:
        return None
    column = table.column(attr)
    if func == "SUM" and not column.is_numeric_like:
        # Categorical SUM accumulates filter-local first-appearance codes;
        # the stored totals cannot be continued without the code mapping.
        return None
    info = filtered_info(sig, keys)
    if info is None:
        return None
    n_total = info["n_total"]
    n_old = info["n_old"]
    old_count = info["old_count"]
    if result.num_rows != n_old or result.column_names != list(keys) + [feature_name]:
        return None
    codes = info["codes"]
    if info["row_idx"] is None:
        d_codes = codes[old_rows:]
        d_rows = np.arange(old_rows, table.num_rows, dtype=np.int64)
    else:
        d_codes = codes[old_count:]
        d_rows = info["row_idx"][old_count:]
    if d_codes.size == 0 and n_total == n_old:
        return result
    if column.is_numeric_like:
        d_values = column.values[d_rows]
        d_valid = ~np.isnan(d_values)
    else:  # COUNT over a categorical attribute counts non-missing values
        raw = column.values[d_rows]
        d_valid = np.asarray([v is not None for v in raw], dtype=bool)
        d_values = None
    add_codes = d_codes[d_valid]

    old_feature = result.column(feature_name).values
    feature = np.empty(n_total, dtype=np.float64)
    feature[:n_old] = old_feature
    if func == "COUNT":
        feature[n_old:] = 0.0
        if add_codes.size:
            feature += np.bincount(add_codes, minlength=n_total).astype(np.float64)
    else:  # SUM
        feature[n_old:] = np.nan
        gains = np.zeros(n_total, dtype=bool)
        gains[add_codes] = True
        placeholder = np.isnan(feature) & gains
        if placeholder[:n_old].any():
            # Distinguish the empty-group NaN placeholder from a sum that
            # genuinely accumulated to NaN (inf + -inf): only groups with
            # zero covered stripped values restart their accumulator at 0.
            if info["row_idx"] is None:
                old_values = column.values[:old_rows]
                old_codes = codes[:old_rows]
            else:
                old_idx = info["row_idx"][:old_count]
                old_values = column.values[old_idx]
                old_codes = codes[:old_count]
            old_counts = np.bincount(
                old_codes[~np.isnan(old_values)], minlength=n_total
            )
            placeholder &= old_counts == 0
        feature[placeholder] = 0.0
        if add_codes.size:
            # np.add.at accumulates in index order -- the exact left-to-right
            # continuation of the rebuilt bincount accumulation.
            np.add.at(feature, add_codes, d_values[d_valid])

    if n_total == n_old:
        return result.with_column(Column(feature_name, feature, dtype=DType.NUMERIC))
    if info["group_ids"] is None:
        new_ids: Optional[np.ndarray] = np.arange(n_old, n_total, dtype=np.int64)
    else:
        new_ids = info["group_ids"][n_old:]
    columns: List[Column] = []
    for tail in info["index"].key_columns(new_ids):
        head = result.column(tail.name)
        if head.dtype != tail.dtype:
            return None
        columns.append(
            Column(tail.name, np.concatenate([head.values, tail.values]), dtype=head.dtype)
        )
    columns.append(Column(feature_name, feature, dtype=DType.NUMERIC))
    return Table(columns)
