"""Unit tests for multi-table schemas and deep-layer flattening."""

import numpy as np
import pytest

from repro.dataframe.table import Table
from repro.query.multi_table import (
    RelationalSchema,
    Relationship,
    flatten_relevant_tables,
    flatten_to_engine,
)


@pytest.fixture
def instacart_like_schema():
    """Order items -> products -> departments, plus an unrelated table."""
    order_items = Table.from_dict(
        {
            "user_id": ["u1", "u1", "u2", "u3", "u3", "u3"],
            "product_id": [1.0, 2.0, 1.0, 3.0, 2.0, 9.0],  # 9 has no product row
            "quantity": [2.0, 1.0, 4.0, 1.0, 5.0, 1.0],
        }
    )
    products = Table.from_dict(
        {
            "product_id": [1.0, 2.0, 3.0],
            "product_name": ["banana", "milk", "bread"],
            "department_id": [10.0, 20.0, 30.0],
            "price": [0.5, 2.5, 3.0],
        }
    )
    departments = Table.from_dict(
        {"department_id": [10.0, 20.0, 30.0], "department": ["produce", "dairy", "bakery"]}
    )
    schema = RelationalSchema({"order_items": order_items, "products": products, "departments": departments})
    schema.add_relationship("order_items", "product_id", "products", "product_id")
    schema.add_relationship("products", "department_id", "departments", "department_id")
    return schema


class TestSchemaConstruction:
    def test_table_names(self, instacart_like_schema):
        assert set(instacart_like_schema.table_names) == {"order_items", "products", "departments"}

    def test_duplicate_table_rejected(self):
        schema = RelationalSchema({"a": Table.from_dict({"x": [1]})})
        with pytest.raises(ValueError):
            schema.add_table("a", Table.from_dict({"x": [2]}))

    def test_relationship_unknown_table_rejected(self, instacart_like_schema):
        with pytest.raises(KeyError):
            instacart_like_schema.add_relationship("orders", "id", "products", "product_id")

    def test_relationship_unknown_column_rejected(self, instacart_like_schema):
        with pytest.raises(KeyError):
            instacart_like_schema.add_relationship("order_items", "nope", "products", "product_id")

    def test_relationship_describe(self):
        rel = Relationship("a", "x", "b", "y")
        assert rel.describe() == "a.x -> b.y"

    def test_parents_of(self, instacart_like_schema):
        parents = instacart_like_schema.parents_of("order_items")
        assert len(parents) == 1
        assert parents[0].parent == "products"

    def test_unknown_table_lookup(self, instacart_like_schema):
        with pytest.raises(KeyError):
            instacart_like_schema.table("missing")


class TestFlatten:
    def test_row_count_preserved(self, instacart_like_schema):
        flattened = instacart_like_schema.flatten("order_items")
        assert flattened.num_rows == instacart_like_schema.table("order_items").num_rows

    def test_two_hop_columns_present(self, instacart_like_schema):
        flattened = instacart_like_schema.flatten("order_items")
        assert "products__product_name" in flattened
        assert "departments__department" in flattened

    def test_joined_values_correct(self, instacart_like_schema):
        flattened = instacart_like_schema.flatten("order_items")
        names = list(flattened.column("products__product_name").values)
        departments = list(flattened.column("departments__department").values)
        assert names[0] == "banana" and departments[0] == "produce"
        assert names[1] == "milk" and departments[1] == "dairy"

    def test_unmatched_child_rows_get_missing(self, instacart_like_schema):
        flattened = instacart_like_schema.flatten("order_items")
        assert flattened.column("products__product_name").values[5] is None

    def test_max_depth_limits_joins(self, instacart_like_schema):
        flattened = instacart_like_schema.flatten("order_items", max_depth=1)
        assert "products__product_name" in flattened
        assert "departments__department" not in flattened

    def test_no_prefix_mode(self, instacart_like_schema):
        flattened = instacart_like_schema.flatten("order_items", prefix_joined_columns=False)
        assert "product_name" in flattened
        assert "department" in flattened

    def test_flatten_base_without_relationships(self):
        schema = RelationalSchema({"only": Table.from_dict({"k": [1, 2], "v": [3.0, 4.0]})})
        flattened = schema.flatten("only")
        assert flattened.column_names == ["k", "v"]

    def test_duplicate_parent_keys_deduplicated(self):
        child = Table.from_dict({"k": [1.0, 2.0], "fk": [7.0, 7.0]})
        parent = Table.from_dict({"fk": [7.0, 7.0], "value": [1.0, 99.0]})
        schema = RelationalSchema({"child": child, "parent": parent})
        schema.add_relationship("child", "fk", "parent", "fk")
        flattened = schema.flatten("child")
        assert flattened.num_rows == 2
        assert list(flattened.column("parent__value").values) == [1.0, 1.0]

    def test_missing_parent_keys_collapse_to_first_occurrence(self):
        """NaN / None parent keys share one code: the vectorized dedup keeps
        the first missing-key row, exactly what first-match-wins joins see."""
        child = Table.from_dict({"k": [1.0, 2.0, 3.0], "fk": [7.0, None, 8.0]})
        parent = Table.from_dict(
            {"fk": [7.0, None, 7.0, None, 9.0], "value": [1.0, 50.0, 99.0, 60.0, 3.0]}
        )
        schema = RelationalSchema({"child": child, "parent": parent})
        schema.add_relationship("child", "fk", "parent", "fk")
        flattened = schema.flatten("child")
        assert flattened.num_rows == 3
        values = flattened.column("parent__value").values
        # Duplicate 7.0 keeps the first row (1.0, not 99.0); the missing-key
        # child row matches the *first* missing parent row (50.0, not 60.0);
        # an unmatched key (8.0) stays missing.
        assert values[0] == 1.0
        assert values[1] == 50.0
        assert np.isnan(values[2])

    def test_vectorized_dedup_matches_per_key_first_rows(self):
        """Property-style pin: dedup keeps exactly the first row per key."""
        rng = np.random.default_rng(11)
        keys = [
            None if rng.random() < 0.2 else float(rng.integers(0, 6))
            for _ in range(60)
        ]
        parent = Table.from_dict({"fk": keys, "value": [float(i) for i in range(60)]})
        expected = {}
        for position, key in enumerate(keys):
            marker = "missing" if key is None else key
            expected.setdefault(marker, float(position))
        child_keys = sorted({k for k in keys if k is not None})
        child = Table.from_dict({"fk": child_keys})
        schema = RelationalSchema({"child": child, "parent": parent})
        schema.add_relationship("child", "fk", "parent", "fk")
        flattened = schema.flatten("child")
        got = dict(zip(child_keys, flattened.column("parent__value").values))
        assert got == {k: expected[k] for k in child_keys}


class TestAliasAwareDiamond:
    """Diamond schemas: one parent reachable through several relationship
    paths joins once per path, each under its own role alias."""

    @pytest.fixture
    def diamond_schema(self):
        events = Table.from_dict(
            {
                "event_id": [1.0, 2.0, 3.0],
                "buyer_id": [10.0, 20.0, 10.0],
                "seller_id": [20.0, 10.0, 30.0],
                "amount": [5.0, 7.0, 9.0],
            }
        )
        users = Table.from_dict(
            {
                "user_id": [10.0, 20.0, 30.0],
                "name": ["ann", "bob", "cat"],
                "region_id": [1.0, 2.0, 1.0],
            }
        )
        regions = Table.from_dict(
            {"region_id": [1.0, 2.0], "region": ["east", "west"]}
        )
        schema = RelationalSchema(
            {"events": events, "users": users, "regions": regions}
        )
        schema.add_relationship("events", "buyer_id", "users", "user_id")
        schema.add_relationship("events", "seller_id", "users", "user_id")
        schema.add_relationship("users", "region_id", "regions", "region_id")
        return schema

    def test_each_path_joins_under_its_own_alias(self, diamond_schema):
        flattened = diamond_schema.flatten("events")
        # First path keeps the plain table name; the second is role-qualified
        # by its referencing foreign key.
        assert "users__name" in flattened
        assert "seller_id__users__name" in flattened

    def test_row_count_preserved(self, diamond_schema):
        flattened = diamond_schema.flatten("events")
        assert flattened.num_rows == diamond_schema.table("events").num_rows

    def test_values_follow_each_role(self, diamond_schema):
        flattened = diamond_schema.flatten("events")
        assert list(flattened.column("users__name").values) == ["ann", "bob", "ann"]
        assert list(flattened.column("seller_id__users__name").values) == [
            "bob", "ann", "cat",
        ]

    def test_second_hop_follows_each_path(self, diamond_schema):
        """The converging second hop (users -> regions) also joins per path."""
        flattened = diamond_schema.flatten("events")
        assert list(flattened.column("regions__region").values) == [
            "east", "west", "east",
        ]
        assert list(flattened.column("region_id__regions__region").values) == [
            "west", "east", "east",
        ]

    def test_max_depth_stops_both_paths(self, diamond_schema):
        flattened = diamond_schema.flatten("events", max_depth=1)
        assert "users__name" in flattened
        assert "seller_id__users__name" in flattened
        assert "regions__region" not in flattened
        assert "region_id__regions__region" not in flattened

    def test_no_prefix_mode_keeps_first_path_only(self, diamond_schema):
        """Without column prefixes role aliases cannot disambiguate, so the
        historical first-path-only behaviour is preserved."""
        flattened = diamond_schema.flatten("events", prefix_joined_columns=False)
        assert list(flattened.column("name").values) == ["ann", "bob", "ann"]
        assert flattened.num_rows == 3

    def test_flattened_diamond_usable_by_the_query_layer(self, diamond_schema):
        from repro.query.executor import execute_query, execute_query_naive
        from repro.query.query import PredicateAwareQuery

        flattened = flatten_relevant_tables(
            diamond_schema, "events", keys=["event_id"]
        )
        query = PredicateAwareQuery("SUM", "amount", ("seller_id__users__name",))
        result = execute_query(query, flattened)
        expected = execute_query_naive(query, flattened)
        assert result.column_names == expected.column_names
        for name in expected.column_names:
            assert result.column(name) == expected.column(name)


class TestFlattenRelevantTables:
    def test_keys_checked(self, instacart_like_schema):
        flattened = flatten_relevant_tables(instacart_like_schema, "order_items", keys=["user_id"])
        assert "user_id" in flattened

    def test_missing_key_raises(self, instacart_like_schema):
        with pytest.raises(KeyError):
            flatten_relevant_tables(instacart_like_schema, "order_items", keys=["customer_id"])

    def test_flattened_table_usable_by_feataug_query_layer(self, instacart_like_schema):
        from repro.query.executor import execute_query
        from repro.query.pool import QueryPool
        from repro.query.template import QueryTemplate

        flattened = flatten_relevant_tables(instacart_like_schema, "order_items", keys=["user_id"])
        template = QueryTemplate(
            ["SUM", "COUNT"], ["quantity"], ["departments__department"], ["user_id"]
        )
        pool = QueryPool(template, flattened)
        query = pool.sample_random(seed=0, n=1)[0]
        result = execute_query(query, flattened)
        assert "feature" in result

    def test_flatten_to_engine_binds_shared_engine(self, instacart_like_schema):
        from repro.query.engine import engine_for
        from repro.query.executor import execute_query_naive
        from repro.query.query import PredicateAwareQuery

        flattened, engine = flatten_to_engine(
            instacart_like_schema, "order_items", keys=["user_id"]
        )
        assert engine.table is flattened
        assert engine_for(flattened) is engine
        query = PredicateAwareQuery("SUM", "quantity", ("user_id",))
        result = engine.execute(query)
        expected = execute_query_naive(query, flattened)
        assert result.column_names == expected.column_names
        for name in expected.column_names:
            assert result.column(name) == expected.column(name)
