"""Feature selectors combined with Featuretools (Section VII.A.3).

Each selector scores or greedily picks among already-materialised feature
columns and returns the names of the ``k`` selected features:

* ``lr``       -- absolute weights of a logistic/linear regression model,
* ``gbdt``     -- gain importances of a gradient-boosted tree model,
* ``mi``       -- mutual information with the label,
* ``chi2``     -- chi-square statistic (classification only),
* ``gini``     -- best-split Gini importance (classification only),
* ``forward``  -- greedy forward selection by validation improvement,
* ``backward`` -- greedy backward elimination by validation degradation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.evaluation import ModelEvaluator
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.linear import LinearRegression, LogisticRegression
from repro.ml.forest import RandomForestClassifier
from repro.stats.chi2 import chi2_statistic
from repro.stats.gini import gini_importance
from repro.stats.mutual_information import mutual_information

SELECTOR_NAMES = ("lr", "gbdt", "mi", "chi2", "gini", "forward", "backward")


def _impute(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64).copy()
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        finite = column[~np.isnan(column)]
        fill = float(finite.mean()) if finite.size else 0.0
        column[np.isnan(column)] = fill
        matrix[:, j] = column
    return matrix


def _score_based_selection(scores: Sequence[float], names: Sequence[str], k: int) -> List[str]:
    order = np.argsort(-np.asarray(scores, dtype=np.float64))
    return [names[i] for i in order[:k]]


# ----------------------------------------------------------------------
# Score-based selectors
# ----------------------------------------------------------------------
def lr_selector(X: np.ndarray, y: np.ndarray, names: Sequence[str], k: int, task: str) -> List[str]:
    """Top-k features by absolute LR / linear-regression coefficient."""
    X = _impute(X)
    if task == "regression":
        model = LinearRegression().fit(X, y)
    else:
        model = LogisticRegression(n_iter=150).fit(X, y)
    return _score_based_selection(model.feature_importances_, names, k)


def gbdt_selector(X: np.ndarray, y: np.ndarray, names: Sequence[str], k: int, task: str) -> List[str]:
    """Top-k features by gradient-boosting gain importance."""
    X = _impute(X)
    if task == "regression":
        model = GradientBoostingRegressor(n_estimators=15, max_depth=3).fit(X, y)
    elif np.unique(y).size > 2:
        model = RandomForestClassifier(n_estimators=10, max_depth=5).fit(X, y)
    else:
        model = GradientBoostingClassifier(n_estimators=15, max_depth=3).fit(X, y)
    return _score_based_selection(model.feature_importances_, names, k)


def mi_selector(X: np.ndarray, y: np.ndarray, names: Sequence[str], k: int, task: str) -> List[str]:
    """Top-k features by mutual information with the label."""
    scores = [mutual_information(X[:, j], y) for j in range(X.shape[1])]
    return _score_based_selection(scores, names, k)


def chi2_selector(X: np.ndarray, y: np.ndarray, names: Sequence[str], k: int, task: str) -> List[str]:
    """Top-k features by chi-square score (classification only)."""
    if task == "regression":
        raise ValueError("The Chi2 selector only applies to classification tasks")
    scores = [chi2_statistic(X[:, j], y) for j in range(X.shape[1])]
    return _score_based_selection(scores, names, k)


def gini_selector(X: np.ndarray, y: np.ndarray, names: Sequence[str], k: int, task: str) -> List[str]:
    """Top-k features by single-split Gini importance (classification only)."""
    if task == "regression":
        raise ValueError("The Gini selector only applies to classification tasks")
    scores = [gini_importance(X[:, j], y) for j in range(X.shape[1])]
    return _score_based_selection(scores, names, k)


# ----------------------------------------------------------------------
# Wrapper (model-in-the-loop) selectors
# ----------------------------------------------------------------------
def forward_selector(
    evaluator: ModelEvaluator,
    feature_matrix_train: np.ndarray,
    feature_matrix_valid: np.ndarray,
    names: Sequence[str],
    k: int,
) -> List[str]:
    """Greedy forward selection: add the feature that improves validation most."""
    names = list(names)
    selected: List[int] = []
    remaining = list(range(len(names)))
    best_loss = evaluator.evaluate_matrix(None, None).loss
    for _ in range(min(k, len(names))):
        best_candidate = None
        best_candidate_loss = best_loss
        for j in remaining:
            columns = selected + [j]
            loss = evaluator.evaluate_matrix(
                feature_matrix_train[:, columns], feature_matrix_valid[:, columns]
            ).loss
            if loss < best_candidate_loss:
                best_candidate_loss = loss
                best_candidate = j
        if best_candidate is None:
            break
        selected.append(best_candidate)
        remaining.remove(best_candidate)
        best_loss = best_candidate_loss
    return [names[j] for j in selected]


def backward_selector(
    evaluator: ModelEvaluator,
    feature_matrix_train: np.ndarray,
    feature_matrix_valid: np.ndarray,
    names: Sequence[str],
    k: int,
) -> List[str]:
    """Greedy backward elimination: drop the feature whose removal helps most."""
    names = list(names)
    selected = list(range(len(names)))
    while len(selected) > k:
        best_drop = None
        best_loss = np.inf
        for j in selected:
            columns = [c for c in selected if c != j]
            loss = evaluator.evaluate_matrix(
                feature_matrix_train[:, columns], feature_matrix_valid[:, columns]
            ).loss
            if loss < best_loss:
                best_loss = loss
                best_drop = j
        if best_drop is None:  # pragma: no cover - defensive
            break
        selected.remove(best_drop)
    return [names[j] for j in selected]


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def select_features(
    selector: str,
    names: Sequence[str],
    k: int,
    task: str,
    X_train: np.ndarray,
    y_train: np.ndarray,
    evaluator: ModelEvaluator | None = None,
    X_valid: np.ndarray | None = None,
) -> List[str]:
    """Run the named selector and return the chosen feature names."""
    key = selector.strip().lower()
    if key not in SELECTOR_NAMES:
        raise ValueError(f"Unknown selector {selector!r}; expected one of {SELECTOR_NAMES}")
    score_based: Dict[str, Callable] = {
        "lr": lr_selector,
        "gbdt": gbdt_selector,
        "mi": mi_selector,
        "chi2": chi2_selector,
        "gini": gini_selector,
    }
    if key in score_based:
        return score_based[key](X_train, y_train, names, k, task)
    if evaluator is None or X_valid is None:
        raise ValueError(f"The {key!r} selector needs an evaluator and a validation matrix")
    if key == "forward":
        return forward_selector(evaluator, X_train, X_valid, names, k)
    return backward_selector(evaluator, X_train, X_valid, names, k)
