"""Command-line interface.

Three subcommands cover the common workflows:

* ``python -m repro.cli datasets``
  list the available synthetic datasets and their statistics.

* ``python -m repro.cli run --dataset student --method FeatAug --model LR``
  run one experiment scenario (the same code path as the benchmark harness)
  and print the held-out metric.

* ``python -m repro.cli augment --train train.csv --relevant logs.csv
  --label label --keys user_id --output augmented.csv``
  run FeatAug on user-provided CSV files and write the augmented training
  table plus the selected SQL queries.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import FeatAugConfig
from repro.core.feataug import FeatAug
from repro.dataframe.io import read_csv, write_csv
from repro.datasets import DATASET_NAMES, load_dataset
from repro.experiments.reporting import render_table
from repro.experiments.runner import METHOD_NAMES, run_method
from repro.ml.model_zoo import MODEL_NAMES
from repro.query.backends import backend_names
from repro.query.sharding import EXECUTORS, SHARD_STRATEGIES


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n-templates", type=int, default=4, help="number of query templates to identify")
    parser.add_argument("--queries-per-template", type=int, default=3, help="queries generated per template")
    parser.add_argument("--warmup-iterations", type=int, default=30, help="proxy-TPE iterations in the warm-up phase")
    parser.add_argument("--search-iterations", type=int, default=12, help="real-model TPE iterations per template")
    parser.add_argument("--proxy", choices=["mi", "spearman", "lr"], default="mi", help="low-cost proxy")
    parser.add_argument(
        "--search-batch-size",
        type=int,
        default=1,
        help="candidates proposed and evaluated per search round; >1 batches "
        "them through one fused engine pass with proposal deduplication",
    )
    parser.add_argument(
        "--engine-backend",
        choices=list(backend_names()),
        default=None,
        help="query-engine execution backend (default: $REPRO_ENGINE_BACKEND or numpy)",
    )
    parser.add_argument(
        "--engine-workers",
        type=int,
        default=None,
        help="query-engine worker threads for sharded parallel execution "
        "(default: $REPRO_ENGINE_WORKERS or 1 = serial)",
    )
    parser.add_argument(
        "--engine-shard-strategy",
        choices=list(SHARD_STRATEGIES),
        default=None,
        help="how a multi-worker engine shards: 'plan' partitions a batch's "
        "fused plans across workers, 'group' splits one plan's group ranges, "
        "'auto' picks per dispatch (plan for wide batches, group for a "
        "single heavy plan); default $REPRO_ENGINE_SHARD_STRATEGY or 'plan'",
    )
    parser.add_argument(
        "--engine-executor",
        choices=list(EXECUTORS),
        default=None,
        help="execution substrate of the sharded engine: 'thread' runs "
        "shards on an in-process pool, 'process' on a process pool over "
        "shared-memory table columns "
        "(default: $REPRO_ENGINE_EXECUTOR or thread)",
    )
    parser.add_argument(
        "--engine-incremental",
        action="store_true",
        default=None,
        help="delta-aware execution: on a relevant-table append the engine "
        "extends its cached masks / group indexes / additive results over "
        "the appended rows instead of flushing every cache "
        "(default: $REPRO_ENGINE_INCREMENTAL or off)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="global size-aware budget shared by the engine's mask / result "
        "/ sort-order caches (default: unbounded)",
    )
    parser.add_argument(
        "--service-window-ms",
        type=float,
        default=None,
        metavar="MS",
        help="QueryService micro-batch coalescing window: how long the "
        "dispatcher waits for concurrent requests to fuse into one round "
        "(default: $REPRO_SERVICE_WINDOW_MS or 2)",
    )
    parser.add_argument(
        "--service-max-batch",
        type=int,
        default=None,
        metavar="N",
        help="QueryService bound on queries executed per fused round "
        "(default: $REPRO_SERVICE_MAX_BATCH or 64)",
    )
    parser.add_argument(
        "--service-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="QueryService admission-queue bound in queries; submissions "
        "that would overflow it are rejected with backpressure "
        "(default: $REPRO_SERVICE_QUEUE_DEPTH or 1024)",
    )
    parser.add_argument(
        "--service-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="QueryService default per-request deadline on queue wait "
        "(default: $REPRO_SERVICE_TIMEOUT_MS or no deadline)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _config_from_args(args: argparse.Namespace) -> FeatAugConfig:
    return FeatAugConfig(
        n_templates=args.n_templates,
        queries_per_template=args.queries_per_template,
        warmup_iterations=args.warmup_iterations,
        search_iterations=args.search_iterations,
        proxy=args.proxy,
        search_batch_size=args.search_batch_size,
        engine_backend=args.engine_backend,
        engine_workers=args.engine_workers,
        engine_shard_strategy=args.engine_shard_strategy,
        engine_executor=args.engine_executor,
        engine_memory_budget=args.memory_budget,
        engine_incremental=args.engine_incremental,
        service_window_ms=args.service_window_ms,
        service_max_batch=args.service_max_batch,
        service_queue_depth=args.service_queue_depth,
        service_timeout_ms=args.service_timeout_ms,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="FeatAug reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list the synthetic datasets")
    datasets_parser.add_argument("--scale", type=float, default=0.25, help="dataset scale factor")

    run_parser = subparsers.add_parser("run", help="run one experiment scenario")
    run_parser.add_argument("--dataset", choices=list(DATASET_NAMES), required=True)
    run_parser.add_argument("--method", choices=list(METHOD_NAMES), default="FeatAug")
    run_parser.add_argument("--model", choices=list(MODEL_NAMES), default="LR")
    run_parser.add_argument("--n-features", type=int, default=12, help="number of generated features")
    run_parser.add_argument("--scale", type=float, default=0.25, help="dataset scale factor")
    _add_config_arguments(run_parser)

    augment_parser = subparsers.add_parser("augment", help="augment a CSV training table with FeatAug")
    augment_parser.add_argument("--train", required=True, help="path to the training table CSV")
    augment_parser.add_argument("--relevant", required=True, help="path to the relevant table CSV")
    augment_parser.add_argument("--label", required=True, help="label column in the training table")
    augment_parser.add_argument("--keys", required=True, help="comma-separated foreign key column(s)")
    augment_parser.add_argument("--task", choices=["binary", "multiclass", "regression"], default="binary")
    augment_parser.add_argument("--model", choices=list(MODEL_NAMES), default="LR")
    augment_parser.add_argument("--candidate-attrs", default=None, help="comma-separated WHERE-clause candidates (default: all relevant columns)")
    augment_parser.add_argument("--agg-attrs", default=None, help="comma-separated aggregation attributes (default: numeric columns)")
    augment_parser.add_argument("--n-features", type=int, default=12)
    augment_parser.add_argument("--output", required=True, help="path for the augmented training table CSV")
    _add_config_arguments(augment_parser)

    return parser


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        bundle = load_dataset(name, scale=args.scale, seed=0)
        summary = bundle.summary()
        rows.append(
            [name, summary["task"], summary["relationship"], summary["n_train_rows"],
             summary["n_relevant_rows"], summary["n_relevant_cols"]]
        )
    print(render_table(["dataset", "task", "relationship", "rows(D)", "rows(R)", "cols(R)"], rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = _config_from_args(args)
    result = run_method(
        bundle, args.method, args.model, n_features=args.n_features, config=config, seed=args.seed
    )
    print(
        render_table(
            ["dataset", "method", "model", "metric", "score", "n_features", "seconds"],
            [[result.dataset, result.method, result.model, result.metric_name,
              result.metric, result.n_features, result.seconds]],
        )
    )
    return 0


def _command_augment(args: argparse.Namespace) -> int:
    keys = [k.strip() for k in args.keys.split(",") if k.strip()]
    train = read_csv(args.train, dtypes={k: "categorical" for k in keys})
    relevant = read_csv(args.relevant, dtypes={k: "categorical" for k in keys})
    candidate_attrs = (
        [a.strip() for a in args.candidate_attrs.split(",") if a.strip()]
        if args.candidate_attrs
        else [c for c in relevant.column_names if c not in keys]
    )
    agg_attrs = (
        [a.strip() for a in args.agg_attrs.split(",") if a.strip()] if args.agg_attrs else None
    )
    config = _config_from_args(args)
    feataug = FeatAug(label=args.label, keys=keys, task=args.task, model=args.model, config=config)
    result = feataug.augment(
        train, relevant,
        candidate_attrs=candidate_attrs, agg_attrs=agg_attrs, n_features=args.n_features,
    )
    write_csv(result.augmented_table, args.output)
    print(f"Wrote augmented training table with {len(result.feature_names)} new feature(s) to {args.output}")
    print("\nSelected predicate-aware SQL queries:")
    for sql in result.sql():
        print("\n" + sql)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "run":
        return _command_run(args)
    return _command_augment(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
