"""Unit tests for random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import accuracy_score, rmse, roc_auc_score


def make_classification(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + X[:, 1] ** 2 > 0.5).astype(float)
    return X, y


class TestRandomForestClassifier:
    def test_beats_chance(self):
        X, y = make_classification()
        model = RandomForestClassifier(n_estimators=10, max_depth=5, random_state=0).fit(X, y)
        proba = model.predict_proba(X)[:, 1]
        assert roc_auc_score(y, proba) > 0.85

    def test_heldout_generalisation(self):
        X, y = make_classification(seed=1)
        model = RandomForestClassifier(n_estimators=10, max_depth=5, random_state=0).fit(X[:300], y[:300])
        assert accuracy_score(y[300:], model.predict(X[300:])) > 0.7

    def test_proba_shape(self):
        X, y = make_classification(100)
        proba = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y).predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_informative_first(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(400, 3))
        y = (X[:, 0] > 0).astype(float)
        model = RandomForestClassifier(n_estimators=10, max_depth=4, random_state=0).fit(X, y)
        assert np.argmax(model.feature_importances_) == 0

    def test_deterministic_given_seed(self):
        X, y = make_classification(150)
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_multiclass_labels(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 3))
        y = np.argmax(X, axis=1).astype(float)
        model = RandomForestClassifier(n_estimators=10, max_depth=5, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.75
        assert model.predict_proba(X).shape == (300, 3)


class TestRandomForestRegressor:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(400, 1))
        y = np.sin(4 * X[:, 0])
        model = RandomForestRegressor(n_estimators=10, max_depth=6, random_state=0).fit(X, y)
        assert rmse(y, model.predict(X)) < 0.25

    def test_ensemble_not_much_worse_than_single_tree_heldout(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        y = X[:, 0] * X[:, 1] + rng.normal(0, 0.2, size=300)
        forest = RandomForestRegressor(n_estimators=15, max_depth=5, random_state=0).fit(X[:200], y[:200])
        single = RandomForestRegressor(n_estimators=1, max_depth=5, random_state=0).fit(X[:200], y[:200])
        # Bagging should not degrade held-out error noticeably (usually it helps).
        assert rmse(y[200:], forest.predict(X[200:])) <= rmse(y[200:], single.predict(X[200:])) + 0.25

    def test_prediction_shape(self):
        X = np.random.default_rng(2).normal(size=(50, 3))
        y = X.sum(axis=1)
        pred = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y).predict(X)
        assert pred.shape == (50,)
