"""ARDA: automatic relational data augmentation (Chepurko et al., VLDB 2020).

The paper compares against ARDA on datasets whose relevant table can be
joined one-to-one with the training table (Covtype, Household).  ARDA's core
idea reproduced here is *random-injection feature selection*: after joining
every candidate column onto the training table, random noise columns are
injected, a tree-ensemble is trained, and only real features whose importance
beats a quantile of the noise importances are kept.  This is repeated for a
few rounds and the stable winners are returned.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


class ARDA:
    """Random-injection feature selection over a candidate feature matrix."""

    def __init__(
        self,
        n_rounds: int = 3,
        noise_multiplier: float = 0.5,
        quantile: float = 0.75,
        n_estimators: int = 10,
        seed: int = 0,
    ):
        self.n_rounds = n_rounds
        self.noise_multiplier = noise_multiplier
        self.quantile = quantile
        self.n_estimators = n_estimators
        self.seed = seed

    def select(
        self,
        X: np.ndarray,
        y: np.ndarray,
        names: Sequence[str],
        k: int,
        task: str = "binary",
    ) -> List[str]:
        """Return up to *k* feature names surviving the random-injection test."""
        X = np.asarray(X, dtype=np.float64)
        X = np.nan_to_num(X, nan=0.0)
        names = list(names)
        rng = np.random.default_rng(self.seed)
        votes = np.zeros(X.shape[1], dtype=np.float64)
        importance_sum = np.zeros(X.shape[1], dtype=np.float64)

        for round_index in range(self.n_rounds):
            n_noise = max(1, int(self.noise_multiplier * X.shape[1]))
            noise = rng.normal(size=(X.shape[0], n_noise))
            design = np.hstack([X, noise])
            if task == "regression":
                model = RandomForestRegressor(
                    n_estimators=self.n_estimators, max_depth=5, random_state=self.seed + round_index
                )
            else:
                model = RandomForestClassifier(
                    n_estimators=self.n_estimators, max_depth=5, random_state=self.seed + round_index
                )
            model.fit(design, y)
            importances = model.feature_importances_
            real, fake = importances[: X.shape[1]], importances[X.shape[1] :]
            threshold = np.quantile(fake, self.quantile) if fake.size else 0.0
            votes += (real > threshold).astype(np.float64)
            importance_sum += real

        # Rank by votes, breaking ties by accumulated importance.
        order = np.lexsort((-importance_sum, -votes))
        survivors = [i for i in order if votes[i] > 0]
        chosen = survivors[:k] if survivors else list(order[:k])
        return [names[i] for i in chosen]
