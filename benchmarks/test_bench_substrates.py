"""Micro-benchmarks of the substrates FeatAug is built on.

Not a paper table, but useful for tracking the cost of the primitives every
experiment exercises thousands of times: predicate filtering, group-by
aggregation, query execution + join, mutual information and TPE suggestions.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import BENCH_SCALE
from repro.dataframe.groupby import group_by_aggregate
from repro.dataframe.predicates import Equals, Range
from repro.datasets import load_dataset
from repro.hpo.space import CategoricalDimension, RealDimension, SearchSpace
from repro.hpo.tpe import TPEOptimizer
from repro.query.executor import execute_query
from repro.query.pool import QueryPool
from repro.query.template import QueryTemplate
from repro.stats.mutual_information import mutual_information


@pytest.fixture(scope="module")
def student():
    return load_dataset("student", scale=BENCH_SCALE, seed=0)


def test_predicate_filter_speed(benchmark, student):
    predicate = Equals("event_type", "notebook_click") & Range("level", low=13)
    mask = benchmark(predicate.mask, student.relevant)
    assert mask.shape[0] == student.relevant.num_rows


def test_group_by_aggregate_speed(benchmark, student):
    result = benchmark(
        group_by_aggregate, student.relevant, student.keys, "hover_duration", "AVG"
    )
    assert result.num_rows > 0


def test_query_execution_speed(benchmark, student):
    template = QueryTemplate(["SUM", "AVG"], student.agg_attrs, student.candidate_attrs, student.keys)
    pool = QueryPool(template, student.relevant)
    query = pool.sample_random(seed=0, n=1)[0]
    result = benchmark(execute_query, query, student.relevant)
    assert "feature" in result


def test_mutual_information_speed(benchmark):
    rng = np.random.default_rng(0)
    feature = rng.normal(size=5000)
    label = rng.integers(0, 2, size=5000)
    value = benchmark(mutual_information, feature, label)
    assert value >= 0.0


def test_tpe_suggest_speed(benchmark):
    space = SearchSpace(
        [
            CategoricalDimension("agg", ["SUM", "AVG", "MAX", "COUNT"]),
            RealDimension("low", 0, 1, optional=True),
            RealDimension("high", 0, 1, optional=True),
        ]
    )
    optimizer = TPEOptimizer(space, seed=0, n_startup_trials=5)
    rng = np.random.default_rng(0)
    for _ in range(30):
        params = space.sample(rng)
        optimizer.observe(params, float(rng.random()))
    params = benchmark(optimizer.suggest)
    space.validate(params)
