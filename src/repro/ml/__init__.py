"""Machine-learning substrate.

Replaces the scikit-learn / XGBoost / DeepFM stack used by the original
FeatAug implementation with pure-numpy estimators exposing the familiar
``fit`` / ``predict`` / ``predict_proba`` interface, plus preprocessing and
the metrics reported in the paper (AUC, macro F1, RMSE).
"""

from repro.ml.base import BaseEstimator, is_classifier
from repro.ml.metrics import (
    accuracy_score,
    f1_score_macro,
    log_loss,
    rmse,
    roc_auc_score,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    OneHotEncoder,
    StandardScaler,
    SimpleImputer,
    TableVectorizer,
    train_valid_test_split,
)
from repro.ml.linear import LinearRegression, LogisticRegression, RidgeRegression
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.deepfm import DeepFMClassifier
from repro.ml.model_zoo import make_model, MODEL_NAMES

__all__ = [
    "BaseEstimator",
    "is_classifier",
    "accuracy_score",
    "f1_score_macro",
    "log_loss",
    "rmse",
    "roc_auc_score",
    "LabelEncoder",
    "OneHotEncoder",
    "StandardScaler",
    "SimpleImputer",
    "TableVectorizer",
    "train_valid_test_split",
    "LinearRegression",
    "LogisticRegression",
    "RidgeRegression",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "DeepFMClassifier",
    "make_model",
    "MODEL_NAMES",
]
