"""Synthetic Instacart: will the customer buy a banana product next order?

The real Instacart dataset joins historical orders with product and
department tables.  The synthetic relevant table is an order-item log with
product name, department, aisle, reorder flag, quantity, price and order
timestamp.

Planted signal: the number of produce-department items bought in the last 45
days (plus a boost when the product name contains "banana") drives the label,
so a department equality predicate combined with a recent time window exposes
it.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.column import DType
from repro.datasets.base import DatasetBundle
from repro.datasets.synthetic import (
    binary_label_from_signal,
    build_table,
    choice_column,
    grouped_sum,
    make_entity_ids,
    random_timestamps,
    recent_cutoff,
)

DEPARTMENTS = ["produce", "dairy", "bakery", "frozen", "beverages", "snacks", "household"]
AISLES = [f"aisle_{i}" for i in range(15)]
PRODUCTS = [
    "banana", "organic banana", "strawberries", "whole milk", "sourdough bread",
    "frozen pizza", "sparkling water", "tortilla chips", "paper towels", "avocado",
    "baby spinach", "greek yogurt", "orange juice", "dark chocolate", "ground coffee",
]


def make_instacart(n_users: int = 1200, events_per_user: int = 25, seed: int = 1) -> DatasetBundle:
    """Generate the synthetic Instacart banana-reorder dataset."""
    rng = np.random.default_rng(seed)
    user_ids = make_entity_ids("user", n_users)

    n_prior_orders = rng.integers(3, 40, size=n_users).astype(np.float64)
    days_since_first_order = rng.integers(30, 365, size=n_users).astype(np.float64)

    n_events = n_users * events_per_user
    event_users = list(rng.choice(user_ids, size=n_events))
    product = choice_column(rng, n_events, PRODUCTS)
    department = []
    for p in product:
        if p in ("banana", "organic banana", "strawberries", "avocado", "baby spinach"):
            department.append("produce")
        elif p in ("whole milk", "greek yogurt"):
            department.append("dairy")
        else:
            department.append(str(rng.choice(DEPARTMENTS[2:])))
    aisle = choice_column(rng, n_events, AISLES)
    reordered = rng.integers(0, 2, size=n_events).astype(np.float64)
    quantity = rng.integers(1, 6, size=n_events).astype(np.float64)
    price = np.round(rng.lognormal(1.2, 0.6, size=n_events), 2)
    timestamps = random_timestamps(rng, n_events, days=180)

    # Planted signal: banana purchases inside the produce department during
    # the last 45 days.  The restriction to a narrow product subset and a
    # recent window is what makes predicate-aware aggregation necessary --
    # unrestricted aggregates only see a heavily diluted version of it.
    cutoff = recent_cutoff(45)
    produce_recent = (np.asarray(department, dtype=object) == "produce") & (timestamps >= cutoff)
    banana_mask = produce_recent & np.asarray(["banana" in p for p in product], dtype=bool)
    signal = grouped_sum(user_ids, np.asarray(event_users, dtype=object), quantity, banana_mask)
    signal = signal + 0.3 * grouped_sum(
        user_ids, np.asarray(event_users, dtype=object), np.ones(n_events), produce_recent
    )

    label = binary_label_from_signal(
        rng, signal, base_contribution=n_prior_orders, noise=0.5, positive_rate=0.3
    )

    train = build_table(
        {
            "user_id": (user_ids, DType.CATEGORICAL),
            "n_prior_orders": (n_prior_orders, DType.NUMERIC),
            "days_since_first_order": (days_since_first_order, DType.NUMERIC),
            "label": (label, DType.NUMERIC),
        }
    )
    relevant = build_table(
        {
            "user_id": (event_users, DType.CATEGORICAL),
            "product_name": (product, DType.CATEGORICAL),
            "department": (department, DType.CATEGORICAL),
            "aisle": (aisle, DType.CATEGORICAL),
            "reordered": (reordered, DType.NUMERIC),
            "quantity": (quantity, DType.NUMERIC),
            "price": (price, DType.NUMERIC),
            "order_timestamp": (timestamps, DType.DATETIME),
        }
    )
    return DatasetBundle(
        name="instacart",
        train=train,
        relevant=relevant,
        keys=["user_id"],
        label_col="label",
        task="binary",
        metric_name="auc",
        candidate_attrs=["department", "aisle", "reordered", "quantity", "price", "order_timestamp"],
        agg_attrs=["quantity", "price", "reordered"],
        description="Banana purchase prediction from order history (synthetic Instacart).",
    )
