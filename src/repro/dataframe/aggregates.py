"""Aggregation functions.

The paper's query templates use the following aggregation function set
(Table II):  SUM, MIN, MAX, COUNT, AVG, COUNT DISTINCT, VAR, VAR_SAMPLE, STD,
STD_SAMPLE, ENTROPY, KURTOSIS, MODE, MAD and MEDIAN.  Every function maps a
(possibly empty) group of values to a single float.  Missing values are
ignored; empty groups yield ``NaN`` (except COUNT variants which yield 0).

Accumulation-order contract: every floating-point total in this module goes
through :func:`_seq_sum` -- a strict left-to-right sum -- rather than
``np.sum`` (pairwise association).  The vectorized grouped kernels
(:mod:`repro.dataframe.grouped_kernels`) accumulate per group via
``np.bincount``, which adds weights one at a time in row order, i.e. exactly
a strict sequential sum per group.  Sharing that association order is what
makes the kernels **bit-for-bit identical** to this per-group reference for
all 15 aggregates, so switching the engine between kernel modes can never
perturb a search trajectory by even an ulp.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.dataframe.column import Column

AggregateParam = Union[float, int]


def _clean(values: np.ndarray) -> np.ndarray:
    """Drop NaNs from a float array."""
    return values[~np.isnan(values)]


def _seq_sum(values: np.ndarray) -> float:
    """Strict left-to-right sum (the accumulation-order contract above).

    ``np.bincount`` with a single zero-valued bin *is* a strict sequential
    sum at vectorized speed, and is the same primitive the grouped kernels
    total with -- guaranteeing bit-identical accumulation.
    """
    if not values.size:
        return 0.0
    return float(
        np.bincount(np.zeros(values.size, dtype=np.intp), weights=values, minlength=1)[0]
    )


def agg_sum(values: np.ndarray) -> float:
    v = _clean(values)
    return _seq_sum(v) if v.size else float("nan")


def agg_min(values: np.ndarray) -> float:
    v = _clean(values)
    return float(v.min()) if v.size else float("nan")


def agg_max(values: np.ndarray) -> float:
    v = _clean(values)
    return float(v.max()) if v.size else float("nan")


def agg_count(values: np.ndarray) -> float:
    return float(_clean(values).size)


def agg_avg(values: np.ndarray) -> float:
    v = _clean(values)
    return _seq_sum(v) / v.size if v.size else float("nan")


def agg_count_distinct(values: np.ndarray) -> float:
    v = _clean(values)
    return float(np.unique(v).size)


def _sum_squared_deviations(v: np.ndarray) -> float:
    """Two-pass sum of squared deviations from the (sequential) mean."""
    dev = v - _seq_sum(v) / v.size
    return _seq_sum(dev * dev)


def agg_var(values: np.ndarray) -> float:
    v = _clean(values)
    return _sum_squared_deviations(v) / v.size if v.size else float("nan")


def agg_var_sample(values: np.ndarray) -> float:
    v = _clean(values)
    return _sum_squared_deviations(v) / (v.size - 1) if v.size > 1 else float("nan")


def agg_std(values: np.ndarray) -> float:
    v = _clean(values)
    return float(np.sqrt(_sum_squared_deviations(v) / v.size)) if v.size else float("nan")


def agg_std_sample(values: np.ndarray) -> float:
    v = _clean(values)
    if v.size < 2:
        return float("nan")
    return float(np.sqrt(_sum_squared_deviations(v) / (v.size - 1)))


def agg_entropy(values: np.ndarray) -> float:
    """Shannon entropy (natural log) of the empirical value distribution."""
    v = _clean(values)
    if not v.size:
        return float("nan")
    _, counts = np.unique(v, return_counts=True)
    p = counts / counts.sum()
    return _seq_sum(-(p * np.log(p)))


def agg_kurtosis(values: np.ndarray) -> float:
    """Excess kurtosis (Fisher definition, ``m4 / var**2 - 3``); 0.0 for
    zero-variance groups.

    Zero variance is decided on the *values* (``max == min``), not on the
    computed variance: accumulated rounding in the mean can leave it a few
    ulps above zero for a constant group (e.g. twelve copies of 19.99), and
    branching on that noise would make the result depend on summation order.
    """
    v = _clean(values)
    if v.size < 2:
        return float("nan")
    if v.max() == v.min():
        return 0.0
    var = _sum_squared_deviations(v) / v.size
    if var == 0:
        return 0.0
    dev = v - _seq_sum(v) / v.size
    dev2 = dev * dev
    m4 = _seq_sum(dev2 * dev2) / v.size
    # IEEE semantics via numpy scalars: var**2 can underflow to 0 for
    # subnormal-range values, and the result must then be NaN/inf (exactly
    # what the vectorized kernel computes), not a ZeroDivisionError.
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.float64(m4) / (np.float64(var) * np.float64(var))
    return float(ratio - 3.0)


def agg_mode(values: np.ndarray) -> float:
    """Most frequent value; ties break deterministically to the **smallest**.

    ``np.unique`` returns the distinct values in ascending order and
    ``np.argmax`` returns the *first* position of the maximum count, so among
    equally frequent values the smallest one always wins.  This tie-breaking
    rule is part of the aggregate's contract: the sort-based grouped kernel
    (:meth:`repro.dataframe.grouped_kernels.GroupedAggregator.mode`) relies on
    it to stay element-wise identical, and
    ``tests/dataframe/test_aggregates.py`` pins it with regression tests.
    """
    v = _clean(values)
    if not v.size:
        return float("nan")
    uniques, counts = np.unique(v, return_counts=True)
    return float(uniques[np.argmax(counts)])


def agg_mad(values: np.ndarray) -> float:
    """Median absolute deviation from the median."""
    v = _clean(values)
    if not v.size:
        return float("nan")
    med = np.median(v)
    return float(np.median(np.abs(v - med)))


def agg_median(values: np.ndarray) -> float:
    v = _clean(values)
    return float(np.median(v)) if v.size else float("nan")


def agg_quantile(values: np.ndarray, q: float) -> float:
    """Linear-interpolation quantile at ``q`` over the sorted non-NaN values.

    The interpolation formula is spelled out rather than delegated to
    ``np.quantile`` so the vectorized grouped kernel can replay the exact
    same elementwise IEEE operations per group and stay bit-identical:
    ``pos = q * (n - 1); lo = trunc(pos); frac = pos - lo`` and the result
    is ``sv[lo]`` when ``frac == 0`` else ``sv[lo] + (sv[lo+1] - sv[lo]) * frac``.
    """
    v = np.sort(_clean(values))
    if not v.size:
        return float("nan")
    pos = q * (v.size - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0:
        return float(v[lo])
    return float(v[lo] + (v[lo + 1] - v[lo]) * frac)


def agg_top_k_share(values: np.ndarray, k: int) -> float:
    """Share of the group's non-NaN rows held by its ``k`` most frequent values.

    Counts are exact integers, so the numerator is order-insensitive (no
    accumulation-order concern) and count ties at the ``k`` boundary cannot
    change the result.
    """
    v = _clean(values)
    if not v.size:
        return float("nan")
    _, counts = np.unique(v, return_counts=True)
    top = np.sort(counts)[::-1][: int(k)]
    return float(int(top.sum()) / v.size)


AGGREGATE_FUNCTIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "SUM": agg_sum,
    "MIN": agg_min,
    "MAX": agg_max,
    "COUNT": agg_count,
    "AVG": agg_avg,
    "COUNT_DISTINCT": agg_count_distinct,
    "VAR": agg_var,
    "VAR_SAMPLE": agg_var_sample,
    "STD": agg_std,
    "STD_SAMPLE": agg_std_sample,
    "ENTROPY": agg_entropy,
    "KURTOSIS": agg_kurtosis,
    "MODE": agg_mode,
    "MAD": agg_mad,
    "MEDIAN": agg_median,
}

def _parse_quantile_param(raw: object) -> float:
    q = float(raw)
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"QUANTILE parameter must lie in [0, 1], got {raw!r}")
    return q


def _parse_top_k_param(raw: object) -> int:
    k = int(float(raw))
    if k < 1:
        raise ValueError(f"TOP_K_SHARE parameter must be a positive integer, got {raw!r}")
    return k


#: Parameterized aggregate families: name -> (reference function taking
#: ``(values, param)``, parameter parser/validator).  Spelled as
#: ``"FAMILY:param"`` in query-level names, e.g. ``"QUANTILE:0.25"`` or
#: ``"TOP_K_SHARE:3"``.
PARAMETERIZED_AGGREGATES: Dict[
    str, Tuple[Callable[[np.ndarray, AggregateParam], float], Callable[[object], AggregateParam]]
] = {
    "QUANTILE": (agg_quantile, _parse_quantile_param),
    "TOP_K_SHARE": (agg_top_k_share, _parse_top_k_param),
}

#: Aggregations that are meaningful on categorical columns (after hashing the
#: categories to integer codes): counting and diversity measures.
#: ``TOP_K_SHARE`` qualifies because it only looks at value frequencies.
CATEGORICAL_SAFE_AGGREGATES = {"COUNT", "COUNT_DISTINCT", "ENTROPY", "MODE", "TOP_K_SHARE"}

#: Default aggregation set used when a template does not specify one --
#: matches the function list in Table II of the paper.
DEFAULT_AGGREGATES = list(AGGREGATE_FUNCTIONS.keys())


def _basic_normalise(name: str) -> str:
    return name.strip().upper().replace(" ", "_")


def parse_aggregate_name(name: str) -> Tuple[str, Optional[AggregateParam]]:
    """Split an aggregate name into ``(canonical function, parameter)``.

    Plain names parse to ``(NAME, None)``.  Parameterized spellings such as
    ``"quantile:0.25"`` parse to ``("QUANTILE", 0.25)`` with the parameter
    validated by the family's parser.  Unknown families raise ``KeyError``;
    invalid parameter values raise ``ValueError``.
    """
    if ":" in name:
        head, _, tail = name.partition(":")
        func = _basic_normalise(head)
        if func not in PARAMETERIZED_AGGREGATES:
            raise KeyError(f"Unknown parameterized aggregation function {name!r}")
        _, parser = PARAMETERIZED_AGGREGATES[func]
        try:
            param = parser(tail.strip())
        except (TypeError, ValueError) as exc:
            raise ValueError(f"Invalid parameter in aggregate name {name!r}: {exc}") from exc
        return func, param
    return _basic_normalise(name), None


def canonical_aggregate_name(func: str, param: Optional[AggregateParam] = None) -> str:
    """Render the canonical spelling of an aggregate: ``"SUM"``, ``"QUANTILE:0.25"``."""
    func = _basic_normalise(func)
    if param is None:
        return func
    if func not in PARAMETERIZED_AGGREGATES:
        raise KeyError(f"Aggregation function {func!r} does not take a parameter")
    _, parser = PARAMETERIZED_AGGREGATES[func]
    value = parser(param)
    rendered = repr(float(value)) if isinstance(value, float) else str(int(value))
    return f"{func}:{rendered}"


def resolve_aggregate(
    func: str, param: Optional[AggregateParam] = None
) -> Callable[[np.ndarray], float]:
    """Return the per-group reference callable for ``func`` (+ ``param``).

    ``func`` is a canonical base name (``"SUM"``, ``"QUANTILE"``).  Plain
    aggregates reject a parameter; parameterized families require one.
    """
    func = _basic_normalise(func)
    if func in PARAMETERIZED_AGGREGATES:
        if param is None:
            raise ValueError(f"Aggregation function {func!r} requires a parameter")
        reference, parser = PARAMETERIZED_AGGREGATES[func]
        value = parser(param)
        return lambda values: reference(values, value)
    if func not in AGGREGATE_FUNCTIONS:
        raise KeyError(f"Unknown aggregation function {func!r}")
    if param is not None:
        raise ValueError(f"Aggregation function {func!r} does not take a parameter")
    return AGGREGATE_FUNCTIONS[func]


def aggregate(name: str, values: np.ndarray) -> float:
    """Apply the aggregation function *name* to a float array of group values."""
    func, param = parse_aggregate_name(name)
    if param is None and func not in AGGREGATE_FUNCTIONS:
        raise KeyError(f"Unknown aggregation function {name!r}")
    return resolve_aggregate(func, param)(np.asarray(values, dtype=np.float64))


def normalise_aggregate_name(name: str) -> str:
    """Canonicalise an aggregation function name.

    ``"count distinct"`` -> ``"COUNT_DISTINCT"``; parameterized spellings are
    re-rendered canonically, e.g. ``"quantile: .5"`` -> ``"QUANTILE:0.5"``.
    """
    if ":" in name:
        func, param = parse_aggregate_name(name)
        return canonical_aggregate_name(func, param)
    return _basic_normalise(name)


def column_to_aggregable(column: Column, rows=None) -> np.ndarray:
    """Convert a column to a float array suitable for aggregation.

    Numeric-like columns are used as-is.  Categorical columns are converted
    to stable integer codes so COUNT / COUNT_DISTINCT / ENTROPY / MODE remain
    meaningful.  When *rows* is given (an ascending array of row positions),
    codes are assigned by first appearance over those rows only -- exactly
    what this function would produce on the filtered table -- scattered into
    a full-length array (other positions stay NaN).
    """
    if column.is_numeric_like:
        return column.values
    codes = np.full(len(column), np.nan, dtype=np.float64)
    mapping: Dict[object, int] = {}
    values = column.values
    for i in range(len(column)) if rows is None else rows:
        v = values[i]
        if v is None:
            continue
        if v not in mapping:
            mapping[v] = len(mapping)
        codes[i] = mapping[v]
    return codes
