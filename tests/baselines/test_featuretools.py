"""Unit tests for the Featuretools-style baseline."""

import numpy as np
import pytest

from repro.baselines.featuretools import FeaturetoolsGenerator
from repro.dataframe.aggregates import CATEGORICAL_SAFE_AGGREGATES


class TestCandidateQueries:
    def test_cross_product_size_numeric_only(self, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["SUM", "AVG", "MAX"])
        queries = generator.candidate_queries(logs_table, agg_attrs=["pprice"])
        assert len(queries) == 3

    def test_categorical_attrs_limited_to_safe_aggregates(self, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"])
        queries = generator.candidate_queries(logs_table, agg_attrs=["department"])
        # The default (plain-family) function list keeps exactly its
        # categorical-safe members; parameterized families like TOP_K_SHARE
        # are safe too but only appear when spelled explicitly.
        expected = [f for f in generator.agg_funcs if f in CATEGORICAL_SAFE_AGGREGATES]
        assert len(queries) == len(expected)
        assert all(q.agg_func in CATEGORICAL_SAFE_AGGREGATES for q in queries)

    def test_spelled_top_k_share_allowed_on_categoricals(self, logs_table):
        generator = FeaturetoolsGenerator(
            keys=["cname"], agg_funcs=["SUM", "TOP_K_SHARE:2"]
        )
        queries = generator.candidate_queries(logs_table, agg_attrs=["department"])
        assert [q.agg_func for q in queries] == ["TOP_K_SHARE:2"]

    def test_no_predicates_generated(self, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["SUM"])
        for query in generator.candidate_queries(logs_table):
            assert not query.has_predicates()
            assert "WHERE" not in query.to_sql()

    def test_max_features_cap(self, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], max_features=5)
        assert len(generator.candidate_queries(logs_table)) == 5

    def test_key_columns_excluded_from_aggregation(self, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["COUNT"])
        attrs = {q.agg_attr for q in generator.candidate_queries(logs_table)}
        assert "cname" not in attrs


class TestGenerate:
    def test_features_materialised_on_training_table(self, user_table, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["SUM", "AVG", "COUNT"])
        augmented, features = generator.generate(user_table, logs_table, agg_attrs=["pprice"])
        assert augmented.num_rows == user_table.num_rows
        assert len(features) >= 2
        for feature in features:
            assert feature.name in augmented

    def test_constant_features_dropped(self, user_table, logs_table):
        # MIN of a constant column would be constant across users -> dropped.
        constant_logs = logs_table.with_column(
            logs_table.column("pprice").rename("const_col")
        )
        from repro.dataframe.column import Column

        constant_logs = constant_logs.with_column(Column("const_col", [1.0] * logs_table.num_rows))
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["MIN"])
        augmented, features = generator.generate(user_table, constant_logs, agg_attrs=["const_col"])
        assert features == []

    def test_feature_values_match_manual_aggregation(self, user_table, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["SUM"])
        augmented, features = generator.generate(user_table, logs_table, agg_attrs=["pprice"])
        name = features[0].name
        values = dict(zip(augmented.column("cname").values, augmented.column(name).values))
        assert values["alice"] == pytest.approx(505.0)
        assert values["bob"] == pytest.approx(18.0)
        assert np.isnan(values["dave"])

    def test_prefix_applied(self, user_table, logs_table):
        generator = FeaturetoolsGenerator(keys=["cname"], agg_funcs=["SUM"])
        _, features = generator.generate(user_table, logs_table, agg_attrs=["pprice"], prefix="deep")
        assert all(f.name.startswith("deep_") for f in features)
