"""The global size-aware cache budget and its satellite regressions.

``EngineConfig(memory_budget_bytes=N)`` attaches one :class:`CacheBudget` to
the engine's mask / result / sort-order LRUs: every entry carries its
:func:`_value_nbytes` cost, the summed bytes are a hard ceiling, and when an
insert overflows it the budget evicts LRU entries from the
cheapest-benefit-per-byte cache first (sort orders, then masks, then result
tables) -- deterministically, so identical traffic always evicts
identically.

Satellite regressions pinned here:

* ``_LRUCache`` distinguishes a cached falsy value (``None``, an empty
  array, ``0``) from a miss via an internal sentinel.
* ``EngineStats.delta_since`` tolerates baselines missing counter keys (or
  carrying malformed values) instead of raising.
* ``QueryEngine.close()`` is idempotent, releases backend resources (the
  sqlite connection), and runs automatically for registry engines when
  their table is garbage-collected.
"""

import gc

import numpy as np
import pytest

from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.engine import (
    CacheBudget,
    EngineConfig,
    QueryEngine,
    _LRUCache,
    _value_nbytes,
    engine_for,
)
from repro.query.query import PredicateAwareQuery


def make_relevant(seed: int, n: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        [
            Column("key", rng.integers(0, 9, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [str(v) for v in rng.choice(list("abcdef"), size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


def query_with(value: str, agg_func: str = "SUM") -> PredicateAwareQuery:
    return PredicateAwareQuery(
        agg_func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
    )


def budgeted_engine(table: Table, budget: int, **overrides) -> QueryEngine:
    # Serial + thread pinned: eviction *determinism* pins depend on a
    # deterministic traffic order, which worker pools do not guarantee
    # (the budget ceiling itself holds under concurrency -- see
    # test_engine_concurrency.TestMemoryBudgetConcurrency).
    overrides.setdefault("backend", "numpy")
    overrides.setdefault("executor", "thread")
    overrides.setdefault("num_workers", 1)
    return QueryEngine(
        table, config=EngineConfig(memory_budget_bytes=budget, **overrides)
    )


class TestValueNbytes:
    def test_ndarray_costs_its_buffer(self):
        assert _value_nbytes(np.zeros(10, dtype=np.bool_)) == 10
        assert _value_nbytes(np.zeros(10, dtype=np.int64)) == 80

    def test_table_costs_the_sum_of_its_columns(self):
        table = Table(
            [
                Column("a", np.zeros(5), dtype=DType.NUMERIC),
                Column("b", np.zeros(5), dtype=DType.NUMERIC),
            ]
        )
        assert _value_nbytes(table) == 2 * 5 * 8

    def test_unknown_values_cost_zero(self):
        assert _value_nbytes("whatever") == 0
        assert _value_nbytes(None) == 0


class TestLRUCacheSentinel:
    """Satellite: falsy / None cached values are hits, not misses."""

    def test_cached_falsy_values_are_hits(self):
        cache = _LRUCache(maxsize=4)
        sentinel = object()
        cache.put("none", None)
        cache.put("empty", np.array([], dtype=np.bool_))
        cache.put("zero", 0)
        assert cache.get("none", sentinel) is None
        got = cache.get("empty", sentinel)
        assert isinstance(got, np.ndarray) and got.size == 0
        assert cache.get("zero", sentinel) == 0
        assert cache.get("really-missing", sentinel) is sentinel
        assert cache.get("really-missing") is None  # default default

    def test_falsy_entries_keep_lru_recency(self):
        cache = _LRUCache(maxsize=2)
        cache.put("a", None)
        cache.put("b", 0)
        cache.get("a", object())  # refresh "a": "b" is now the LRU head
        cache.put("c", None)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_engine_empty_results_hit_the_result_cache(self):
        """An empty result table (falsy-ish value) must be served from the
        result cache on repeat, not recomputed as a miss."""
        engine = QueryEngine(make_relevant(0))
        query = query_with("never-matches")
        first = engine.execute(query)
        assert first.num_rows == 0
        assert engine.execute(query) is first
        assert (engine.stats.result_hits, engine.stats.result_misses) == (1, 1)

    def test_engine_all_false_masks_hit_the_mask_cache(self):
        engine = budgeted_engine(make_relevant(0), budget=1 << 30)
        engine.execute(query_with("never-matches", "SUM"))
        engine.execute(query_with("never-matches", "AVG"))  # shares the atom
        assert (engine.stats.mask_misses, engine.stats.mask_hits) == (1, 1)


class TestCacheBudgetMechanics:
    def make_trio(self, budget_bytes: int):
        budget = CacheBudget(budget_bytes)
        # Construction self-registers each cache with the budget.
        sort = _LRUCache(16, name="sort_orders", budget=budget, benefit_weight=1.0)
        mask = _LRUCache(16, name="masks", budget=budget, benefit_weight=2.0)
        result = _LRUCache(16, name="results", budget=budget, benefit_weight=4.0)
        return budget, sort, mask, result

    def test_cheapest_benefit_cache_evicts_first(self):
        budget, sort, mask, result = self.make_trio(1000)
        result.put("r", np.zeros(50, dtype=np.int64))  # 400 B
        mask.put("m", np.zeros(400, dtype=np.bool_))  # 400 B
        sort.put("s", np.zeros(50, dtype=np.int64))  # 400 B -> 1200 B total
        # Overflow resolved from the cheapest-benefit cache: sort orders.
        assert len(sort) == 0
        assert len(mask) == 1 and len(result) == 1
        assert budget.total_bytes == 800

    def test_eviction_escalates_once_cheaper_caches_are_empty(self):
        budget, sort, mask, result = self.make_trio(500)
        result.put("r", np.zeros(50, dtype=np.int64))  # 400 B
        mask.put("m", np.zeros(400, dtype=np.bool_))  # 400 B: sort empty -> masks
        assert len(mask) == 0 and len(result) == 1

    def test_oversized_insert_evicts_itself(self):
        budget, sort, mask, result = self.make_trio(100)
        sort.put("huge", np.zeros(1000, dtype=np.int64))
        assert len(sort) == 0 and sort.bytes == 0
        assert budget.total_bytes == 0

    def test_budget_is_a_hard_ceiling_under_churn(self):
        budget, sort, mask, result = self.make_trio(4096)
        rng = np.random.default_rng(0)
        caches = (sort, mask, result)
        for i in range(300):
            cache = caches[i % 3]
            cache.put(("k", i), np.zeros(int(rng.integers(1, 120)), dtype=np.int64))
            assert budget.total_bytes <= 4096
        # Byte accounting stayed exact through mixed entry-count and
        # budget-driven evictions.
        for cache in caches:
            assert cache.bytes == sum(nb for _, nb in cache._data.values())

    def test_update_in_place_adjusts_bytes(self):
        budget, sort, _mask, _result = self.make_trio(10_000)
        sort.put("k", np.zeros(100, dtype=np.int64))
        assert sort.bytes == 800
        sort.put("k", np.zeros(10, dtype=np.int64))
        assert sort.bytes == 80 and len(sort) == 1
        assert budget.total_bytes == 80


class TestEngineBudgetIntegration:
    BUDGET = 8 * 1024

    def run_traffic(self, engine: QueryEngine) -> None:
        batch = [
            query_with(value, func)
            for value in "abcdef"
            for func in ("SUM", "MEDIAN", "MAD")
        ]
        engine.execute_batch(batch)

    def test_budget_holds_and_gauges_track_contents(self):
        engine = budgeted_engine(make_relevant(1), budget=self.BUDGET)
        self.run_traffic(engine)
        assert engine.cached_bytes <= self.BUDGET
        assert engine.budget.total_bytes == engine.cached_bytes
        assert engine.stats.budget_evictions > 0
        stats = engine.stats.as_dict()
        assert stats["bytes_cached"] == engine.cached_bytes
        assert set(stats["cache_bytes"]) == {"masks", "results", "sort_orders"}
        assert sum(stats["cache_bytes"].values()) == float(stats["bytes_cached"])

    def test_unbudgeted_engine_has_no_budget_but_reports_gauges(self):
        engine = QueryEngine(
            make_relevant(1), config=EngineConfig(backend="numpy", executor="thread")
        )
        assert engine.budget is None
        self.run_traffic(engine)
        assert engine.stats.budget_evictions == 0
        assert engine.stats.bytes_cached == engine.cached_bytes > 0

    def test_clear_caches_resets_gauges_keeps_counters(self):
        engine = budgeted_engine(make_relevant(1), budget=self.BUDGET)
        self.run_traffic(engine)
        evictions = engine.stats.budget_evictions
        queries = engine.stats.queries
        engine.clear_caches()
        assert engine.cached_bytes == 0
        assert engine.stats.bytes_cached == 0
        assert all(v == 0.0 for v in engine.stats.cache_bytes.values())
        assert engine.stats.budget_evictions == evictions
        assert engine.stats.queries == queries

    def test_deterministic_eviction_identical_traffic(self):
        snapshots = []
        for _ in range(2):
            engine = budgeted_engine(make_relevant(1), budget=self.BUDGET)
            self.run_traffic(engine)
            snapshots.append(
                (
                    engine.stats.budget_evictions,
                    engine.cached_bytes,
                    engine.mask_cache_len,
                    engine.result_cache_len,
                    engine.sort_cache_len,
                )
            )
        assert snapshots[0] == snapshots[1]

    def test_results_stay_correct_under_heavy_eviction(self):
        """A budget small enough to thrash every cache never changes results."""
        table = make_relevant(2)
        expected = QueryEngine(
            table, config=EngineConfig(backend="numpy", executor="thread")
        ).execute_batch([query_with(v, "MEDIAN") for v in "abc"])
        engine = budgeted_engine(table, budget=64)  # everything evicts
        got = engine.execute_batch([query_with(v, "MEDIAN") for v in "abc"])
        for a, b in zip(got, expected):
            for name in b.column_names:
                assert a.column(name) == b.column(name)
        assert engine.cached_bytes <= 64

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(memory_budget_bytes=0).validate()
        EngineConfig(memory_budget_bytes=1).validate()
        EngineConfig(memory_budget_bytes=None).validate()


class TestDeltaSinceTolerance:
    """Satellite: ``delta_since`` must not raise on incomplete baselines."""

    def traffic(self) -> QueryEngine:
        engine = QueryEngine(
            make_relevant(3), config=EngineConfig(backend="numpy", executor="thread")
        )
        engine.execute(query_with("a", "MEDIAN"))
        engine.execute(query_with("a", "MEDIAN"))
        return engine

    def test_empty_baseline_equals_lifetime_counters(self):
        engine = self.traffic()
        delta = engine.stats.delta_since({})
        assert delta["queries"] == engine.stats.queries
        assert delta["result_hits"] == engine.stats.result_hits
        assert delta["kernel_seconds"] == engine.stats.kernel_seconds

    def test_none_baseline_is_tolerated(self):
        engine = self.traffic()
        delta = engine.stats.delta_since(None)
        assert delta["queries"] == engine.stats.queries

    def test_partial_baseline_missing_keys_treated_as_zero(self):
        engine = self.traffic()
        baseline = {"queries": 1}  # every other counter absent
        delta = engine.stats.delta_since(baseline)
        assert delta["queries"] == engine.stats.queries - 1
        assert delta["result_misses"] == engine.stats.result_misses

    def test_malformed_baseline_values_are_ignored(self):
        engine = self.traffic()
        baseline = {
            "queries": "garbage",
            "kernel_seconds": 7,  # dict counter with a scalar baseline
            "seconds_masking": {"oops": 1.0},  # scalar counter with a dict
            "result_hits": True,  # bool is not a counter baseline
        }
        delta = engine.stats.delta_since(baseline)
        assert delta["queries"] == engine.stats.queries
        assert delta["kernel_seconds"] == engine.stats.kernel_seconds
        assert delta["result_hits"] == engine.stats.result_hits

    def test_gauges_pass_through_as_current_values(self):
        engine = self.traffic()
        delta = engine.stats.delta_since({"bytes_cached": 10**9})
        assert delta["bytes_cached"] == engine.stats.bytes_cached
        assert delta["cache_bytes"] == engine.stats.cache_bytes
        assert delta["executor"] == "thread"


class TestCloseAndRegistry:
    """Satellite: ``close()`` releases backend resources, idempotently."""

    def test_close_is_idempotent_and_engine_stays_usable(self):
        engine = QueryEngine(
            make_relevant(4), config=EngineConfig(backend="numpy", executor="thread")
        )
        first = engine.execute(query_with("a"))
        engine.close()
        engine.close()
        # Resources are re-created lazily: the engine still answers queries.
        again = engine.execute(query_with("a"))
        assert again.column("feature") == first.column("feature")

    def test_close_releases_the_sqlite_connection(self):
        engine = QueryEngine(
            make_relevant(4), config=EngineConfig(backend="sqlite", executor="thread")
        )
        engine.execute(query_with("a"))
        assert engine.backend._conn is not None
        engine.close()
        assert engine.backend._conn is None

    def test_registry_finalizer_closes_engines_when_table_dies(self):
        table = make_relevant(5)
        engine = engine_for(
            table, config=EngineConfig(backend="sqlite", executor="thread")
        )
        engine.execute(query_with("a"))
        assert engine.backend._conn is not None
        del table
        gc.collect()
        assert engine._closed
        assert engine.backend._conn is None

    def test_registry_never_serves_state_keyed_to_an_old_table_version(self):
        """PR 8 satellite: after ``append_rows`` bumps ``table.version``, the
        registry hands back the same engine object but synced -- a lookup
        must never return an engine whose caches still cover the old rows."""
        table = make_relevant(6)
        config = EngineConfig(backend="numpy", executor="thread")
        engine = engine_for(table, config=config)
        stale = engine.execute(query_with("a", "COUNT"))
        assert engine._synced_version == 0
        table.append_rows(
            {"key": [0.0, 1.0], "cat": ["a", "a"], "val": [1.0, 2.0]}
        )
        again = engine_for(table, config=config)
        assert again is engine
        assert again._synced_version == table.version
        assert again._synced_rows == table.num_rows
        fresh = again.execute(query_with("a", "COUNT"))
        rebuilt = QueryEngine(table, config=config).execute(
            query_with("a", "COUNT")
        )
        assert fresh.column("feature") == rebuilt.column("feature")
        assert fresh.column("feature") != stale.column("feature")

    def test_registry_finalizer_still_fires_after_appends(self):
        """The version-sync path must not resurrect a strong table ref that
        would defeat the weakref finalizer."""
        table = make_relevant(7)
        engine = engine_for(
            table, config=EngineConfig(backend="sqlite", executor="thread")
        )
        engine.execute(query_with("a"))
        table.append_rows({"key": [2.0], "cat": ["b"], "val": [0.5]})
        engine_for(table, config=EngineConfig(backend="sqlite", executor="thread"))
        engine.execute(query_with("a"))
        del table
        gc.collect()
        assert engine._closed
        assert engine.backend._conn is None
