"""The vectorized ``group_indices`` against the historical row-at-a-time loop.

The engine relies on ``factorize_key_codes`` producing exactly the grouping
the old dictionary implementation produced: NaN keys normalised to ``None``,
numeric keys normalised to ``float``, and groups ordered by first appearance.
"""

from typing import Dict, List, Sequence

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe.column import Column, DType
from repro.dataframe.groupby import factorize_column, factorize_key_codes, group_indices
from repro.dataframe.table import Table


def group_indices_reference(table: Table, keys: Sequence[str]) -> Dict[tuple, np.ndarray]:
    """The seed's row-at-a-time implementation, kept as the behavioural spec."""
    if not keys:
        raise ValueError("group_indices needs at least one key column")
    key_columns = [table.column(k) for k in keys]
    buckets: Dict[tuple, List[int]] = {}
    n = table.num_rows
    normalised = []
    for col in key_columns:
        if col.is_numeric_like:
            normalised.append([None if np.isnan(v) else float(v) for v in col.values])
        else:
            normalised.append(list(col.values))
    for i in range(n):
        key = tuple(values[i] for values in normalised)
        buckets.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.int64) for k, v in buckets.items()}


def assert_same_grouping(table: Table, keys: Sequence[str]) -> None:
    actual = group_indices(table, keys)
    expected = group_indices_reference(table, keys)
    # Same key tuples, in the same (first appearance) order.
    assert list(actual.keys()) == list(expected.keys())
    for key in expected:
        assert actual[key].dtype == np.int64
        assert list(actual[key]) == list(expected[key])


finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


@st.composite
def mixed_tables(draw):
    n = draw(st.integers(min_value=1, max_value=60))

    def rows(strategy):
        return draw(st.lists(strategy, min_size=n, max_size=n))

    return Table(
        [
            Column(
                "num_key",
                rows(st.one_of(st.none(), st.sampled_from([0.0, 1.0, 2.0, 3.5]))),
                dtype=DType.NUMERIC,
            ),
            Column("cat_key", rows(st.sampled_from(["a", "b", None])), dtype=DType.CATEGORICAL),
            Column("bool_key", rows(st.sampled_from([True, False, None])), dtype=DType.BOOLEAN),
            Column("v", rows(finite_floats), dtype=DType.NUMERIC),
        ]
    )


class TestFactorizeMatchesReference:
    @given(table=mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_single_numeric_key(self, table):
        assert_same_grouping(table, ["num_key"])

    @given(table=mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_single_categorical_key(self, table):
        assert_same_grouping(table, ["cat_key"])

    @given(table=mixed_tables())
    @settings(max_examples=60, deadline=None)
    def test_mixed_multi_key(self, table):
        assert_same_grouping(table, ["num_key", "cat_key", "bool_key"])

    @given(table=mixed_tables())
    @settings(max_examples=30, deadline=None)
    def test_group_codes_partition_rows(self, table):
        codes, group_keys, group_rows = factorize_key_codes(table, ["num_key", "cat_key"])
        assert codes.shape == (table.num_rows,)
        assert len(group_keys) == len(group_rows)
        gathered = np.concatenate(group_rows)
        assert sorted(gathered.tolist()) == list(range(table.num_rows))
        for g, rows in enumerate(group_rows):
            assert np.all(codes[rows] == g)


class TestNormalisation:
    def test_nan_keys_normalise_to_none(self):
        table = Table.from_dict({"k": [1.0, float("nan"), 1.0, float("nan")], "v": [1, 2, 3, 4]})
        groups = group_indices(table, ["k"])
        assert set(groups.keys()) == {(1.0,), (None,)}
        assert list(groups[(None,)]) == [1, 3]

    def test_int_and_float_keys_collapse(self):
        table = Table.from_dict({"k": [1, 1.0, 2], "v": [1.0, 2.0, 3.0]})
        groups = group_indices(table, ["k"])
        assert len(groups) == 2
        assert all(isinstance(key[0], float) for key in groups)

    def test_none_categorical_key_is_its_own_group(self):
        table = Table(
            [
                Column("k", ["a", None, "a", None], dtype=DType.CATEGORICAL),
                Column("v", [1.0, 2.0, 3.0, 4.0], dtype=DType.NUMERIC),
            ]
        )
        groups = group_indices(table, ["k"])
        assert list(groups[(None,)]) == [1, 3]

    def test_mixed_type_categorical_values_fall_back(self):
        """Unorderable object mixes (str vs int) cannot use np.unique sorting."""
        table = Table(
            [
                Column("k", ["a", 1, "a", 2, None], dtype=DType.CATEGORICAL),
                Column("v", [1.0, 2.0, 3.0, 4.0, 5.0], dtype=DType.NUMERIC),
            ]
        )
        assert_same_grouping(table, ["k"])


class TestOrderingAndEdges:
    def test_groups_ordered_by_first_appearance(self):
        table = Table.from_dict({"k": ["z", "a", "m", "a", "z"], "v": [1, 2, 3, 4, 5]})
        groups = group_indices(table, ["k"])
        assert list(groups.keys()) == [("z",), ("a",), ("m",)]

    def test_rows_within_group_ascending(self):
        table = Table.from_dict({"k": ["b", "a", "b", "a", "b"], "v": [1, 2, 3, 4, 5]})
        groups = group_indices(table, ["k"])
        assert list(groups[("b",)]) == [0, 2, 4]
        assert list(groups[("a",)]) == [1, 3]

    def test_empty_table(self):
        table = Table([Column("k", [], dtype=DType.NUMERIC), Column("v", [], dtype=DType.NUMERIC)])
        assert group_indices(table, ["k"]) == {}

    def test_requires_a_key(self):
        table = Table.from_dict({"k": [1], "v": [2]})
        with pytest.raises(ValueError):
            group_indices(table, [])

    def test_factorize_column_all_missing(self):
        codes, labels = factorize_column(Column("k", [None, None], dtype=DType.CATEGORICAL))
        assert labels == [None]
        assert list(codes) == [0, 0]

    def test_factorize_column_numeric_labels_are_floats(self):
        codes, labels = factorize_column(Column("k", [2, 1, 2], dtype=DType.NUMERIC))
        assert labels == [1.0, 2.0]
        assert list(codes) == [1, 0, 1]

    def test_datetime_key_grouping(self):
        table = Table(
            [
                Column("ts", ["2023-01-01", "2023-01-02", "2023-01-01"], dtype=DType.DATETIME),
                Column("v", [1.0, 2.0, 3.0], dtype=DType.NUMERIC),
            ]
        )
        assert_same_grouping(table, ["ts"])
