"""Chi-square statistic between a non-negative feature and a class label.

Used by the ``Featuretools + Chi2 Selector`` baseline (classification only),
mirroring scikit-learn's ``chi2`` scoring function: the feature values are
treated as frequencies accumulated per class.
"""

from __future__ import annotations

import numpy as np


def chi2_statistic(feature, label) -> float:
    """Chi-square score of one feature against a categorical label.

    Negative feature values are shifted to be non-negative first (the score
    requires count-like inputs); missing values are dropped.
    """
    x = np.asarray(feature, dtype=np.float64)
    y = np.asarray(label)
    mask = ~np.isnan(x)
    x, y = x[mask], y[mask]
    if x.size == 0:
        return 0.0
    if x.min() < 0:
        x = x - x.min()
    classes = np.unique(y)
    if classes.size < 2:
        return 0.0
    observed = np.asarray([x[y == c].sum() for c in classes], dtype=np.float64)
    total = observed.sum()
    if total == 0:
        return 0.0
    class_prob = np.asarray([(y == c).mean() for c in classes], dtype=np.float64)
    expected = class_prob * total
    valid = expected > 0
    return float((((observed - expected) ** 2)[valid] / expected[valid]).sum())
