"""Unit tests for the logical query-plan IR (repro.query.plan)."""

import numpy as np
import pytest

from repro.dataframe.column import DType
from repro.dataframe.predicates import Equals, IsIn, Range, Window
from repro.query.plan import (
    AggregateSpec,
    PredicateAtom,
    QueryPlan,
    aggregate_spec,
    atoms_from_query,
)
from repro.query.query import PredicateAwareQuery, WindowConstraint


def make_query(**overrides) -> PredicateAwareQuery:
    defaults = dict(
        agg_func="avg",
        agg_attr="price",
        keys=("user",),
        predicates={"dept": "toys", "level": (1.0, 5.0)},
        predicate_dtypes={"dept": DType.CATEGORICAL, "level": DType.NUMERIC},
        feature_name="f0",
    )
    defaults.update(overrides)
    return PredicateAwareQuery(**defaults)


class TestLowering:
    def test_from_query_normalises_and_captures_everything(self):
        plan = QueryPlan.from_query(make_query(agg_func="count distinct"))
        assert plan.keys == ("user",)
        assert plan.aggregates == (AggregateSpec("COUNT_DISTINCT", "price", "f0"),)
        kinds = {(atom.kind, atom.attr) for atom in plan.atoms}
        assert kinds == {("eq", "dept"), ("range", "level")}

    def test_none_and_unbounded_constraints_are_dropped(self):
        query = make_query(
            predicates={"dept": None, "level": (None, None), "size": (2.0, None)},
            predicate_dtypes={"dept": DType.CATEGORICAL, "level": DType.NUMERIC,
                              "size": DType.NUMERIC},
        )
        plan = QueryPlan.from_query(query)
        assert [atom.attr for atom in plan.atoms] == ["size"]

    def test_unknown_aggregate_rejected_at_plan_build(self):
        with pytest.raises(KeyError):
            QueryPlan.from_query(make_query(agg_func="NOPE"))
        with pytest.raises(KeyError):
            aggregate_spec("NOPE", "price")

    def test_atoms_lower_to_the_same_predicates_as_the_query(self):
        query = make_query()
        atoms = atoms_from_query(query)
        rendered = {atom.to_predicate().to_sql() for atom in atoms}
        assert rendered == {p.to_sql() for p in query.build_predicate().predicates}
        assert isinstance(atoms[0].to_predicate(), (Equals, Range))


class TestSignatures:
    def test_predicate_signature_is_order_independent(self):
        a = make_query(predicates={"dept": "toys", "level": (1.0, 5.0)})
        b = make_query(predicates={"level": (1.0, 5.0), "dept": "toys"})
        assert (
            QueryPlan.from_query(a).predicate_signature()
            == QueryPlan.from_query(b).predicate_signature()
        )

    def test_signature_matches_historical_mask_cache_keys(self):
        plan = QueryPlan.from_query(make_query())
        signatures = {atom.signature() for atom in plan.atoms}
        assert signatures == {("eq", "dept", "toys"), ("range", "level", 1.0, 5.0)}

    def test_empty_where_clause_is_the_empty_tuple(self):
        plan = QueryPlan.from_query(make_query(predicates={}, predicate_dtypes={}))
        assert plan.predicate_signature() == ()
        assert plan.group_key() == ((), ("user",))

    def test_unhashable_constant_makes_the_plan_uncacheable(self):
        # A list constraint now lowers to a (hashable) IN atom, so the
        # uncacheable case needs a genuinely unhashable non-sequence constant.
        query = make_query(predicates={"dept": {"un": "hashable"}})
        plan = QueryPlan.from_query(query)
        assert plan.predicate_signature() is None
        assert plan.group_key() is None
        assert plan.result_key() is None
        assert plan.signature() is None

    def test_result_key_distinguishes_predicate_dtypes(self):
        """The dtype decides eq vs range, so the same constants never collide."""
        range_query = make_query(predicates={"level": (1.0, 5.0)},
                                 predicate_dtypes={"level": DType.NUMERIC})
        equals_query = make_query(predicates={"level": (1.0, 5.0)},
                                  predicate_dtypes={})  # defaults to CATEGORICAL
        assert (
            QueryPlan.from_query(range_query).result_key()
            != QueryPlan.from_query(equals_query).result_key()
        )

    def test_result_key_distinguishes_every_component(self):
        base = QueryPlan.from_query(make_query())
        for overrides in (
            dict(agg_func="SUM"),
            dict(agg_attr="qty"),
            dict(keys=("user", "item")),
            dict(feature_name="f1"),
            dict(predicates={"dept": "books"}),
        ):
            other = QueryPlan.from_query(make_query(**overrides))
            assert base.result_key() != other.result_key()


class TestPerValueColumnGrouping:
    def fused_plan(self) -> QueryPlan:
        plan = QueryPlan.from_query(make_query())
        return plan.with_aggregates(
            [
                AggregateSpec("MEDIAN", "price", "f0"),
                AggregateSpec("SUM", "qty", "f1"),
                AggregateSpec("MAD", "price", "f2"),  # interleaved attrs
                AggregateSpec("AVG", "qty", "f3"),
            ]
        )

    def test_specs_by_attr_groups_in_first_appearance_order(self):
        grouped = self.fused_plan().specs_by_attr()
        assert list(grouped) == ["price", "qty"]
        assert [(p, s.func) for p, s in grouped["price"]] == [(0, "MEDIAN"), (2, "MAD")]
        assert [(p, s.func) for p, s in grouped["qty"]] == [(1, "SUM"), (3, "AVG")]

    def test_specs_by_attr_positions_cover_every_spec_exactly_once(self):
        plan = self.fused_plan()
        positions = sorted(
            position for specs in plan.specs_by_attr().values() for position, _ in specs
        )
        assert positions == list(range(len(plan.aggregates)))

    def test_sort_key_is_the_predicate_keys_attr_triple(self):
        plan = self.fused_plan()
        signature = plan.predicate_signature()
        assert plan.sort_key("price") == (signature, ("user",), "price")
        assert plan.sort_key("price") != plan.sort_key("qty")
        # Sub-plans of a spec split keep the identical key.
        sub = plan.with_aggregates(plan.aggregates[2:])
        assert sub.sort_key("price") == plan.sort_key("price")

    def test_sort_key_none_for_uncacheable_plans(self):
        plan = QueryPlan(
            atoms=(PredicateAtom("eq", "dept", value=["unhashable"]),),
            keys=("user",),
            aggregates=(AggregateSpec("MEDIAN", "price"),),
        )
        assert plan.sort_key("price") is None


class TestFusionAndRendering:
    def test_with_aggregates_fuses_plans(self):
        plan = QueryPlan.from_query(make_query())
        fused = plan.with_aggregates(
            [plan.aggregates[0], AggregateSpec("SUM", "qty", "f1")]
        )
        assert fused.atoms == plan.atoms
        assert fused.keys == plan.keys
        assert len(fused.aggregates) == 2
        assert fused.result_key(1) == ("SUM", "qty", ("user",), plan.predicate_signature(), "f1")

    def test_plans_are_frozen(self):
        plan = QueryPlan.from_query(make_query())
        with pytest.raises(AttributeError):
            plan.keys = ("other",)

    def test_to_sql_mirrors_the_query_rendering(self):
        query = make_query()
        plan = QueryPlan.from_query(query)
        assert plan.to_sql() == query.to_sql().replace("avg(", "AVG(")

    def test_atom_to_sql(self):
        atom = PredicateAtom("eq", "dept", value="toys")
        assert atom.to_sql() == "dept = 'toys'"


class TestInAtoms:
    def test_membership_constraint_lowers_to_an_in_atom(self):
        query = make_query(predicates={"dept": ("toys", "books")})
        plan = QueryPlan.from_query(query)
        (atom,) = plan.atoms
        assert atom.kind == "in"
        assert isinstance(atom.to_predicate(), IsIn)

    def test_members_are_canonically_sorted_and_deduplicated(self):
        a = PredicateAtom("in", "dept", value=("toys", "books", "toys"))
        b = PredicateAtom("in", "dept", value=["books", "toys"])
        assert a.value == b.value
        assert a.signature() == b.signature()

    def test_signature_shape(self):
        atom = PredicateAtom("in", "dept", value=("toys", "books"))
        assert atom.signature() == ("in", "dept", atom.value)
        assert atom.signature()[2] == tuple(sorted(("toys", "books"), key=repr))

    def test_order_insensitive_mask_cache_identity_via_the_query(self):
        a = make_query(predicates={"dept": ("toys", "books")})
        b = make_query(predicates={"dept": ["books", "toys", "books"]})
        assert (
            QueryPlan.from_query(a).predicate_signature()
            == QueryPlan.from_query(b).predicate_signature()
        )

    def test_numpy_scalars_normalised_in_members(self):
        a = PredicateAtom("in", "level", value=(np.float64(3.0), np.float64(1.0)),
                          dtype=DType.NUMERIC)
        b = PredicateAtom("in", "level", value=(1.0, 3.0), dtype=DType.NUMERIC)
        assert a.signature() == b.signature()

    def test_scalar_member_wrapped_into_singleton(self):
        atom = PredicateAtom("in", "dept", value="toys")
        assert atom.value == ("toys",)

    def test_empty_membership_constraint_is_dropped(self):
        plan = QueryPlan.from_query(make_query(predicates={"dept": ()}))
        assert plan.atoms == ()

    def test_in_atom_sql(self):
        atom = PredicateAtom("in", "dept", value=("toys", "books"))
        sql = atom.to_sql()
        assert sql.startswith("dept IN (") and "'toys'" in sql and "'books'" in sql


class TestWindowAtoms:
    def test_window_constraint_lowers_to_a_window_atom(self):
        query = make_query(
            predicates={"ts": WindowConstraint(10.0, 20.0)},
            predicate_dtypes={"ts": DType.DATETIME},
        )
        plan = QueryPlan.from_query(query)
        (atom,) = plan.atoms
        assert atom.kind == "window"
        assert (atom.low, atom.high) == (10.0, 20.0)
        predicate = atom.to_predicate()
        assert isinstance(predicate, Window)

    def test_signature_shape(self):
        atom = PredicateAtom("window", "ts", low=10.0, high=20.0, dtype=DType.DATETIME)
        assert atom.signature() == ("window", "ts", 10.0, 20.0)

    def test_window_signature_distinct_from_range(self):
        window = PredicateAtom("window", "ts", low=1.0, high=5.0, dtype=DType.NUMERIC)
        bounds = PredicateAtom("range", "ts", low=1.0, high=5.0, dtype=DType.NUMERIC)
        assert window.signature() != bounds.signature()

    def test_numpy_scalar_bounds_normalised(self):
        a = PredicateAtom("window", "ts", low=np.float64(1.0), high=np.float64(5.0))
        b = PredicateAtom("window", "ts", low=1.0, high=5.0)
        assert a.signature() == b.signature()

    def test_undeclared_dtype_still_lowers_to_a_window_atom(self):
        """The marker type wins over the CATEGORICAL dtype fallback: a
        WindowConstraint without predicate_dtypes must never become an eq
        atom (whose mask would call float() on the marker and crash)."""
        query = make_query(predicates={"ts": WindowConstraint(10.0, 20.0)})
        plan = QueryPlan.from_query(query)
        (atom,) = plan.atoms
        assert atom.kind == "window"
        assert atom.dtype is DType.NUMERIC
        assert isinstance(atom.to_predicate(), Window)
        assert isinstance(
            query.build_predicate().predicates[0], Window
        )
        assert "[10, 20)" in query.describe()


class TestEqConstantNormalisation:
    def test_numpy_scalar_eq_constant_hits_the_same_signature(self):
        a = PredicateAtom("eq", "level", value=np.float64(3.0), dtype=DType.NUMERIC)
        b = PredicateAtom("eq", "level", value=3.0, dtype=DType.NUMERIC)
        assert a.signature() == b.signature() == ("eq", "level", 3.0)

    def test_numpy_str_eq_constant_hits_the_same_signature(self):
        a = PredicateAtom("eq", "dept", value=np.str_("toys"))
        b = PredicateAtom("eq", "dept", value="toys")
        assert a.signature() == b.signature()

    def test_mixed_scalar_kinds_share_the_plan_signature(self):
        a = make_query(predicates={"level": (np.float64(1.0), np.float64(5.0))},
                       predicate_dtypes={"level": DType.NUMERIC})
        b = make_query(predicates={"level": (1.0, 5.0)},
                       predicate_dtypes={"level": DType.NUMERIC})
        assert (
            QueryPlan.from_query(a).predicate_signature()
            == QueryPlan.from_query(b).predicate_signature()
        )


class TestParameterizedAggregates:
    def test_spelled_quantile_parses_into_func_and_param(self):
        spec = aggregate_spec("QUANTILE:0.25", "price", feature_name="f0")
        assert spec == AggregateSpec("QUANTILE", "price", "f0", 0.25)

    def test_spelled_top_k_parses_into_func_and_param(self):
        spec = aggregate_spec("top_k_share:3", "dept")
        assert spec.func == "TOP_K_SHARE" and spec.param == 3

    def test_plain_spec_positional_compat_and_default_param(self):
        spec = AggregateSpec("SUM", "price", "f0")
        assert spec.param is None
        assert spec == AggregateSpec("SUM", "price", "f0")

    def test_bare_parameterized_family_rejected(self):
        with pytest.raises(ValueError, match="requires a parameter"):
            aggregate_spec("QUANTILE", "price")

    def test_invalid_parameter_rejected(self):
        with pytest.raises(ValueError):
            aggregate_spec("QUANTILE:2.0", "price")

    def test_result_key_appends_param_only_when_set(self):
        plain = QueryPlan.from_query(make_query(agg_func="SUM"))
        assert len(plain.result_key()) == 5
        parameterized = QueryPlan.from_query(make_query(agg_func="QUANTILE:0.25"))
        key = parameterized.result_key()
        assert len(key) == 6 and key[-1] == 0.25
        assert key[:3] == ("QUANTILE", "price", ("user",))

    def test_result_key_distinguishes_params(self):
        q25 = QueryPlan.from_query(make_query(agg_func="QUANTILE:0.25"))
        q75 = QueryPlan.from_query(make_query(agg_func="QUANTILE:0.75"))
        assert q25.result_key() != q75.result_key()

    def test_to_sql_renders_the_parameter(self):
        plan = QueryPlan.from_query(make_query(agg_func="QUANTILE:0.25"))
        assert "QUANTILE(price, 0.25)" in plan.to_sql()
