"""Sharded parallel execution of query plans across backend workers.

The batched engine of :mod:`repro.query.engine` runs every fused plan of an
``execute_batch`` call serially on the calling thread.  TPE search traffic
hammers one engine with 50+ query templates per step, so this module adds the
two shard strategies the plan/backend seam was built to enable:

* **Plan-level scheduling** (``shard_strategy="plan"``, the default) --
  :meth:`ShardScheduler.run_fused_plans` partitions the batch's pending fused
  plans across a thread pool.  Each worker slot holds its **own backend
  instance** over the shared table (mandatory for backends that own storage,
  e.g. one sqlite connection per worker; harmless for the stateless
  in-process backends), and plans are assigned longest-processing-time-first
  by estimated cost so one heavy plan cannot serialise the batch.
* **Group-range sharding** (``shard_strategy="group"``) -- for a single
  heavy plan, :class:`GroupRangeShards` splits the factorized group-code
  space ``[0, n_groups)`` into contiguous ranges and the grouped-aggregation
  kernels run once per range, concatenating the per-group results in code
  order.  Because every group lies entirely inside one shard (groups never
  straddle a range boundary) and boolean-mask row selection preserves the
  original row order within each group, every kernel sees exactly the rows,
  in exactly the accumulation order, the unsharded kernel sees -- so the
  results are **bit-for-bit identical** for any shard count, preserving the
  accumulation-order contract of :mod:`repro.dataframe.aggregates`.

Determinism contract (pinned by ``tests/query/test_sharding_equivalence.py``):
sharded execution returns element-wise identical tables to serial execution
for every backend and shard count.  For plan-level scheduling this holds
because all engine-shared state (predicate masks, group indexes, and their
statistics) is prepared **serially on the coordinator thread** via
``ExecutionBackend.plan_context`` before any worker runs, in the same fused
order serial execution uses; workers only aggregate over the prepared
(immutable) contexts.  Statistics counters therefore book identical totals
at every worker count.

Threads, not processes: the numpy kernels spend their time inside
GIL-releasing array primitives and the sqlite backend blocks inside the C
library, so a thread pool parallelises both without any serialisation cost
on the table.  Worker count comes from ``EngineConfig(num_workers=...)``,
defaulting to ``$REPRO_ENGINE_WORKERS`` or 1 (fully serial; the scheduler
then never creates a pool).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataframe.grouped_kernels import GroupedAggregator
from repro.query.backends.base import ExecutionBackend, make_backend
from repro.query.plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dataframe.table import Table
    from repro.query.engine import QueryEngine

#: Environment variable overriding the default worker count (used by the CI
#: sharded matrix slot to replay the query suites with ``num_workers=4``).
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"

#: The shard strategies: partition fused plans across workers ("plan"),
#: split one plan's group-code space into contiguous ranges ("group"), or
#: decide per batch from prefetched context sizes ("auto").
SHARD_STRATEGIES = ("plan", "group", "auto")

#: Environment variable overriding the default shard strategy (used by the CI
#: auto-strategy matrix slot to replay the query suites with
#: ``shard_strategy="auto"``).
SHARD_STRATEGY_ENV_VAR = "REPRO_ENGINE_SHARD_STRATEGY"

#: ``auto`` strategy threshold: a single plan whose estimated cost (filtered
#: rows x aggregate count) reaches this goes group-range; below it, plan-level
#: scheduling (i.e. serial for a single plan) wins because the per-range
#: fan-out overhead would dominate.
AUTO_HEAVY_PLAN_COST = 100_000.0


def resolve_auto_strategy(n_plans: int, plan_cost: float) -> str:
    """The ``auto`` strategy's deterministic chooser.

    Wide fused batches (``n_plans > 1``) go plan-level -- whole plans are the
    natural unit of parallelism and group-range splitting each would thrash
    the pool.  A single plan goes group-range only when its prefetched cost
    (:meth:`ShardScheduler._plan_cost`, filtered rows x aggregates) reaches
    :data:`AUTO_HEAVY_PLAN_COST`; light single plans stay serial.  Pure
    function of its two inputs, so the choice is unit-testable and identical
    at every worker count.
    """
    if n_plans > 1:
        return "plan"
    if plan_cost >= AUTO_HEAVY_PLAN_COST:
        return "group"
    return "plan"

#: Environment variable overriding the default executor kind (used by the CI
#: process-executor matrix slot to replay the query suites across processes).
EXECUTOR_ENV_VAR = "REPRO_ENGINE_EXECUTOR"

#: The two executor kinds: a thread pool sharing the engine's address space
#: ("thread", this module) or a process pool over shared-memory tables
#: ("process", :mod:`repro.query.procpool`).
EXECUTORS = ("thread", "process")


def default_worker_count() -> int:
    """The process-wide default worker count: ``$REPRO_ENGINE_WORKERS`` or 1.

    Raises ``ValueError`` on a malformed or non-positive value -- a silently
    ignored typo would run the whole process serially.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"${WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"${WORKERS_ENV_VAR} must be a positive integer, got {raw!r}")
    return workers


def default_shard_strategy() -> str:
    """The process-wide default shard strategy:
    ``$REPRO_ENGINE_SHARD_STRATEGY`` or ``"plan"``.

    Raises ``ValueError`` on an unknown value -- eagerly, like the executor
    and worker-count defaults, so a typo'd environment surfaces at config
    resolution instead of silently falling back to plan-level scheduling.
    """
    raw = os.environ.get(SHARD_STRATEGY_ENV_VAR, "").strip()
    if not raw:
        return "plan"
    if raw not in SHARD_STRATEGIES:
        raise ValueError(
            f"${SHARD_STRATEGY_ENV_VAR} names an unknown shard strategy {raw!r}; "
            f"expected one of {SHARD_STRATEGIES}"
        )
    return raw


def default_executor_name() -> str:
    """The process-wide default executor: ``$REPRO_ENGINE_EXECUTOR`` or thread.

    Raises ``ValueError`` on an unknown value -- eagerly, like the backend and
    worker-count defaults, so a typo'd environment surfaces at config
    resolution instead of silently running single-address-space.
    """
    raw = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    if not raw:
        return "thread"
    if raw not in EXECUTORS:
        raise ValueError(
            f"${EXECUTOR_ENV_VAR} names an unknown executor {raw!r}; "
            f"expected one of {EXECUTORS}"
        )
    return raw


def split_ranges(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``range(n)``, sizes within 1.

    At most ``n`` non-empty ranges are produced, so a group count smaller
    than the worker count simply yields fewer shards (never empty ones).
    """
    if n <= 0:
        return [(0, 0)]
    shards = max(1, min(int(shards), n))
    return [(i * n // shards, (i + 1) * n // shards) for i in range(shards)]


class GroupRangeShards:
    """Per-shard row selections of one plan's filtered grouping.

    Splits compact group codes (every code in ``[0, n_groups)``) into the
    contiguous code ranges of :func:`split_ranges` and materialises, per
    range, the selected row positions and the range-local codes.  Row
    selection uses an ascending boolean mask, so within every group the rows
    keep their original relative order -- the property the bit-identity
    contract of the kernels rests on.  The selections are attribute
    independent and shared across all aggregates of one plan.
    """

    def __init__(self, codes: np.ndarray, n_groups: int, num_shards: int):
        self.n_groups = int(n_groups)
        #: The plan's full compact codes (all ranges); kept so a prefetched
        #: full-table sort order can be sliced into per-range orders.
        self.all_codes = np.asarray(codes, dtype=np.int64)
        self.ranges = split_ranges(self.n_groups, num_shards)
        self.rows: List[np.ndarray] = []
        self.codes: List[np.ndarray] = []
        for lo, hi in self.ranges:
            selected = np.flatnonzero((codes >= lo) & (codes < hi))
            self.rows.append(selected)
            self.codes.append(codes[selected] - lo)

    def __len__(self) -> int:
        return len(self.ranges)


class ShardedGroupedAggregator:
    """Drop-in for :class:`GroupedAggregator` that computes per code range.

    Holds one :class:`GroupedAggregator` per shard (so each shard reuses its
    own sorted segments and bincount intermediates across the plan's
    aggregates, exactly like the unsharded aggregator does globally) and
    concatenates per-range results in code order -- which *is* group order,
    because the ranges partition ``[0, n_groups)`` contiguously.

    With an *order_cache* (the engine's shared sort-order cache accessor),
    the plan's **full** filtered lexsort order is resolved once and sliced
    into per-range local orders (:meth:`_slice_full_order`) instead of each
    shard paying its own lexsort.  Slicing is bit-neutral: the full order
    sorts by (code, value, original row) and the code ranges are contiguous,
    so each range's slice, re-indexed into range-local row positions, is
    exactly the order the shard's own stable lexsort would produce.
    """

    def __init__(
        self,
        shards: GroupRangeShards,
        values: np.ndarray,
        scheduler: "ShardScheduler",
        order_cache=None,
        mad_order_cache=None,
    ):
        self._scheduler = scheduler
        self._shards = shards
        self._values = np.asarray(values, dtype=np.float64)
        self._order_cache = order_cache
        self._mad_order_cache = mad_order_cache
        self._orders: Optional[List[np.ndarray]] = None
        self._mad_orders: Optional[List[np.ndarray]] = None
        self._order_lock = threading.Lock()
        self._parts = [
            GroupedAggregator(codes, values[rows], hi - lo)
            for codes, rows, (lo, hi) in zip(shards.codes, shards.rows, shards.ranges)
        ]
        if order_cache is not None:
            for i, part in enumerate(self._parts):
                # Each part's first sort-based kernel resolves the shared
                # full order (once, lock-protected) and reads its own slice;
                # the part's local compute thunk is ignored on purpose.
                part.order_cache = lambda _compute, i=i: self._part_orders()[i]
        if mad_order_cache is not None:
            for i, part in enumerate(self._parts):
                # Same scheme for MAD's deviation order: one engine-cache
                # consultation per (plan, value column), sliced per range.
                part.mad_order_cache = lambda _compute, i=i: self._mad_part_orders()[i]

    def resolve_sort_order(self) -> None:
        """Resolve + slice the shared full order now (timing-neutral warm-up,
        mirroring :meth:`GroupedAggregator.resolve_sort_order`).  Without an
        order cache the parts sort locally inside their own kernels, exactly
        as before."""
        if self._order_cache is not None:
            self._part_orders()

    def resolve_mad_order(self) -> None:
        """Resolve + slice MAD's shared deviation order (timing-neutral
        warm-up, mirroring :meth:`GroupedAggregator.resolve_mad_order`)."""
        if self._mad_order_cache is not None:
            self._mad_part_orders()

    def _part_orders(self) -> List[np.ndarray]:
        """Per-range local sort orders, resolved once for all parts.

        The lock keeps the engine-cache consultation to exactly one per
        (plan, value column) even though the parts run concurrently on the
        shard workers -- so ``sort_hits`` / ``sort_misses`` book the same
        totals at every worker count.
        """
        orders = self._orders
        if orders is None:
            with self._order_lock:
                if self._orders is None:
                    self._orders = self._slice_full_order()
                orders = self._orders
        return orders

    def _mad_part_orders(self) -> List[np.ndarray]:
        """Per-range local MAD deviation orders (same contract as
        :meth:`_part_orders`: exactly one engine-cache consultation)."""
        orders = self._mad_orders
        if orders is None:
            with self._order_lock:
                if self._mad_orders is None:
                    self._mad_orders = self._slice_full_mad_order()
                orders = self._mad_orders
        return orders

    def _stripped(self) -> Tuple[np.ndarray, np.ndarray]:
        """The plan's NaN-stripped (codes, values) over all ranges."""
        codes, values = self._shards.all_codes, self._values
        valid = ~np.isnan(values)
        if valid.all():
            return codes, values
        return codes[valid], values[valid]

    def _slice_full_order(self) -> List[np.ndarray]:
        scodes, svalues = self._stripped()
        full = self._order_cache(lambda: np.lexsort((svalues, scodes)))
        return self._slice_by_range(full, scodes)

    def _slice_full_mad_order(self) -> List[np.ndarray]:
        """Resolve the full deviation order and slice it per range.

        The deviations |x - group median| are computed once globally from a
        helper aggregator seeded with the (cached) full main order -- no
        extra lexsort.  They are bit-identical to what each part computes
        locally, because every group lies wholly inside one range, so the
        sliced order is exactly the order a part's own deviation lexsort
        would produce.
        """
        scodes, svalues = self._stripped()
        full_main = self._order_cache(lambda: np.lexsort((svalues, scodes)))
        helper = GroupedAggregator(
            scodes, svalues, self._shards.n_groups, sort_order=full_main
        )
        deviations = helper.mad_deviations()
        full = self._mad_order_cache(lambda: np.lexsort((deviations, scodes)))
        return self._slice_by_range(full, scodes)

    def _slice_by_range(self, full: np.ndarray, scodes: np.ndarray) -> List[np.ndarray]:
        counts = np.bincount(scodes, minlength=self._shards.n_groups)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        orders: List[np.ndarray] = []
        for lo, hi in self._shards.ranges:
            chunk = full[bounds[lo]:bounds[hi]]
            # The chunk holds exactly this range's stripped-row positions;
            # sorting it recovers them in ascending order (cheaper than
            # rescanning scodes per range), and mapping the chunk through
            # them yields range-local stripped indices while preserving the
            # stable tie-break order.
            in_range = np.sort(chunk)
            orders.append(np.searchsorted(in_range, chunk))
        return orders

    def compute(self, name: str, param=None) -> np.ndarray:
        results = self._scheduler.map_shards(
            [(lambda part=part: part.compute(name, param)) for part in self._parts]
        )
        if len(results) == 1:
            return results[0]
        return np.concatenate(results)


class ShardScheduler:
    """Owns one engine's worker pool and per-worker backend instances.

    The scheduler is derived state: :meth:`clear` (called by
    ``QueryEngine.clear_caches``) drops the worker backends (and their
    private materialisations) and the thread pool; both are re-created
    lazily.  With ``num_workers == 1`` no pool ever exists and every call
    degenerates to the serial path.
    """

    def __init__(self, engine: "QueryEngine", num_workers: int, shard_strategy: str):
        self.engine = engine
        self.num_workers = int(num_workers)
        self.shard_strategy = shard_strategy
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker_backends: Dict[int, ExecutionBackend] = {}
        self._lock = threading.Lock()
        #: ``auto`` strategy state: set (thread-locally, on the coordinator
        #: thread driving the plan) while a single heavy plan runs in
        #: group-range mode, so :meth:`group_range_active` answers True for
        #: exactly that plan's kernels and nothing else.
        self._auto_local = threading.local()

    # ------------------------------------------------------------------
    # Activation predicates
    # ------------------------------------------------------------------
    def plan_parallel_active(self, n_plans: int) -> bool:
        """Whether a batch of *n_plans* fused plans is scheduled on the pool."""
        return (
            self.shard_strategy in ("plan", "auto")
            and self.num_workers > 1
            and n_plans > 1
        )

    def group_range_active(self, n_groups: int) -> bool:
        """Whether one plan's *n_groups* groups are split into code ranges."""
        if self.num_workers <= 1 or n_groups <= 1:
            return False
        if self.shard_strategy == "group":
            return True
        return self.shard_strategy == "auto" and getattr(
            self._auto_local, "group", False
        )

    # ------------------------------------------------------------------
    # Worker resources
    # ------------------------------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers, thread_name_prefix="repro-shard"
                )
            return self._pool

    def worker_backend(self, slot: int) -> ExecutionBackend:
        """The backend instance owned by worker *slot* (created lazily).

        Every slot gets its own instance: storage-owning backends (sqlite)
        cannot share a connection across threads, and private per-plan state
        (``last_sql``) must never interleave between workers.
        """
        with self._lock:
            backend = self._worker_backends.get(slot)
            if backend is None:
                backend = make_backend(self.engine.backend_name)
                backend.bind(self.engine.table, engine=self.engine)
                self._worker_backends[slot] = backend
            return backend

    @property
    def worker_backends(self) -> List[ExecutionBackend]:
        """Snapshot of the live per-slot backend instances (observability)."""
        with self._lock:
            return list(self._worker_backends.values())

    def clear(self) -> None:
        """Drop worker backends and the pool (both re-created on demand)."""
        with self._lock:
            workers = list(self._worker_backends.values())
            self._worker_backends.clear()
            pool, self._pool = self._pool, None
        for backend in workers:
            backend.clear()
        if pool is not None:
            pool.shutdown(wait=True)

    def refresh(self, old_rows: int) -> None:
        """Propagate a table append to every live worker backend.

        Each per-slot backend instance owns its own materialisation of the
        (now extended) shared table, so each one gets the same
        :meth:`ExecutionBackend.refresh` call the engine's primary backend
        receives -- sqlite workers ``INSERT`` the appended slice, in-process
        workers drop nothing (they read the table lazily).  The pool itself
        is untouched: threads hold no table state.
        """
        with self._lock:
            workers = list(self._worker_backends.values())
        for backend in workers:
            backend.refresh(old_rows)

    def close(self) -> None:
        """Release every scheduler-owned OS resource (pool, worker backends).

        For the thread scheduler this is :meth:`clear`; the process scheduler
        (:class:`repro.query.procpool.ProcessShardScheduler`) overrides it to
        also shut its process pool down and unlink the shared-memory
        segments.  Idempotent, and safe after the engine's table has died.
        """
        self.clear()

    # ------------------------------------------------------------------
    # Plan-level scheduling
    # ------------------------------------------------------------------
    def run_fused_plans(self, plans: Sequence[QueryPlan]) -> List[List["Table"]]:
        """Execute fused plans, serial or sharded; one table list per plan.

        The parallel path first computes every plan's execution context
        serially on this (the coordinator) thread via
        ``ExecutionBackend.plan_context`` -- all mutation of engine-shared
        state (mask cache, group index, stats) happens there, in fused
        order, so counters and caches book exactly what serial execution
        books.  Workers then aggregate over the immutable contexts.
        """
        engine = self.engine
        stats = engine.stats
        plans = list(plans)
        if not self.plan_parallel_active(len(plans)):
            results = []
            for plan in plans:
                start = time.perf_counter()
                results.append(self._run_single_plan(plan))
                stats.add_split(
                    "backend_seconds", engine.backend_name, time.perf_counter() - start
                )
            return results

        contexts = [engine.backend.plan_context(plan) for plan in plans]
        units = self._split_units(plans, contexts)
        assignments = self._assign_units(units)
        executor = self._executor()
        start = time.perf_counter()
        futures = [
            executor.submit(self._run_chunk, slot, plans, contexts, chunk)
            for slot, chunk in enumerate(assignments)
            if chunk
        ]
        chunk_results = [future.result() for future in futures]
        stats.bump(seconds_sharding=time.perf_counter() - start, sharded_batches=1)
        results: List[List[Optional["Table"]]] = [
            [None] * len(plan.aggregates) for plan in plans
        ]
        for chunk in chunk_results:
            for (i, lo, _hi, _cost), tables in chunk:
                for offset, table in enumerate(tables):
                    results[i][lo + offset] = table
        return results  # type: ignore[return-value]

    def _run_single_plan(self, plan: QueryPlan) -> List["Table"]:
        """Run one plan serially -- or, under ``auto``, group-range sharded.

        The ``auto`` strategy prefetches the plan's context (on this, the
        coordinator thread, like the plan-parallel path does) so the chooser
        sees the *filtered* size, then flips the thread-local group-range
        flag for heavy plans only.  The flag is scoped to this call: the
        backend's kernels consult :meth:`group_range_active` on this same
        thread while the plan runs, and nothing else ever observes it.
        """
        engine = self.engine
        if self.shard_strategy != "auto" or self.num_workers <= 1:
            return engine.backend.run_plan(plan)
        context = engine.backend.plan_context(plan)
        choice = resolve_auto_strategy(1, self._plan_cost(plan, context))
        if choice == "group":
            self._auto_local.group = True
        try:
            if context is None:
                return engine.backend.run_plan(plan)
            return engine.backend.run_plan_with_context(plan, context)
        finally:
            self._auto_local.group = False

    def _split_units(
        self, plans: Sequence[QueryPlan], contexts: Sequence[object]
    ) -> List[Tuple[int, int, int, float]]:
        """Break fused plans into ``(plan, spec range)`` scheduling units.

        The unit of work defaults to a whole fused plan (its aggregates then
        share prepared per-attribute state), but a plan whose estimated cost
        exceeds the ideal per-worker load is split into contiguous
        aggregate-spec ranges over the *same* prefetched context -- without
        this, one heavy fused plan (e.g. the no-predicate plan of a template
        batch) bounds the whole batch's makespan.  Exactness is unaffected:
        every spec is computed from the same immutable context either way.
        Returns ``(plan index, spec lo, spec hi, estimated cost)`` tuples.
        """
        costs = [
            self._plan_cost(plan, context) for plan, context in zip(plans, contexts)
        ]
        target = sum(costs) / self.num_workers
        units: List[Tuple[int, int, int, float]] = []
        for i, (plan, cost) in enumerate(zip(plans, costs)):
            n_specs = len(plan.aggregates)
            pieces = 1
            if target > 0.0 and cost > target:
                pieces = min(n_specs, -(-int(cost) // max(1, int(target))))
            for lo, hi in split_ranges(n_specs, pieces):
                units.append((i, lo, hi, cost * (hi - lo) / max(1, n_specs)))
        return units

    def _assign_units(
        self, units: Sequence[Tuple[int, int, int, float]]
    ) -> List[List[Tuple[int, int, int, float]]]:
        """Longest-processing-time-first assignment of units to worker slots.

        Deterministic: ties break on the lower plan index, then the lower
        spec offset, then the lower slot id, so the same batch always
        schedules -- and books its statistics -- identically.
        """
        slots = min(self.num_workers, len(units))
        order = sorted(units, key=lambda unit: (-unit[3], unit[0], unit[1]))
        assignments: List[List[Tuple[int, int, int, float]]] = [[] for _ in range(slots)]
        loads = [0.0] * slots
        for unit in order:
            slot = min(range(slots), key=lambda s: (loads[s], s))
            assignments[slot].append(unit)
            loads[slot] += unit[3]
        return assignments

    def _plan_cost(self, plan: QueryPlan, context: object) -> float:
        """Estimated plan cost: filtered row count x aggregate count.

        The filtered size comes from the prefetched context; backends that
        own their filtering (no context) are charged the full table.
        """
        n_aggregates = max(1, len(plan.aggregates))
        if isinstance(context, dict):
            row_idx = context.get("row_idx")
            rows = len(row_idx) if row_idx is not None else self.engine.table.num_rows
        else:
            rows = self.engine.table.num_rows
        # +1 keeps empty-filter plans from looking free (they still pay the
        # per-plan dispatch and output assembly).
        return float(rows * n_aggregates + 1)

    def _run_chunk(
        self,
        slot: int,
        plans: Sequence[QueryPlan],
        contexts: Sequence[object],
        chunk: Sequence[Tuple[int, int, int, float]],
    ):
        engine = self.engine
        backend = self.worker_backend(slot)
        start = time.perf_counter()
        results = []
        for unit in chunk:
            i, lo, hi, _cost = unit
            plan, context = plans[i], contexts[i]
            if hi - lo != len(plan.aggregates):
                plan = plan.with_aggregates(plan.aggregates[lo:hi])
            if context is None:
                results.append((unit, backend.run_plan(plan)))
            else:
                results.append((unit, backend.run_plan_with_context(plan, context)))
        elapsed = time.perf_counter() - start
        engine.stats.add_split("backend_seconds", engine.backend_name, elapsed)
        engine.stats.add_split("shard_seconds", f"w{slot}", elapsed)
        engine.stats.bump(plan_shards=len(results))
        return results

    # ------------------------------------------------------------------
    # Group-range fan-out
    # ------------------------------------------------------------------
    def map_shards(self, thunks: Sequence[Callable[[], np.ndarray]]) -> List[np.ndarray]:
        """Run one callable per group-range shard on the pool, in order."""
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        stats = self.engine.stats
        executor = self._executor()
        start = time.perf_counter()
        futures = [
            executor.submit(self._run_shard, i, thunk) for i, thunk in enumerate(thunks)
        ]
        results = [future.result() for future in futures]
        stats.bump(
            seconds_sharding=time.perf_counter() - start, group_shards=len(thunks)
        )
        return results

    def _run_shard(self, i: int, thunk: Callable[[], np.ndarray]) -> np.ndarray:
        start = time.perf_counter()
        result = thunk()
        self.engine.stats.add_split(
            "shard_seconds", f"g{i}", time.perf_counter() - start
        )
        return result
