"""Cache behaviour of the query engine: hit/miss counters, LRU bounds, and
that engines are strictly bound to one table (no stale masks across tables).

Mask-cache and group-index counters are a property of the in-process
execution layer, so those tests pin ``backend="numpy"`` explicitly (the
sqlite backend owns its own filtering and never touches them); result-cache,
registry and table-binding semantics live in the engine itself and run on
whatever backend the process default selects (the CI backend matrix replays
this file per backend via ``$REPRO_ENGINE_BACKEND``).
"""

import numpy as np
import pytest

from repro.core.feataug import FeatAugResult
from repro.core.sql_generation import GeneratedQuery
from repro.dataframe.column import Column, DType
from repro.dataframe.table import Table
from repro.query.engine import EngineConfig, QueryEngine, engine_for
from repro.query.executor import execute_query, execute_query_naive
from repro.query.query import PredicateAwareQuery


def numpy_engine(table: Table, **config_overrides) -> QueryEngine:
    """An engine pinned to the in-process numpy backend (mask-cache tests).

    The thread executor is pinned too: under ``executor="process"`` the
    plan-strategy workers own masking and sorting, so coordinator-side mask /
    sort counters stay at zero by design and these pins would not hold (the
    CI executor matrix slot replays this file with
    ``$REPRO_ENGINE_EXECUTOR=process``).
    """
    config_overrides.setdefault("executor", "thread")
    return QueryEngine(table, config=EngineConfig(backend="numpy", **config_overrides))


def make_relevant(seed: int) -> Table:
    rng = np.random.default_rng(seed)
    n = 60
    return Table(
        [
            Column("key", rng.integers(0, 6, size=n).astype(np.float64), dtype=DType.NUMERIC),
            Column(
                "cat",
                [str(v) for v in rng.choice(list("abcdef"), size=n)],
                dtype=DType.CATEGORICAL,
            ),
            Column("val", rng.normal(size=n), dtype=DType.NUMERIC),
        ]
    )


def query_with(value: str, agg_func: str = "SUM") -> PredicateAwareQuery:
    return PredicateAwareQuery(
        agg_func, "val", ("key",), {"cat": value}, {"cat": DType.CATEGORICAL}
    )


class TestMaskCache:
    def test_shared_atom_hits(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute(query_with("a", "SUM"))
        assert (engine.stats.mask_misses, engine.stats.mask_hits) == (1, 0)
        engine.execute(query_with("a", "AVG"))
        assert (engine.stats.mask_misses, engine.stats.mask_hits) == (1, 1)
        engine.execute(query_with("b", "SUM"))
        assert (engine.stats.mask_misses, engine.stats.mask_hits) == (2, 1)

    def test_conjunction_reuses_atom_masks(self):
        engine = numpy_engine(make_relevant(0))
        both = PredicateAwareQuery(
            "SUM",
            "val",
            ("key",),
            {"cat": "a", "val": (0.0, None)},
            {"cat": DType.CATEGORICAL, "val": DType.NUMERIC},
        )
        engine.execute(both)
        assert engine.stats.mask_misses == 2
        # A query sharing only one atom still hits the cache for it.
        engine.execute(query_with("a", "AVG"))
        assert engine.stats.mask_misses == 2
        assert engine.stats.mask_hits == 1

    def test_lru_eviction_bound(self):
        engine = numpy_engine(make_relevant(0), mask_cache_size=4)
        for i in range(10):
            engine.execute(query_with(f"value-{i}"))
        assert engine.mask_cache_len <= 4
        assert engine.stats.mask_evictions == 6
        assert engine.stats.mask_misses == 10

    def test_group_index_built_once_per_key_combination(self):
        engine = numpy_engine(make_relevant(0))
        for value in "abc":
            engine.execute(query_with(value))
        assert engine.stats.group_index_builds == 1
        assert engine.stats.group_index_reuses == 2


class TestResultCache:
    def test_identical_query_served_from_cache(self):
        engine = QueryEngine(make_relevant(0))
        first = engine.execute(query_with("a"))
        second = engine.execute(query_with("a"))
        assert second is first
        assert engine.stats.result_hits == 1
        assert engine.stats.result_misses == 1

    def test_result_cache_is_bounded(self):
        engine = QueryEngine(make_relevant(0), result_cache_size=3)
        for i in range(8):
            engine.execute(query_with(f"value-{i}"))
        assert engine.result_cache_len <= 3

    def test_batch_reuses_cached_results(self):
        engine = QueryEngine(make_relevant(0))
        engine.execute(query_with("a", "SUM"))
        results = engine.execute_batch([query_with("a", "SUM"), query_with("a", "AVG")])
        assert engine.stats.result_hits == 1
        for query, result in zip([query_with("a", "SUM"), query_with("a", "AVG")], results):
            naive = execute_query_naive(query, engine.table)
            # Tolerant comparison: the default backend may re-accumulate
            # floats in its own order (see the equivalence suite's bars).
            assert np.allclose(
                result.column("feature").values, naive.column("feature").values,
                rtol=0.0, atol=1e-9, equal_nan=True,
            )

    def test_result_key_distinguishes_predicate_dtypes(self):
        """Same constants, different predicate dtype => different queries.

        A numeric-dtyped tuple means a Range, a categorical-dtyped tuple
        means IN-list membership.  Their signatures are structurally
        distinct (``("in", ...)`` vs a plain bound pair), so the result
        cache can never hand one the other's cached table.
        """
        engine = QueryEngine(make_relevant(0))
        range_query = PredicateAwareQuery(
            "SUM", "val", ("key",), {"val": (-10.0, 10.0)}, {"val": DType.NUMERIC}
        )
        engine.execute(range_query)
        in_query = PredicateAwareQuery(
            "SUM", "val", ("key",), {"val": (-10.0, 10.0)}  # dtype defaults to CATEGORICAL
        )
        assert range_query.signature() != in_query.signature()
        # The IN query keeps only rows whose value is exactly -10 or 10 --
        # nothing like the range's result; it must miss the cache.
        result = engine.execute(in_query)
        assert engine.stats.result_hits == 0
        naive = execute_query_naive(in_query, engine.table)
        assert np.allclose(
            result.column("feature").values, naive.column("feature").values,
            rtol=0.0, atol=1e-9, equal_nan=True,
        )

    def test_clear_caches(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute(query_with("a"))
        engine.clear_caches()
        assert engine.mask_cache_len == 0
        assert engine.result_cache_len == 0
        engine.execute(query_with("a"))
        assert engine.stats.mask_misses == 2


class TestSortOrderCache:
    """Semantics of the shared sort-order cache (numpy backend only: the
    python backend's per-group loop and the sqlite backend's generated SQL
    never touch the engine's lexsort orders)."""

    def test_one_miss_per_fused_plan_and_value_column(self):
        engine = numpy_engine(make_relevant(0))
        # One fused plan (same predicate, keys): the order-statistics
        # kernels share a single lexsort -> exactly one miss, no hits.
        engine.execute_batch(
            [query_with("a", "MEDIAN"), query_with("a", "MODE"), query_with("a", "MIN")]
        )
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (1, 0)
        assert engine.sort_cache_len == 1

    def test_hits_across_batches_of_one_template(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute_batch([query_with("a", "MEDIAN"), query_with("b", "MEDIAN")])
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (2, 0)
        # New functions, same (predicate, keys, value column) triples: the
        # result cache misses but the main orders come from the sort cache.
        # MAD's deviation order over predicate "a" is new -- one fresh miss
        # under the (sort key, MEDIAN) entry.
        engine.execute_batch([query_with("a", "MAD"), query_with("b", "ENTROPY")])
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (3, 2)

    def test_mad_deviation_order_is_cached_per_sort_key(self):
        engine = numpy_engine(make_relevant(0), result_cache_size=1)
        # A cold MAD pays two sorts: the main (value, code) order plus the
        # deviation order, cached under sort_key + ("MEDIAN",).
        engine.execute(query_with("a", "MAD"))
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (2, 0)
        assert engine.sort_cache_len == 2
        # A different predicate shares neither order.
        engine.execute(query_with("b", "MAD"))
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (4, 0)
        assert engine.sort_cache_len == 4
        # The one-entry result cache has evicted query "a": re-running it
        # misses the result cache but hits both cached orders.
        engine.execute(query_with("a", "MAD"))
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (4, 2)
        assert engine.stats.result_misses == 3

    def test_misses_across_different_masks_and_keys(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute(query_with("a", "MEDIAN"))
        engine.execute(query_with("b", "MEDIAN"))  # different predicate
        engine.execute(  # different group-by keys
            PredicateAwareQuery(
                "MEDIAN", "val", ("key", "cat"), {"cat": "a"}, {"cat": DType.CATEGORICAL}
            )
        )
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (3, 0)
        assert engine.sort_cache_len == 3

    def test_accumulation_only_plans_never_consult_the_cache(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute_batch([query_with("a", "SUM"), query_with("a", "AVG")])
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (0, 0)
        assert engine.sort_cache_len == 0

    def test_repeated_identical_queries_hit_the_result_cache_first(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute(query_with("a", "MEDIAN"))
        engine.execute(query_with("a", "MEDIAN"))  # result hit: no sort traffic
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (1, 0)

    def test_cache_is_bounded_lru(self):
        engine = numpy_engine(make_relevant(0), sort_cache_size=2)
        for value in "abcd":
            engine.execute(query_with(value, "MEDIAN"))
        assert engine.sort_cache_len <= 2
        assert engine.stats.sort_misses == 4

    def test_disabled_cache_recomputes_per_plan(self):
        engine = numpy_engine(make_relevant(0), sort_cache_size=0)
        engine.execute(query_with("a", "MEDIAN"))
        # MAD re-sorts the main order (nothing is cached) and additionally
        # pays its deviation sort: two misses for the one query.
        engine.execute(query_with("a", "MAD"))
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (3, 0)
        assert engine.sort_cache_len == 0
        # seconds_sorting books the per-plan lexsorts either way.
        assert engine.stats.seconds_sorting > 0.0

    def test_clear_caches_drops_orders_but_keeps_counters(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute(query_with("a", "MEDIAN"))
        before = engine.stats.as_dict()
        assert before["bytes_cached"] > 0
        engine.clear_caches()
        assert engine.sort_cache_len == 0
        # Lifetime counters survive; only the byte *gauges* drop to zero
        # with the now-empty caches.
        after = engine.stats.as_dict()
        gauges = {"bytes_cached", "cache_bytes"}
        assert {k: v for k, v in after.items() if k not in gauges} == {
            k: v for k, v in before.items() if k not in gauges
        }
        assert after["bytes_cached"] == 0
        assert all(v == 0.0 for v in after["cache_bytes"].values())
        # Cold orders: MAD misses both its main and its deviation order.
        engine.execute(query_with("a", "MAD"))
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (3, 0)

    def test_reset_composes_clear_and_counter_reset(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute_batch([query_with("a", "MEDIAN"), query_with("a", "MAD")])
        engine.execute(query_with("a", "MODE"))
        assert engine.stats.sort_hits > 0
        engine.reset()
        assert engine.sort_cache_len == 0
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (0, 0)
        assert engine.stats.seconds_sorting == 0.0
        # Post-reset traffic replays a fresh engine's trajectory.
        engine.execute(query_with("a", "MEDIAN"))
        assert (engine.stats.sort_misses, engine.stats.sort_hits) == (1, 0)

    def test_counters_identical_serial_vs_sharded(self):
        """Sort-cache traffic obeys the shard-determinism contract: the
        spec-split units of a heavy fused plan and the group-range shards
        consult the engine cache exactly once per (plan, value column)."""
        table = make_relevant(0)
        batch = [
            query_with(value, func)
            for value in "ab"
            for func in ("MEDIAN", "MAD", "MODE", "ENTROPY", "MIN", "MAX", "SUM")
        ]
        expected = None
        for workers, strategy in ((1, "plan"), (4, "plan"), (4, "group")):
            engine = QueryEngine(
                table,
                config=EngineConfig(
                    backend="numpy",
                    num_workers=workers,
                    shard_strategy=strategy,
                    executor="thread",
                ),
            )
            engine.execute_batch(batch)
            counts = (engine.stats.sort_misses, engine.stats.sort_hits)
            if expected is None:
                expected = counts
            else:
                assert counts == expected, (workers, strategy)
        # One shared main order plus one MAD deviation order per fused plan.
        assert expected == (4, 0)


class TestRegistryAndStats:
    def test_registry_does_not_keep_tables_alive(self):
        import gc
        import weakref

        table = make_relevant(5)
        ref = weakref.ref(table)
        engine_for(table).execute(query_with("a"))
        del table
        gc.collect()
        assert ref() is None

    def test_weak_engine_raises_after_table_collected(self):
        import gc

        table = make_relevant(6)
        engine = QueryEngine(table, weak_table=True)
        del table
        gc.collect()
        with pytest.raises(ReferenceError):
            engine.table

    def test_direct_engine_keeps_its_table_alive(self):
        engine = QueryEngine(make_relevant(6))  # temporary table: engine owns it
        assert engine.execute(query_with("a")).num_rows >= 0

    def test_stats_delta_since_reports_per_run_traffic(self):
        engine = numpy_engine(make_relevant(0))
        engine.execute(query_with("a"))
        baseline = engine.stats.as_dict()
        engine.execute(query_with("a"))  # result-cache hit
        engine.execute(query_with("b"))
        delta = engine.stats.delta_since(baseline)
        assert delta["queries"] == 1
        assert delta["result_hits"] == 1
        assert delta["mask_misses"] == 1
        assert delta["result_hit_rate"] == 0.5
        # Lifetime counters keep accumulating regardless.
        assert engine.stats.queries == 2


class TestEngineTableBinding:
    def test_engine_for_is_identity_keyed(self):
        a, b = make_relevant(0), make_relevant(1)
        assert engine_for(a) is engine_for(a)
        assert engine_for(a) is not engine_for(b)

    def test_execute_query_rejects_mismatched_engine(self):
        a, b = make_relevant(0), make_relevant(1)
        with pytest.raises(ValueError):
            execute_query(query_with("a"), b, engine=QueryEngine(a))

    def test_feataug_apply_does_not_reuse_training_masks(self, user_table):
        """``FeatAugResult.apply`` against a held-out relevant table must hit
        that table's own engine, not the training-time engine's stale masks."""
        train_relevant = make_relevant(0)
        held_out_relevant = make_relevant(99)
        query = query_with("a", "SUM")
        # Warm the training-time engine's mask and result caches.
        training_engine = engine_for(train_relevant)
        training_engine.execute(query)

        train = Table(
            [
                Column("key", [0.0, 1.0, 2.0, 3.0], dtype=DType.NUMERIC),
                Column("label", [0.0, 1.0, 0.0, 1.0], dtype=DType.NUMERIC),
            ]
        )
        result = FeatAugResult(
            queries=[GeneratedQuery(query=query, loss=0.0, metric=0.0)],
            templates=[],
            augmented_table=train,
            feature_names=["feataug_0"],
            relevant_table=held_out_relevant,
        )
        applied = result.apply(train)
        expected = train.left_join(
            execute_query_naive(query, held_out_relevant).rename({"feature": "feataug_0"}),
            on=["key"],
        )
        got = applied.column("feataug_0").values
        want = expected.column("feataug_0").values
        # Tolerant comparison so the check holds on every default backend.
        assert np.allclose(got, want, rtol=0.0, atol=1e-9, equal_nan=True)
        # Sanity: the held-out values genuinely differ from the training-time
        # table's, so a stale-mask bug could not slip through this assertion.
        stale = train.left_join(
            execute_query_naive(query, train_relevant).rename({"feature": "feataug_0"}),
            on=["key"],
        ).column("feataug_0").values
        assert not np.allclose(got, stale, rtol=0.0, atol=1e-9, equal_nan=True)
