"""The SQL Query Generation component (Section V, Figure 3).

Given a fixed query template the component searches the template's query pool
for queries whose generated feature minimises the downstream model's
validation loss.  The search runs in two phases:

* **Warm-up phase** -- TPE optimises the low-cost proxy (mutual information by
  default) for ``warmup_iterations`` rounds.  The ``warmup_top_k`` best
  proxy queries are then evaluated with the real model and injected as the
  initial history of the second TPE round.
* **Query-generation phase** -- TPE, warm-started with those real
  evaluations, optimises the actual validation loss for
  ``search_iterations`` rounds.

When ``use_warmup`` is disabled (the "NoWU" ablation) the warm-up is replaced
by an equal number of additional real-loss iterations, mirroring the paper's
budget-fair comparison (Section VII.D.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.config import FeatAugConfig
from repro.core.evaluation import ModelEvaluator
from repro.core.proxies import Proxy, make_proxy
from repro.dataframe.table import Table
from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.tpe import TPEOptimizer
from repro.hpo.trial import Trial
from repro.query.engine import QueryEngine, resolve_engine
from repro.query.pool import QueryPool
from repro.query.query import PredicateAwareQuery
from repro.query.template import QueryTemplate


@dataclass
class GeneratedQuery:
    """One query produced by the search, with its evaluation scores."""

    query: PredicateAwareQuery
    loss: float
    metric: float
    proxy_score: float = float("nan")


@dataclass
class GenerationReport:
    """Timing and history of one SQL-generation run (used by the scaling figures)."""

    warmup_seconds: float = 0.0
    generate_seconds: float = 0.0
    n_proxy_evaluations: int = 0
    n_model_evaluations: int = 0
    best_loss_history: List[float] = field(default_factory=list)


class SQLQueryGenerator:
    """Search one query pool for effective predicate-aware queries."""

    def __init__(
        self,
        template: QueryTemplate,
        relevant_table: Table,
        evaluator: ModelEvaluator,
        config: FeatAugConfig | None = None,
        proxy: Proxy | None = None,
        seed: int | None = None,
        engine: QueryEngine | None = None,
    ):
        self.config = config or FeatAugConfig()
        self.config.validate()
        self.template = template
        self.relevant_table = relevant_table
        self.evaluator = evaluator
        self.proxy = proxy or make_proxy(self.config.proxy)
        self.seed = self.config.seed if seed is None else seed
        self.pool = QueryPool(template, relevant_table)
        self.report = GenerationReport()
        # The shared execution engine: every candidate query of this search
        # (and of every other component touching the same relevant table)
        # reuses one group index and predicate-mask cache.
        self.engine = resolve_engine(relevant_table, engine)

    # ------------------------------------------------------------------
    # Objectives
    # ------------------------------------------------------------------
    def _proxy_objective(self, params: Dict[str, object]) -> float:
        """Negative proxy score of the decoded query (TPE minimises)."""
        query = self.pool.decode(params)
        train_vec, _ = self.evaluator.feature_vectors_for_query(
            query, self.relevant_table, engine=self.engine
        )
        score = self.proxy.score(train_vec, self.evaluator.y_train, self.evaluator.task)
        self.report.n_proxy_evaluations += 1
        return -score

    def _model_objective(self, params: Dict[str, object]) -> float:
        """Real validation loss of the decoded query."""
        query = self.pool.decode(params)
        result = self.evaluator.evaluate_query(query, self.relevant_table, engine=self.engine)
        self.report.n_model_evaluations += 1
        return result.loss

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _make_optimizer(self, seed_offset: int):
        """Instantiate the configured pool-search optimiser (TPE or random)."""
        if self.config.search_strategy == "random":
            return RandomSearchOptimizer(self.pool.space, seed=self.seed + seed_offset)
        return TPEOptimizer(
            self.pool.space,
            seed=self.seed + seed_offset,
            gamma=self.config.tpe_gamma,
            n_startup_trials=self.config.tpe_startup_trials,
            n_candidates=self.config.tpe_candidates,
        )

    def _warmup_trials(self) -> List[Trial]:
        """Run the proxy TPE round and evaluate its top-k queries for real."""
        proxy_optimizer = self._make_optimizer(seed_offset=1)
        for _ in range(self.config.warmup_iterations):
            params = proxy_optimizer.suggest()
            value = self._proxy_objective(params)
            proxy_optimizer.observe(params, value)
        top = proxy_optimizer.history.top_k(self.config.warmup_top_k, minimize=True)
        real_trials: List[Trial] = []
        for trial in top:
            loss = self._model_objective(trial.params)
            real_trials.append(
                Trial(params=dict(trial.params), value=loss, metadata={"proxy": -trial.value})
            )
        return real_trials

    def generate(self, n_queries: int = 1) -> List[GeneratedQuery]:
        """Run the two-phase search and return the *n_queries* best queries.

        Results are deduplicated by query signature and sorted by loss
        (ascending, i.e. best first).
        """
        optimizer = self._make_optimizer(seed_offset=2)
        extra_iterations = 0
        start = time.perf_counter()
        if self.config.use_warmup:
            warm_trials = self._warmup_trials()
            optimizer.warm_start(warm_trials)
        else:
            # Budget-fair ablation: spend the warm-up evaluations on the real
            # objective instead (warmup_top_k real evaluations were part of
            # the warm-up budget).
            extra_iterations = self.config.warmup_top_k
        self.report.warmup_seconds = time.perf_counter() - start

        start = time.perf_counter()
        n_iterations = self.config.search_iterations + extra_iterations
        for _ in range(n_iterations):
            params = optimizer.suggest()
            loss = self._model_objective(params)
            optimizer.observe(params, loss)
            best_so_far = optimizer.history.best(minimize=True).value
            self.report.best_loss_history.append(best_so_far)
        self.report.generate_seconds = time.perf_counter() - start

        return self._collect_results(optimizer, n_queries)

    def _collect_results(self, optimizer: TPEOptimizer, n_queries: int) -> List[GeneratedQuery]:
        results: List[GeneratedQuery] = []
        seen = set()
        for trial in sorted(optimizer.history.trials, key=lambda t: t.value):
            query = self.pool.decode(trial.params)
            signature = query.signature()
            if signature in seen:
                continue
            seen.add(signature)
            metric = self._loss_to_metric(trial.value)
            results.append(
                GeneratedQuery(
                    query=query,
                    loss=trial.value,
                    metric=metric,
                    proxy_score=float(trial.metadata.get("proxy", float("nan"))),
                )
            )
            if len(results) >= n_queries:
                break
        return results

    def _loss_to_metric(self, loss: float) -> float:
        if self.evaluator.task == "regression":
            return loss
        return 1.0 - loss

    # ------------------------------------------------------------------
    # Proxy-only search (used by the template-identification component)
    # ------------------------------------------------------------------
    def best_proxy_score(self, n_iterations: int | None = None) -> float:
        """Best proxy value found by a short TPE run over this pool.

        This is the low-cost stand-in for the template's effectiveness used
        by Optimisation 1 of the Query Template Identification component.
        """
        n_iterations = n_iterations or self.config.template_proxy_iterations
        optimizer = self._make_optimizer(seed_offset=3)
        best = -np.inf
        for _ in range(n_iterations):
            params = optimizer.suggest()
            value = self._proxy_objective(params)
            optimizer.observe(params, value)
            best = max(best, -value)
        return float(best)

    def best_real_score(self, n_iterations: int | None = None) -> float:
        """Best (negated loss) found by a short real-model TPE run.

        Used when Optimisation 1 is disabled, i.e. template effectiveness is
        measured by actually training the downstream model.
        """
        n_iterations = n_iterations or self.config.template_real_iterations
        optimizer = self._make_optimizer(seed_offset=4)
        best = -np.inf
        for _ in range(n_iterations):
            params = optimizer.suggest()
            loss = self._model_objective(params)
            optimizer.observe(params, loss)
            best = max(best, -loss)
        return float(best)
